//! Workspace façade crate.
//!
//! The root package exists to host the repo-level integration tests
//! (`tests/`) and examples (`examples/`); the real API lives in
//! [`ptp_core`] and the crates it re-exports.

#![forbid(unsafe_code)]

pub use ptp_core::*;
