//! A distributed bank: accounts sharded across three database sites, a
//! transfer in flight when the network partitions.
//!
//! Demonstrates the paper's motivating cost model: under two-phase commit a
//! partitioned participant blocks and its locks keep the account
//! inaccessible; under the Huang–Li termination protocol every site
//! terminates in bounded time and releases its locks.
//!
//! ```sh
//! cargo run --example banking
//! ```

use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_simnet::{PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

/// A transfer of `amount` from account `a` (site 1) to account `b` (site 2).
fn transfer(id: u32, from_balance: u64, to_balance: u64, amount: u64) -> TxnSpec {
    let mut writes = BTreeMap::new();
    writes.insert(
        1u16,
        vec![WriteOp { key: Key::from("alice"), value: Value::from_u64(from_balance - amount) }],
    );
    writes.insert(
        2u16,
        vec![WriteOp { key: Key::from("bob"), value: Value::from_u64(to_balance + amount) }],
    );
    TxnSpec { id: TxnId(id), writes }
}

fn run_bank(protocol: CommitProtocol) {
    println!("---- {} ----", protocol.name());

    // Site 1 holds alice's account (100), site 2 holds bob's (50). A
    // 40-unit transfer is submitted at t=0; the network cuts site 2 off at
    // t = 1.5T, while the transfer's votes are in flight.
    let partition = PartitionEngine::new(vec![PartitionSpec::simple(
        SimTime(1500),
        vec![SiteId(0), SiteId(1)],
        vec![SiteId(2)],
    )]);

    let run = DbCluster::new(3, protocol)
        .seed(1, Key::from("alice"), Value::from_u64(100))
        .seed(2, Key::from("bob"), Value::from_u64(50))
        .submit(0, transfer(1, 100, 50, 40))
        .partition(partition)
        .run();

    for (txn, per_site) in &run.metrics.decisions {
        for (site, (decision, at)) in per_site {
            println!("  {txn} @ site {site}: {decision} at t = {:.2}T", at.in_t_units(1000));
        }
    }
    for (site, blocked) in run.blocked.iter().enumerate() {
        for txn in blocked {
            println!("  {txn} @ site {site}: BLOCKED — locks still held at horizon");
        }
    }

    let alice = run.storages[1].get(&Key::from("alice")).and_then(Value::as_u64);
    let bob = run.storages[2].get(&Key::from("bob")).and_then(Value::as_u64);
    println!("  final balances: alice = {alice:?}, bob = {bob:?}");

    println!("  lock-hold intervals:");
    for (txn, site, ticks, still_held) in run.metrics.hold_durations(run.report.ended_at) {
        let status = if still_held { " (NEVER RELEASED)" } else { "" };
        println!("    {txn} @ {site}: {:.2}T{status}", ticks as f64 / 1000.0);
    }

    let violations = run.metrics.atomicity_violations();
    assert!(violations.is_empty(), "atomicity violated: {violations:?}");
    println!("  atomicity: OK\n");
}

fn main() {
    println!("A transfer is mid-commit when site 2 is partitioned away.\n");
    run_bank(CommitProtocol::TwoPhase);
    run_bank(CommitProtocol::HuangLi);
    run_bank(CommitProtocol::QuorumMajority);
}
