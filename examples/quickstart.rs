//! Quickstart: run the Huang–Li termination protocol through a network
//! partition and watch every site terminate consistently.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ptp_core::{run_scenario, ProtocolKind, Scenario};
use ptp_simnet::SiteId;

fn main() {
    // Five sites: site 0 is the master. The network splits
    // {0, 1, 2} | {3, 4} at t = 2.5T — right as the master's prepare
    // messages are in flight, the nastiest instant for a commit protocol.
    let scenario = Scenario::new(5).partition_g2(vec![SiteId(3), SiteId(4)], 2500);

    println!("== Huang–Li termination protocol (modified 3PC), 5 sites ==");
    println!("partition: {{0,1,2}} | {{3,4}} at t = 2.5T (prepares in flight)\n");

    let result = run_scenario(ProtocolKind::HuangLi3pc, &scenario);

    for (i, outcome) in result.outcomes.iter().enumerate() {
        let role = if i == 0 { "master" } else { "slave " };
        match (outcome.decision, outcome.decided_at) {
            (Some(d), Some(at)) => {
                println!("site {i} ({role}): {d:<6} at t = {:.2}T", at.in_t_units(1000));
            }
            _ => println!("site {i} ({role}): BLOCKED"),
        }
    }

    println!("\nverdict: {:?}", result.verdict);
    assert!(result.verdict.is_resilient(), "Theorem 9 in action");

    // Contrast with plain two-phase commit in the same scenario.
    println!("\n== The same partition under plain 2PC ==");
    let result2pc = run_scenario(ProtocolKind::Plain2pc, &scenario);
    for (i, outcome) in result2pc.outcomes.iter().enumerate() {
        match outcome.decision {
            Some(d) => println!("site {i}: {d}"),
            None => println!("site {i}: BLOCKED (holding its locks indefinitely)"),
        }
    }
    println!("verdict: {:?}", result2pc.verdict);
}
