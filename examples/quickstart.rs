//! Quickstart: run the Huang–Li termination protocol through network
//! partitions and watch every site terminate consistently.
//!
//! Demonstrates the session-based execution API: build the cluster once
//! with [`Session::new`], then run as many scenarios as you like through
//! it — each `run` resets the state machines and reuses every buffer.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ptp_core::{ProtocolKind, RunOptions, Scenario, Session};
use ptp_simnet::SiteId;

fn main() {
    // Five sites: site 0 is the master. The network splits
    // {0, 1, 2} | {3, 4} at t = 2.5T — right as the master's prepare
    // messages are in flight, the nastiest instant for a commit protocol.
    let scenario = Scenario::new(5).partition_g2(vec![SiteId(3), SiteId(4)], 2500);

    println!("== Huang–Li termination protocol (modified 3PC), 5 sites ==");
    println!("partition: {{0,1,2}} | {{3,4}} at t = 2.5T (prepares in flight)\n");

    // The session owns the cluster; RunOptions::recording() asks for the
    // full event trace on top of the default verdict/outcome reporting.
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 5);
    let result = session.run_with(&scenario, &RunOptions::recording());

    for (i, outcome) in result.outcomes.iter().enumerate() {
        let role = if i == 0 { "master" } else { "slave " };
        match (outcome.decision, outcome.decided_at) {
            (Some(d), Some(at)) => {
                println!("site {i} ({role}): {d:<6} at t = {:.2}T", at.in_t_units(1000));
            }
            _ => println!("site {i} ({role}): BLOCKED"),
        }
    }

    println!("\nverdict: {:?}", result.verdict);
    println!("trace: {} recorded events", result.trace.len());
    assert!(result.verdict.is_resilient(), "Theorem 9 in action");

    // The same session replays any number of variations — here the whole
    // family of partition instants around the danger zone, trace-free (the
    // default options skip trace recording entirely).
    println!("\n== The same split at every instant from 0T to 4T ==");
    let mut commits = 0usize;
    let mut aborts = 0usize;
    for at in (0..=4000).step_by(250) {
        let s = Scenario::new(5).partition_g2(vec![SiteId(3), SiteId(4)], at);
        let r = session.run(&s);
        assert!(r.verdict.is_resilient(), "t={at}: {:?}", r.verdict);
        match r.verdict {
            ptp_core::protocols::Verdict::AllCommit => commits += 1,
            _ => aborts += 1,
        }
    }
    println!("17 instants: {commits} all-commit, {aborts} all-abort, 0 blocked, 0 inconsistent");

    // Contrast with plain two-phase commit in the original scenario.
    println!("\n== The same partition under plain 2PC ==");
    let mut twopc = Session::new(ProtocolKind::Plain2pc, 5);
    let result2pc = twopc.run(&scenario);
    for (i, outcome) in result2pc.outcomes.iter().enumerate() {
        match outcome.decision {
            Some(d) => println!("site {i}: {d}"),
            None => println!("site {i}: BLOCKED (holding its locks indefinitely)"),
        }
    }
    println!("verdict: {:?}", result2pc.verdict);
}
