//! Model check: compute the paper's formal artifacts — concurrency sets,
//! committable states, the Lemma 1/2 conditions, the derived Rule (a)/(b)
//! augmentation — and export every protocol figure as Graphviz DOT.
//!
//! ```sh
//! cargo run --example model_check
//! ```

use ptp_core::model::committable::Committability;
use ptp_core::model::concurrency::ConcurrencySets;
use ptp_core::model::dot::to_dot;
use ptp_core::model::protocols::{
    extended_two_phase, four_phase, modified_three_phase, three_phase, two_phase,
};
use ptp_core::model::resilience::check_conditions;
use ptp_core::model::rules::derive_rules_augmentation;
use ptp_core::model::{GlobalGraph, ProtocolSpec};
use ptp_core::report::Table;

fn analyze(spec: &ProtocolSpec) {
    let graph = GlobalGraph::explore(spec);
    let csets = ConcurrencySets::compute(spec, &graph);
    let cls = Committability::compute(spec, &graph);
    let report = check_conditions(spec);

    println!("== {} (n = {}) ==", spec.name, spec.n());
    println!("reachable global states: {}", graph.states.len());

    let mut table = Table::new(vec!["state", "committable", "C(s) has commit", "C(s) has abort"]);
    for site in [0usize, 1] {
        for state_idx in 0..spec.sites[site].states.len() {
            let s = ptp_core::model::StateRef { site, state: state_idx };
            if spec.state_kind(s).is_final() {
                continue;
            }
            table.row(vec![
                format!("site{site}:{}", spec.state_name(s)),
                if cls.is_committable(s) { "yes" } else { "no" }.to_string(),
                if csets.contains_commit(spec, s) { "yes" } else { "no" }.to_string(),
                if csets.contains_abort(spec, s) { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    println!("{}", table.render());

    println!(
        "Lemma 1 violations: {}, Lemma 2 violations: {} -> {}",
        report.lemma1.len(),
        report.lemma2.len(),
        if report.satisfies_conditions() {
            "can be made resilient (necessary conditions hold)"
        } else {
            "CANNOT be made resilient to multisite simple partitioning"
        }
    );
    println!();
}

fn main() {
    for spec in [
        two_phase(3),
        extended_two_phase(3),
        three_phase(3),
        modified_three_phase(3),
        four_phase(3),
    ] {
        analyze(&spec);
    }

    // The Sec. 3 derivation story: the rules that work at n=2...
    let d2 = derive_rules_augmentation(&extended_two_phase(2));
    println!("Rule (a)/(b) augmentation of E2PC derived at n=2:");
    for ((role, state), decision) in &d2.augmentation.timeout {
        println!("  timeout in {role:?}:{state} -> {decision}");
    }
    for ((role, state), decision) in &d2.augmentation.ud {
        println!("  UD      in {role:?}:{state} -> {decision}");
    }

    // ... and the DOT renders of every figure.
    let out_dir = std::env::temp_dir().join("ptp-figures");
    std::fs::create_dir_all(&out_dir).expect("create figure dir");
    for (file, spec, aug) in [
        ("fig1_2pc.dot", two_phase(3), None),
        ("fig2_e2pc.dot", extended_two_phase(3), Some(d2.augmentation.clone())),
        ("fig3_3pc.dot", three_phase(3), None),
        ("fig8_m3pc.dot", modified_three_phase(3), None),
    ] {
        let path = out_dir.join(file);
        std::fs::write(&path, to_dot(&spec, aug.as_ref())).expect("write dot");
        println!("wrote {}", path.display());
    }
}
