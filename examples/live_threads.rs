//! The termination protocol on real threads and wall-clock timers.
//!
//! Same state machines as every other example — but here each site is an OS
//! thread, messages travel through crossbeam channels with real delays
//! bounded by `T = 10ms`, and the partition is enforced against the system
//! clock. Runs a batch of live executions with partitions landing at
//! different moments and reports the outcomes.
//!
//! ```sh
//! cargo run --release --example live_threads
//! ```

use ptp_core::livenet::{run_live, LiveConfig, LivePartition};
use ptp_core::protocols::api::Vote;
use ptp_core::protocols::clusters::huang_li_3pc_cluster_any;
use ptp_core::protocols::termination::TerminationVariant;
use ptp_simnet::SiteId;
use std::time::Duration;

fn main() {
    let t = Duration::from_millis(10);
    println!("Huang–Li 3PC on OS threads, T = {t:?}, 4 sites\n");

    // The re-split case may legitimately leave a site undecided (the second
    // episode never heals), so it only has to stay consistent.
    let mut all_consistent = true;
    for (label, require_all_decided, partition) in [
        ("no partition", true, None),
        (
            "partition {0,1} | {2,3} during phase 1 (t = 1.5T)",
            true,
            Some(LivePartition::simple(t * 3 / 2, vec![SiteId(2), SiteId(3)], None)),
        ),
        (
            "partition {0,1,2} | {3} during prepare (t = 2.5T)",
            true,
            Some(LivePartition::simple(t * 5 / 2, vec![SiteId(3)], None)),
        ),
        (
            "transient partition healing at 5T",
            true,
            Some(LivePartition::simple(t * 2, vec![SiteId(2), SiteId(3)], Some(t * 5))),
        ),
        (
            "split at 2T, heal at 5T, re-split differently at 7T",
            false,
            Some(LivePartition::split_heal_resplit(
                vec![SiteId(3)],
                t * 2,
                t * 5,
                vec![SiteId(1), SiteId(2)],
                t * 7,
            )),
        ),
    ] {
        let parts = huang_li_3pc_cluster_any(4, &[Vote::Yes; 3], TerminationVariant::Transient);
        let outcome = run_live(parts, LiveConfig::with_t(t), partition);
        println!("{label}:");
        for (i, d) in outcome.decisions.iter().enumerate() {
            match d {
                Some(d) => println!("  site {i}: {d}"),
                None => println!("  site {i}: UNDECIDED"),
            }
        }
        println!(
            "  consistent: {}, all decided: {}, elapsed: {:?}\n",
            outcome.consistent(),
            outcome.all_decided(),
            outcome.elapsed
        );
        all_consistent &= outcome.consistent() && (!require_all_decided || outcome.all_decided());
    }

    assert!(all_consistent, "every live run must terminate consistently");
    println!("All live executions terminated consistently — the same guarantee the");
    println!("simulator proves exhaustively, holding up under real thread scheduling.");
}
