//! Resilience audit: sweep every protocol in the suite over the same grid
//! of partition scenarios and print the scorecard — the executable summary
//! of the paper's Secs. 3–5.
//!
//! ```sh
//! cargo run --release --example resilience_audit
//! ```

use ptp_core::report::Table;
use ptp_core::{sweep, ProtocolKind, SweepGrid};
use ptp_simnet::DelayModel;

fn main() {
    let n = 3;
    let mut grid = SweepGrid::standard(n);
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Fixed(500),
        DelayModel::Uniform { seed: 42, min: 1, max: 1000 },
    ];

    println!(
        "Sweeping {} scenarios per protocol ({} boundaries x {} instants x {} delay models), n = {n}\n",
        grid.size(),
        grid.boundaries.len(),
        grid.partition_times.len(),
        grid.delays.len(),
    );

    let mut table = Table::new(vec![
        "protocol",
        "scenarios",
        "all-commit",
        "all-abort",
        "blocked",
        "inconsistent",
        "resilient?",
    ]);

    for kind in ProtocolKind::ALL {
        let report = sweep(kind, &grid);
        table.row(vec![
            kind.name().to_string(),
            report.total.to_string(),
            report.all_commit.to_string(),
            report.all_abort.to_string(),
            report.blocked_count.to_string(),
            report.inconsistent_count.to_string(),
            if report.fully_resilient() { "YES".into() } else { "no".to_string() },
        ]);
    }

    println!("{}", table.render());
    println!("The paper's claims, mechanically checked:");
    println!(" * 2PC and quorum commit block; they never violate atomicity.");
    println!(
        " * Extended 2PC (Fig. 2) and rule-augmented 3PC violate atomicity at n >= 3 (Sec. 3)."
    );
    println!(" * Modified 3PC + termination protocol is resilient everywhere (Theorem 9),");
    println!("   and the generic construction extends to a 4-phase protocol (Theorem 10).");
}
