//! The bank, sharded: accounts spread over three 2-replica shards on six
//! sites, with a cross-shard transfer in flight when the network splits the
//! two involved replica groups apart.
//!
//! Demonstrates the two-level design of `ptp-shard`: a transfer whose
//! accounts live in different shards commits through a **top-level**
//! instance of the chosen protocol over the shards' group masters — so a
//! partition severing the groups is terminated (HL-3PC), or measurably
//! blocked (2PC), by the paper's protocol one layer up — and each group
//! master ships the outcome to its replica.
//!
//! ```sh
//! cargo run --example sharded_bank
//! ```

use ptp_core::ddb::cluster::CommitProtocol;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_shard::{ShardCluster, ShardTopology, ShardTxnSpec};
use ptp_simnet::{PartitionEngine, PartitionSpec, SimTime, SiteId};

/// A key routed to `shard` (probed through the deterministic router).
fn account_in(topo: &ShardTopology, shard: usize, hint: &str) -> Key {
    (0..512)
        .map(|i| Key::from(format!("{hint}-{i}")))
        .find(|k| topo.shard_of(k) == shard)
        .expect("an account name routing to the shard")
}

fn run_bank(protocol: CommitProtocol) {
    println!("---- {} ----", protocol.name());

    // 3 shards × 2 replicas over 6 sites: groups {0,1}, {2,3}, {4,5}.
    let topo = ShardTopology::uniform(6, 3, 2);
    let alice = account_in(&topo, 0, "alice");
    let bob = account_in(&topo, 1, "bob");

    // Cut shard 1's group away from shard 0's at t = 1.5T, while the
    // cross-shard transfer's top-level votes are in flight.
    let partition = PartitionEngine::new(vec![PartitionSpec::simple(
        SimTime(1500),
        vec![SiteId(0), SiteId(1), SiteId(4), SiteId(5)],
        vec![SiteId(2), SiteId(3)],
    )]);
    // The transfer's top-level protocol group is the two masters {0, 2}:
    // that is the group this split severs (each shard's own replica pair
    // stays intact on its side of the boundary).
    let masters = [topo.master(0), topo.master(1)];
    println!(
        "  top-level group {:?} severed in {} scheduled episode(s); \
         each replica group intact",
        masters.map(|s| s.0),
        partition.severed_episodes(&masters)
    );

    let run = ShardCluster::new(topo.clone(), protocol)
        .seed(alice.clone(), Value::from_u64(100))
        .seed(bob.clone(), Value::from_u64(50))
        .submit(
            0,
            ShardTxnSpec {
                id: TxnId(1),
                writes: vec![
                    WriteOp { key: alice.clone(), value: Value::from_u64(60) },
                    WriteOp { key: bob.clone(), value: Value::from_u64(90) },
                ],
            },
        )
        .partition(partition)
        .run();

    for (txn, per_site) in &run.metrics.decisions {
        for (site, (decision, at)) in per_site {
            println!("  {txn} @ site {site}: {decision} at t = {:.2}T", at.in_t_units(1000));
        }
    }
    for (site, blocked) in run.blocked.iter().enumerate() {
        for txn in blocked {
            println!("  {txn} @ site {site}: BLOCKED — protocol still in flight at horizon");
        }
    }

    for shard in &run.shards {
        println!(
            "  shard {} (group {:?}): availability {:.2}",
            shard.shard,
            shard.group.iter().map(|s| s.0).collect::<Vec<_>>(),
            shard.availability()
        );
    }
    println!(
        "  cross-shard: {} committed, {} aborted, {} blocked",
        run.cross_shard.committed, run.cross_shard.aborted, run.cross_shard.blocked
    );

    let violations = run.metrics.atomicity_violations();
    assert!(violations.is_empty(), "atomicity violated: {violations:?}");
    println!("  atomicity: OK\n");
}

fn main() {
    println!("A cross-shard transfer is mid-commit when shard 1's group splits away.\n");
    run_bank(CommitProtocol::TwoPhase);
    run_bank(CommitProtocol::HuangLi);
    run_bank(CommitProtocol::QuorumMajority);
}
