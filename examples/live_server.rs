//! A sharded cluster serving sustained traffic on real threads — with a
//! partition landing mid-run.
//!
//! Six sites host 3 shards × 2 replicas; an open-loop driver offers a fixed
//! arrival rate of reads and (sometimes cross-shard) writes while a network
//! partition cuts two sites off for a stretch of the run and heals. The
//! post-run audit checks atomicity and that every surviving value traces to
//! a committed writer; the latency record shows what the partition cost.
//!
//! ```sh
//! cargo run --release --example live_server
//! ```

use ptp_core::livenet::LivePartition;
use ptp_live::{run_server, BatchConfig, KeySkew, LiveOptions};
use ptp_simnet::SiteId;
use std::time::Duration;

fn main() {
    let duration = Duration::from_millis(1200);
    let mut opts = LiveOptions::small(250.0, duration);
    opts.skew = KeySkew::HotKey { hot_fraction: 0.2 };
    opts.batch = BatchConfig::on(Duration::from_millis(2));
    // Cut sites {4,5} off from 300ms to 600ms, mid-load.
    opts.partition = Some(LivePartition::simple(
        Duration::from_millis(300),
        vec![SiteId(4), SiteId(5)],
        Some(Duration::from_millis(600)),
    ));

    println!(
        "{} sites, {} shards x{} replicas, offered {} ops/s for {:?}",
        opts.sites, opts.shards, opts.replication, opts.offered_rate, opts.duration
    );
    println!("partition {{4,5}} | rest from 300ms to 600ms, group commit on (2ms window)\n");

    let report = run_server(&opts);

    println!("issued   : {} writes, {} reads", report.issued_writes, report.issued_reads);
    println!(
        "completed: {} writes ({} commit / {} abort), {} reads",
        report.completed_writes, report.committed, report.aborted, report.completed_reads
    );
    println!(
        "achieved : {:.0} writes/s against {:.0} ops/s offered",
        report.achieved_rate, report.offered_rate
    );
    println!(
        "write latency: p50 {}us  p90 {}us  p99 {}us  max {}us",
        report.writes.p50_us, report.writes.p90_us, report.writes.p99_us, report.writes.max_us
    );
    println!(
        "read latency : p50 {}us  p90 {}us  p99 {}us  max {}us",
        report.reads.p50_us, report.reads.p90_us, report.reads.p99_us, report.reads.max_us
    );
    println!(
        "server side  : {} flushes, {} channel sends carrying {} protocol messages",
        report.flushes, report.channel_sends, report.protocol_messages
    );

    // Partition runs use the loose audit (replica convergence is checked
    // only for partition-free runs), but atomicity and no-phantom-writes
    // must hold regardless.
    assert!(report.audit.ok, "audit violations: {:?}", report.audit.violations);
    println!(
        "\naudit ok ({} writes, {} reads checked), clean drain: {}",
        report.audit.checked_writes, report.audit.checked_reads, report.clean_drain
    );
}
