//! The deterministic RNG driving strategy sampling.

/// A splitmix64 generator. Small, fast, and plenty for test-input sampling;
/// seeded from the property's name so every run of a given test replays the
/// same case sequence (the shim's substitute for failure persistence).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from an arbitrary string (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// RNG from a numeric seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction (Lemire); bias is negligible for test
        // sampling and determinism is what matters here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_names_distinct_streams() {
        let a = TestRng::from_name("a").next_u64();
        let b = TestRng::from_name("b").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = TestRng::from_seed(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
