//! A minimal, dependency-free stand-in for the [proptest] property-testing
//! crate, exposing the API subset this workspace's `tests/property_suite.rs`
//! uses: the `proptest!` macro, range/tuple/option/vec/oneof strategies,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and `ProptestConfig`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. Differences from upstream, by design:
//!
//! * **Simple shrinking.** A failing case is shrunk by a bounded
//!   greedy loop ([`shrink_failure`]): scalars halve toward their range
//!   start, collections drop elements, `Option`s collapse to `None`, and
//!   every improvement restarts the pass. The panic message reports both
//!   the originally sampled inputs and the minimal shrunk counterexample;
//!   rerunning reproduces both exactly because the RNG seed is derived
//!   deterministically from the test name.
//! * **Rejection handling** (`prop_assume!`) retries with fresh samples, up
//!   to 16× the configured case count, mirroring upstream's global reject
//!   budget in spirit.
//!
//! [proptest]: https://docs.rs/proptest

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::TestRng;

/// Knobs honoured by [`proptest!`], shaped so upstream-style
/// `ProptestConfig { cases: N, ..ProptestConfig::default() }` works
/// verbatim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
    /// The attempt budget is `cases * max_reject_factor`; exceeding it
    /// (overly narrow `prop_assume!` filters) fails the test.
    pub max_reject_factor: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_reject_factor: 16 }
    }
}

/// Why one sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: resample, don't count the case.
    Reject,
    /// `prop_assert!`-family failure: the property is falsified.
    Fail(String),
}

/// The result of shrinking one falsifying input (see [`shrink_failure`]).
#[derive(Debug)]
pub struct Shrunk<V> {
    /// The minimal counterexample found (the original input if no smaller
    /// candidate still failed).
    pub minimal: V,
    /// Improvements adopted — 0 means the original was already minimal.
    pub steps: usize,
    /// Candidates executed (bounded by the shrink budget).
    pub tested: usize,
    /// The failure message produced by `minimal`.
    pub message: String,
}

/// Pins a case closure's argument type to a strategy's value type so the
/// `proptest!` macro can write the closure without naming the tuple type.
#[doc(hidden)]
pub fn bind_case<S, F>(_strategy: &S, case: F) -> F
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    case
}

/// Greedily shrinks a falsifying input to a smaller counterexample.
///
/// Each pass asks `strategy` for smaller candidates of the current
/// counterexample ([`Strategy::shrink`]) and re-runs the property on each;
/// the first candidate that still fails is adopted and the pass restarts
/// from it. Candidates that pass or reject are discarded. The loop is
/// bounded (1024 candidate executions) so pathological properties cannot
/// hang the test run. Used by the [`proptest!`] macro on every failure;
/// exposed for harnesses (like `ptp_core`'s campaign runner) that drive
/// their own sampling.
pub fn shrink_failure<S, F>(
    strategy: &S,
    original: S::Value,
    message: String,
    case: &mut F,
) -> Shrunk<S::Value>
where
    S: Strategy,
    S::Value: Clone,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    const BUDGET: usize = 1024;
    let mut shrunk = Shrunk { minimal: original, steps: 0, tested: 0, message };
    let mut candidates = Vec::new();
    'passes: while shrunk.tested < BUDGET {
        candidates.clear();
        strategy.shrink(&shrunk.minimal, &mut candidates);
        for candidate in candidates.drain(..) {
            if shrunk.tested >= BUDGET {
                break 'passes;
            }
            shrunk.tested += 1;
            if let Err(TestCaseError::Fail(msg)) = case(candidate.clone()) {
                shrunk.minimal = candidate;
                shrunk.message = msg;
                shrunk.steps += 1;
                continue 'passes;
            }
        }
        break; // no candidate improved: minimal under this strategy
    }
    shrunk
}

/// Strategy namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Uniformly random booleans.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// Strategy producing `None` ~25% of the time, else `Some(inner)`
        /// (the upstream default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Strategy producing vectors with lengths drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test file needs, `use proptest::prelude::*;`-style.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        shrink_failure, ProptestConfig, Shrunk, TestCaseError,
    };
}

/// Asserts a condition inside a property; on failure the current case fails
/// with the rendered message (no panic unwinding through user state).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Discards the current case (resampling instead of failing) when the
/// sampled inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Weighted-choice strategy over alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests. Supports the upstream shape:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0u64..100, flag in prop::bool::ANY) {
///         prop_assume!(x != 13 || flag);
///         prop_assert!(x < 100);
///     }
/// }
/// ```
// The `#[test]` in the example is deliberate: it documents the exact
// upstream invocation shape, and rustdoc compiles `#[test]`-bearing
// doctests under the test harness, so `my_property` genuinely runs.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts =
                    config.cases.saturating_mul(config.max_reject_factor).max(16);
                // One tuple strategy for all arguments: sampling it draws
                // elementwise in declaration order, i.e. the exact RNG
                // stream the per-argument sampling of older versions used,
                // and shrinking it shrinks the arguments jointly.
                let strategy = ($(($strategy),)*);
                let mut case = $crate::bind_case(&strategy, |($($arg,)*)| {
                    $body
                    ::std::result::Result::Ok(())
                });
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many prop_assume! rejections ({} attempts, {} accepted)",
                        attempts,
                        accepted
                    );
                    let inputs = $crate::Strategy::sample(&strategy, &mut rng);
                    let outcome = case(::std::clone::Clone::clone(&inputs));
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(message)) => {
                            let original = ::std::clone::Clone::clone(&inputs);
                            let shrunk =
                                $crate::shrink_failure(&strategy, inputs, message, &mut case);
                            panic!(
                                "property `{}` falsified after {} cases\n  inputs: {:?}\n  shrunk ({} steps, {} tried): {:?}\n  {}",
                                stringify!($name),
                                accepted,
                                original,
                                shrunk.steps,
                                shrunk.tested,
                                shrunk.minimal,
                                shrunk.message
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_filters(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..4, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for x in &v { prop_assert!(*x < 4); }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..3).prop_map(|x| x as u64),
            Just(99u64),
        ]) {
            prop_assert!(v < 3 || v == 99);
        }

        #[test]
        fn options_mix(o in prop::option::of(1u64..4)) {
            if let Some(x) = o { prop_assert!((1..4).contains(&x)); }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn shrink_finds_the_boundary_scalar() {
        // Property "x < 57" over 0..1000: every failing sample must shrink
        // to exactly 57, the minimal counterexample.
        let strategy = (0u64..1000,);
        let mut case = |(x,): (u64,)| {
            prop_assert!(x < 57);
            Ok(())
        };
        let shrunk = shrink_failure(&strategy, (986,), "seed".into(), &mut case);
        assert_eq!(shrunk.minimal, (57,));
        assert!(shrunk.steps > 0 && shrunk.tested >= shrunk.steps);
    }

    #[test]
    fn shrink_minimizes_vectors_jointly_with_scalars() {
        // Fails whenever the vector holds any element >= 3 while the flag
        // is set, so the minimal counterexample is ([3], true): the flag
        // cannot shrink to false without the property passing.
        let strategy = (prop::collection::vec(0u8..10, 0..8), crate::strategy::AnyBool);
        let mut case = |(v, flag): (Vec<u8>, bool)| {
            prop_assert!(!(flag && v.iter().any(|x| *x >= 3)));
            Ok(())
        };
        let shrunk =
            shrink_failure(&strategy, (vec![9, 1, 7, 4, 8], true), "seed".into(), &mut case);
        assert_eq!(shrunk.minimal, (vec![3], true));
    }

    #[test]
    fn shrink_collapses_options() {
        let strategy = (prop::option::of(0u32..100),);
        let mut case = |(o,): (Option<u32>,)| {
            prop_assert!(o.is_none());
            Ok(())
        };
        let shrunk = shrink_failure(&strategy, (Some(63),), "seed".into(), &mut case);
        assert_eq!(shrunk.minimal, (Some(0),));
    }

    #[test]
    fn shrink_keeps_the_original_when_already_minimal() {
        let strategy = (5u8..9,);
        let mut case = |(_x,): (u8,)| {
            prop_assert!(false, "always");
            Ok(())
        };
        let shrunk = shrink_failure(&strategy, (5,), "seed".into(), &mut case);
        assert_eq!(shrunk.minimal, (5,));
        assert_eq!(shrunk.steps, 0);
    }

    #[test]
    fn shrink_budget_bounds_pathological_strategies() {
        // A property that fails for every candidate over a huge range still
        // terminates within the candidate budget.
        let strategy = (0u64..=u64::MAX,);
        let mut case = |(_x,): (u64,)| {
            prop_assert!(false, "always");
            Ok(())
        };
        let shrunk = shrink_failure(&strategy, (u64::MAX,), "seed".into(), &mut case);
        assert!(shrunk.tested <= 1024);
        assert_eq!(shrunk.minimal, (0,)); // floor reached: first candidate each pass
    }

    #[test]
    fn zero_argument_properties_still_run() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
            fn no_args() {
                prop_assert!(true);
            }
        }
        no_args();
    }

    #[test]
    #[should_panic(expected = "shrunk")]
    fn failure_reports_shrunk_inputs() {
        proptest! {
            fn shrinks_on_failure(x in 0u64..100000) {
                prop_assert!(x < 3, "x was {}", x);
            }
        }
        shrinks_on_failure();
    }
}
