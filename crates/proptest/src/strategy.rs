//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Object-safe so heterogeneous alternatives can be unified behind
/// `Box<dyn Strategy<Value = T>>` (see [`Union`] / `prop_oneof!`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for [`Arbitrary`] types; construct via [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary_and_ranges {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }

        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                *self.start() + rng.below(span + 1) as $ty
            }
        }
    )*};
}

int_arbitrary_and_ranges!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy transform produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Equal-weight choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

/// `prop::option::of` strategy: ~25% `None`.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// `prop::collection::vec` strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::sample(&self.len, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..500 {
            let a = (3u8..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (10u64..=12).sample(&mut rng);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::from_seed(2);
        let doubled = (1u8..5).prop_map(|x| u64::from(x) * 2);
        for _ in 0..50 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just("x").sample(&mut rng), "x");
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn option_mixes_none_and_some() {
        let mut rng = TestRng::from_seed(4);
        let s = OptionStrategy { inner: 0u8..3 };
        let samples: Vec<_> = (0..200).map(|_| s.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = TestRng::from_seed(5);
        let (a, b, c) = (0u8..2, 5u16..7, AnyBool).sample(&mut rng);
        assert!(a < 2);
        assert!((5..7).contains(&b));
        let _: bool = c;
    }
}
