//! Value-generation strategies with simple shrinking.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Object-safe so heterogeneous alternatives can be unified behind
/// `Box<dyn Strategy<Value = T>>` (see [`Union`] / `prop_oneof!`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Pushes strictly "smaller" candidate values derived from `value`.
    ///
    /// The default produces nothing (not every strategy can shrink — e.g.
    /// [`Map`] cannot invert its closure). Implementations follow the
    /// upstream spirit: scalars halve toward the range start, collections
    /// drop elements, `Option`s collapse to `None`. The candidates need not
    /// be exhaustive — the shrink loop in `proptest!` restarts from every
    /// improvement, so repeated passes compound.
    fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
        let _ = (value, out);
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &T, out: &mut Vec<T>) {
        (**self).shrink(value, out)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }

    fn shrink(&self, value: &S::Value, out: &mut Vec<S::Value>) {
        (**self).shrink(value, out)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Pushes smaller candidates for `value` (defaults to none).
    fn arbitrary_shrink(value: &Self, out: &mut Vec<Self>) {
        let _ = (value, out);
    }
}

/// Strategy for [`Arbitrary`] types; construct via [`any`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T, out: &mut Vec<T>) {
        T::arbitrary_shrink(value, out)
    }
}

/// Uniform booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool, out: &mut Vec<bool>) {
        if *value {
            out.push(false);
        }
    }
}

/// Shrink an integer toward `floor`: the floor itself, the midpoint, and the
/// predecessor — enough for the restarting shrink loop to binary-search.
macro_rules! int_shrink_toward {
    ($value:expr, $floor:expr, $out:expr) => {{
        let (v, lo) = ($value, $floor);
        if v > lo {
            $out.push(lo);
            let mid = lo + (v - lo) / 2;
            if mid != lo {
                $out.push(mid);
            }
            $out.push(v - 1);
        }
    }};
}

macro_rules! int_arbitrary_and_ranges {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }

            fn arbitrary_shrink(value: &$ty, out: &mut Vec<$ty>) {
                int_shrink_toward!(*value, 0, out);
            }
        }

        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }

            fn shrink(&self, value: &$ty, out: &mut Vec<$ty>) {
                int_shrink_toward!(*value, self.start, out);
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                *self.start() + rng.below(span + 1) as $ty
            }

            fn shrink(&self, value: &$ty, out: &mut Vec<$ty>) {
                int_shrink_toward!(*value, *self.start(), out);
            }
        }
    )*};
}

int_arbitrary_and_ranges!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn arbitrary_shrink(value: &bool, out: &mut Vec<bool>) {
        if *value {
            out.push(false);
        }
    }
}

/// Strategy transform produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Equal-weight choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }

    // No `shrink`: the generating arm is not recorded, and another arm's
    // candidates could fall outside the union's domain.
}

/// `prop::option::of` strategy: ~25% `None`.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }

    fn shrink(&self, value: &Option<S::Value>, out: &mut Vec<Option<S::Value>>) {
        if let Some(inner) = value {
            out.push(None);
            let mut smaller = Vec::new();
            self.inner.shrink(inner, &mut smaller);
            out.extend(smaller.into_iter().map(Some));
        }
    }
}

/// `prop::collection::vec` strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = Strategy::sample(&self.len, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>, out: &mut Vec<Vec<S::Value>>) {
        let min = self.len.start;
        // Big bites first: halve toward the minimum length.
        if value.len() > min {
            let half = min.max(value.len() / 2);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            // Then single-element removals, front to back.
            for i in 0..value.len() {
                let mut smaller = value.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Finally shrink elements in place, one position at a time.
        for (i, elem) in value.iter().enumerate() {
            let mut smaller = Vec::new();
            self.element.shrink(elem, &mut smaller);
            for candidate in smaller {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
    }
}

/// The empty strategy: `proptest!` samples zero-argument properties
/// through it so every property goes through one code path.
impl Strategy for () {
    type Value = ();

    fn sample(&self, _rng: &mut TestRng) {}
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value, out: &mut Vec<Self::Value>) {
                let ($($name,)+) = self;
                $(
                    let mut smaller = Vec::new();
                    $name.shrink(&value.$idx, &mut smaller);
                    for candidate in smaller {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..500 {
            let a = (3u8..9).sample(&mut rng);
            assert!((3..9).contains(&a));
            let b = (10u64..=12).sample(&mut rng);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::from_seed(2);
        let doubled = (1u8..5).prop_map(|x| u64::from(x) * 2);
        for _ in 0..50 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just("x").sample(&mut rng), "x");
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn option_mixes_none_and_some() {
        let mut rng = TestRng::from_seed(4);
        let s = OptionStrategy { inner: 0u8..3 };
        let samples: Vec<_> = (0..200).map(|_| s.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = TestRng::from_seed(5);
        let (a, b, c) = (0u8..2, 5u16..7, AnyBool).sample(&mut rng);
        assert!(a < 2);
        assert!((5..7).contains(&b));
        let _: bool = c;
    }
}
