//! Seeded pseudo-randomness for delay models.
//!
//! The build environment is fully offline, so instead of the `rand` crate
//! the simulator carries its own small deterministic generator. The paper's
//! experiments only need *replayable adversarial variety* — a `(seed, min,
//! max)` triple must always produce the same delay sequence — which a
//! splitmix64 stream provides with no dependencies and no allocation.

/// A deterministic 64-bit PRNG (splitmix64).
///
/// Not cryptographic; used exclusively to sample message delays and test
/// inputs. The stream is a pure function of the seed, so any counterexample
/// an experiment finds is replayable bit-for-bit.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Generator seeded from `seed`.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample from an inclusive range (multiply-shift reduction).
    pub fn gen_range(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        debug_assert!(lo <= hi, "empty gen_range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + ((u128::from(self.next_u64()) * u128::from(span + 1)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..=20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..=3) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(rng.gen_range(42..=42), 42);
    }
}
