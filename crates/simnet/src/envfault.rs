//! Envelope-level fault injection and degraded-network windows.
//!
//! The partition and crash machinery ([`crate::partition`],
//! [`crate::failure`]) models the paper's fault classes; real networks add
//! a third: *per-message* misbehaviour — duplicated, delayed (reordered) or
//! silently dropped envelopes. The rvi_sota_client 3PC test list exercises
//! exactly these, and the PR 3 duplicate-delivery bug showed they find real
//! bugs in this codebase. An [`EnvelopeFault`] pairs a match predicate
//! ([`EnvelopeMatch`]) with an action ([`EnvelopeAction`]) and is applied
//! at send time by the simulation core; a [`DegradeWindow`] remaps sampled
//! delays inside a wall-clock interval without disturbing the delay
//! sampler's stream (a degraded run consumes exactly the random values an
//! undegraded one would).
//!
//! Everything here is `Copy` and deterministic: the duplicate/delay/drop
//! decision is a pure function of the send's `(kind, src, dst)` and the
//! per-fault match ordinal, and degrade remapping mixes only the message id
//! and the raw sample.

use crate::message::SiteId;
use crate::time::{SimDuration, SimTime};

/// Selects envelopes at send time by kind, endpoints, and match ordinal.
///
/// Every field is optional; an unset field matches anything. `nth` narrows
/// the fault to the *n-th* (0-based) send matching the other fields, which
/// is how a timeline says "duplicate the second prepare" rather than "every
/// prepare".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnvelopeMatch {
    /// Payload kind tag (see [`crate::net::Payload::kind`]); `None` matches
    /// every kind.
    pub kind: Option<&'static str>,
    /// Sender filter.
    pub src: Option<SiteId>,
    /// Receiver filter.
    pub dst: Option<SiteId>,
    /// 0-based ordinal among matching sends; `None` hits every match.
    pub nth: Option<u32>,
}

impl EnvelopeMatch {
    /// Matches every envelope.
    pub fn any() -> EnvelopeMatch {
        EnvelopeMatch::default()
    }

    /// Matches envelopes whose payload kind is `kind`.
    pub fn kind(kind: &'static str) -> EnvelopeMatch {
        EnvelopeMatch { kind: Some(kind), ..EnvelopeMatch::default() }
    }

    /// Restricts the sender.
    pub fn from(mut self, src: SiteId) -> EnvelopeMatch {
        self.src = Some(src);
        self
    }

    /// Restricts the receiver.
    pub fn to(mut self, dst: SiteId) -> EnvelopeMatch {
        self.dst = Some(dst);
        self
    }

    /// Restricts to the `n`-th (0-based) matching send.
    pub fn nth(mut self, n: u32) -> EnvelopeMatch {
        self.nth = Some(n);
        self
    }

    /// Does a send with this `(kind, src, dst)` satisfy the field filters
    /// (ordinal excluded — the core tracks ordinals per fault)?
    pub fn covers(&self, kind: &'static str, src: SiteId, dst: SiteId) -> bool {
        self.kind.is_none_or(|k| k == kind)
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// What happens to a matched envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeAction {
    /// The envelope vanishes at the network: no delivery, no bounce — a
    /// fault *outside* the paper's optimistic model, which is the point.
    Drop,
    /// The envelope is delivered normally **and** a second copy arrives
    /// `after` later (same message id: the network, not the sender,
    /// duplicated it). The copy still respects partitions and crashes.
    Duplicate {
        /// Extra delay of the duplicate relative to the first copy.
        after: SimDuration,
    },
    /// Delivery is postponed by `by` beyond the sampled delay, letting
    /// later sends overtake this one (reordering).
    Delay {
        /// Additional in-flight time.
        by: SimDuration,
    },
}

/// One envelope-level fault: a predicate plus an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeFault {
    /// Which sends the fault applies to.
    pub matches: EnvelopeMatch,
    /// What happens to matched envelopes.
    pub action: EnvelopeAction,
}

impl EnvelopeFault {
    /// Drops every send matching `matches`.
    pub fn drop(matches: EnvelopeMatch) -> EnvelopeFault {
        EnvelopeFault { matches, action: EnvelopeAction::Drop }
    }

    /// Duplicates matching sends, the copy arriving `after` later.
    pub fn duplicate(matches: EnvelopeMatch, after: SimDuration) -> EnvelopeFault {
        EnvelopeFault { matches, action: EnvelopeAction::Duplicate { after } }
    }

    /// Delays matching sends by an extra `by` (reordering them past
    /// faster later traffic).
    pub fn delay(matches: EnvelopeMatch, by: SimDuration) -> EnvelopeFault {
        EnvelopeFault { matches, action: EnvelopeAction::Delay { by } }
    }
}

/// A wall-clock window during which the network runs degraded: sampled
/// outbound/return delays are remapped into `[min, max]` ticks (then
/// clamped to the simulation's `T` bound like any other delay).
///
/// The remap replaces the sampled value with a deterministic mix of the
/// message id and the raw sample, so the delay sampler advances exactly as
/// in an undegraded run — adding or removing a degrade window never shifts
/// the random stream seen by the rest of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeWindow {
    /// First instant (inclusive) at which sends are degraded.
    pub from: SimTime,
    /// End of the window (exclusive); `None` means degraded forever.
    pub until: Option<SimTime>,
    /// Smallest remapped delay, in ticks.
    pub min: u64,
    /// Largest remapped delay, in ticks.
    pub max: u64,
}

impl DegradeWindow {
    /// A window from `from` until `until` (exclusive; `None` = open-ended)
    /// remapping delays into `min..=max` ticks.
    pub fn new(from: SimTime, until: Option<SimTime>, min: u64, max: u64) -> DegradeWindow {
        assert!(min <= max, "degrade window needs min <= max");
        assert!(min >= 1, "delays are at least one tick");
        if let Some(u) = until {
            assert!(from < u, "degrade window must not be empty");
        }
        DegradeWindow { from, until, min, max }
    }

    /// Is `now` inside the window?
    #[inline]
    pub fn covers(&self, now: SimTime) -> bool {
        now >= self.from && self.until.is_none_or(|u| now < u)
    }

    /// Remaps a raw sampled delay into the window's band, deterministically
    /// in `(salt, raw)` — the salt is the message id, so concurrent sends
    /// inside one window still spread over the band.
    #[inline]
    pub fn remap(&self, salt: u64, raw: u64) -> u64 {
        let span = self.max - self.min + 1;
        // splitmix64 finalizer over the salt/raw pair.
        let mut z = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(raw);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        self.min + ((u128::from(z) * u128::from(span)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_fields_filter_independently() {
        let m = EnvelopeMatch::kind("prepare").from(SiteId(0)).to(SiteId(2));
        assert!(m.covers("prepare", SiteId(0), SiteId(2)));
        assert!(!m.covers("commit", SiteId(0), SiteId(2)));
        assert!(!m.covers("prepare", SiteId(1), SiteId(2)));
        assert!(!m.covers("prepare", SiteId(0), SiteId(1)));
        assert!(EnvelopeMatch::any().covers("anything", SiteId(5), SiteId(6)));
    }

    #[test]
    fn degrade_window_bounds_and_determinism() {
        let w = DegradeWindow::new(SimTime(100), Some(SimTime(200)), 400, 900);
        assert!(w.covers(SimTime(100)));
        assert!(w.covers(SimTime(199)));
        assert!(!w.covers(SimTime(99)));
        assert!(!w.covers(SimTime(200)));
        for id in 0..200u64 {
            let d = w.remap(id, 17);
            assert!((400..=900).contains(&d), "remap out of band: {d}");
            assert_eq!(d, w.remap(id, 17), "remap must be deterministic");
        }
    }

    #[test]
    fn open_ended_window_never_closes() {
        let w = DegradeWindow::new(SimTime(5), None, 1, 3);
        assert!(w.covers(SimTime(u64::MAX)));
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn inverted_band_rejected() {
        DegradeWindow::new(SimTime(0), None, 9, 3);
    }
}
