//! Generation-stamped timer slots.
//!
//! The simulator used to track cancelled timers in a `HashSet<u64>`: every
//! cancellation allocated/hased into the set and every timer expiry probed
//! it. Protocol runs arm and cancel timers constantly (each commit-phase
//! message re-arms a protocol timeout), so on the sweep hot path this was
//! measurable. The slab replaces it with two small vectors:
//!
//! * `generations[slot]` — bumped every time a slot is released, so a
//!   handle's embedded generation goes stale the instant its timer fires or
//!   is cancelled;
//! * `free` — LIFO recycling of slots, keeping the vectors as small as the
//!   peak number of *concurrently armed* timers (single digits for every
//!   protocol in this workspace).
//!
//! Handles encode `(slot, generation)` in one `u64`, so arm/cancel/fire are
//! all O(1), allocation-free after warm-up, and fully deterministic.

/// Allocation-free timer liveness tracking.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    generations: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Slab with room for `capacity` concurrently armed timers before any
    /// growth.
    pub fn with_capacity(capacity: usize) -> TimerSlab {
        TimerSlab { generations: Vec::with_capacity(capacity), free: Vec::with_capacity(capacity) }
    }

    /// Forgets every slot and generation, keeping the allocations. A reset
    /// slab hands out the same handle ids as a fresh one, so recycling it
    /// across runs (see [`crate::net::SimScratch`]) cannot change a trace.
    pub fn reset(&mut self) {
        self.generations.clear();
        self.free.clear();
    }

    fn encode(slot: u32, generation: u32) -> u64 {
        u64::from(generation) << 32 | u64::from(slot)
    }

    fn decode(id: u64) -> (u32, u32) {
        (id as u32, (id >> 32) as u32)
    }

    /// Arms a timer, returning its handle id.
    pub fn arm(&mut self) -> u64 {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.generations.push(0);
                (self.generations.len() - 1) as u32
            }
        };
        Self::encode(slot, self.generations[slot as usize])
    }

    /// True if the handle refers to a currently armed timer.
    pub fn is_live(&self, id: u64) -> bool {
        let (slot, generation) = Self::decode(id);
        self.generations.get(slot as usize) == Some(&generation)
    }

    fn release(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Cancels the timer if it is still armed. Returns whether it was.
    pub fn cancel(&mut self, id: u64) -> bool {
        if self.is_live(id) {
            self.release(Self::decode(id).0);
            true
        } else {
            false
        }
    }

    /// Consumes the handle at expiry. Returns `true` if the timer was still
    /// armed (it should dispatch) and `false` if it had been cancelled.
    /// Either way the slot is free for reuse afterwards.
    pub fn fire(&mut self, id: u64) -> bool {
        if self.is_live(id) {
            self.release(Self::decode(id).0);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_timer_fires_once() {
        let mut slab = TimerSlab::default();
        let id = slab.arm();
        assert!(slab.is_live(id));
        assert!(slab.fire(id));
        assert!(!slab.fire(id), "second fire of the same handle is stale");
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut slab = TimerSlab::default();
        let id = slab.arm();
        assert!(slab.cancel(id));
        assert!(!slab.cancel(id), "double cancel is a no-op");
        assert!(!slab.fire(id));
    }

    #[test]
    fn slots_recycle_with_fresh_generations() {
        let mut slab = TimerSlab::with_capacity(4);
        let a = slab.arm();
        assert!(slab.fire(a));
        let b = slab.arm();
        // Same slot, different generation: the stale handle stays dead.
        assert_ne!(a, b);
        assert!(!slab.is_live(a));
        assert!(slab.is_live(b));
    }

    #[test]
    fn concurrent_timers_get_distinct_slots() {
        let mut slab = TimerSlab::default();
        let ids: Vec<u64> = (0..8).map(|_| slab.arm()).collect();
        let mut slots: Vec<u32> = ids.iter().map(|&id| id as u32).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 8);
        for id in ids {
            assert!(slab.cancel(id));
        }
    }

    #[test]
    fn footprint_tracks_peak_concurrency() {
        let mut slab = TimerSlab::default();
        for _ in 0..1000 {
            let id = slab.arm();
            assert!(slab.fire(id));
        }
        assert_eq!(slab.generations.len(), 1, "serial arm/fire reuses one slot");
    }
}
