//! Site-failure injection.
//!
//! The paper *assumes* site failures never occur concurrently with a
//! partition (Sec. 5.1, assumptions 3–4) and spends Sec. 7 explaining why:
//! a failed site inside a partition has the same effect as message loss,
//! which is provably fatal. The simulator supports failure injection so
//! experiment E13 can reproduce the paper's two counterexamples; the shipped
//! protocols are entitled to the assumptions and make no attempt to survive
//! crashes during a partition.

use crate::message::SiteId;
use crate::time::SimTime;

/// Crash (and optionally recover) one site at fixed instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureSpec {
    /// The site to crash.
    pub site: SiteId,
    /// When it halts. A crashed site receives no messages (they are dropped,
    /// exactly the message-loss effect Sec. 7 describes) and its timers are
    /// suppressed.
    pub at: SimTime,
    /// When it comes back, if ever. On recovery the actor's
    /// [`crate::Actor::on_recover`] hook runs.
    pub recover_at: Option<SimTime>,
}

impl FailureSpec {
    /// A permanent crash.
    pub fn crash(site: SiteId, at: SimTime) -> Self {
        FailureSpec { site, at, recover_at: None }
    }

    /// A crash followed by recovery.
    pub fn crash_recover(site: SiteId, at: SimTime, recover_at: SimTime) -> Self {
        assert!(recover_at > at, "recovery must come after the crash");
        FailureSpec { site, at, recover_at: Some(recover_at) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_constructor() {
        let f = FailureSpec::crash(SiteId(2), SimTime(100));
        assert_eq!(f.recover_at, None);
        assert_eq!(f.site, SiteId(2));
    }

    #[test]
    fn crash_recover_constructor() {
        let f = FailureSpec::crash_recover(SiteId(2), SimTime(100), SimTime(200));
        assert_eq!(f.recover_at, Some(SimTime(200)));
    }

    #[test]
    #[should_panic(expected = "recovery must come after")]
    fn recovery_before_crash_rejected() {
        FailureSpec::crash_recover(SiteId(2), SimTime(100), SimTime(50));
    }
}
