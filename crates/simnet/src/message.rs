//! Message envelopes and site identifiers.

use crate::time::SimTime;
use core::fmt;

/// Identifies a site (a participating database node).
///
/// The paper numbers sites `1..n` with site 1 the master; we follow the same
/// convention in protocol code, but `SiteId` itself is just an opaque index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// Unique, monotonically increasing message identifier.
///
/// Assigned in send order, which lets adversarial delay schedules address
/// individual messages deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

/// A message in flight: payload plus routing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<P> {
    /// Unique id, in global send order.
    pub id: MsgId,
    /// Sending site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// Instant the message was handed to the network.
    pub sent_at: SimTime,
    /// Protocol payload.
    pub payload: P,
}

/// What the network did with a message — recorded in traces and reported to
/// delay models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Delivered to its destination.
    Delivered,
    /// Returned to its sender as undeliverable (the paper's optimistic
    /// partition model: "all undeliverable messages ... are returned to the
    /// sender", Sec. 5.1 assumption 1).
    Returned,
    /// Silently dropped (pessimistic partition model, or destination site
    /// crashed).
    Dropped,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_display_and_index() {
        assert_eq!(SiteId(3).to_string(), "site3");
        assert_eq!(SiteId(3).index(), 3);
    }

    #[test]
    fn envelope_is_cloneable() {
        let env = Envelope {
            id: MsgId(1),
            src: SiteId(1),
            dst: SiteId(2),
            sent_at: SimTime(10),
            payload: "hello",
        };
        let copy = env.clone();
        assert_eq!(env, copy);
    }

    #[test]
    fn msg_ids_order_by_send_sequence() {
        assert!(MsgId(1) < MsgId(2));
    }
}
