//! Message-delay models.
//!
//! The paper's only assumption about the network is that every message is
//! delivered within `T`, the longest end-to-end propagation delay (Fig. 5).
//! Everything below `T` is adversary-controlled, so the simulator lets
//! experiments pick delays per message: fixed, seeded-random, per-link, or an
//! explicit per-message schedule (used to reconstruct the exact worst-case
//! executions of Figs. 6, 7 and 9).
//!
//! All models are deterministic given their construction parameters, which
//! makes every simulation replayable. The network clamps whatever a model
//! returns into `[1, T]` ticks so the paper's delivery bound always holds.

use crate::message::{MsgId, SiteId};
use crate::rng::SmallRng;
use std::collections::BTreeMap;

/// Which leg of a message's journey a delay is being sampled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Sender towards destination.
    Outbound,
    /// Boundary bounce back to the sender (undeliverable-message return).
    Return,
}

/// A deterministic source of per-message delays, in ticks.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks (per leg).
    Fixed(u64),
    /// Delays drawn uniformly from `[min, max]` by a seeded RNG.
    ///
    /// Sampling order is the network's send/return order, which is
    /// deterministic, so a `(seed, min, max)` triple fully determines an
    /// execution.
    Uniform {
        /// RNG seed.
        seed: u64,
        /// Minimum delay in ticks (inclusive).
        min: u64,
        /// Maximum delay in ticks (inclusive).
        max: u64,
    },
    /// Explicit per-message overrides (keyed by [`MsgId`] and leg), falling
    /// back to `default` ticks. This is the adversary's tool: experiments
    /// name individual messages and stretch exactly the ones the paper's
    /// timing diagrams stretch.
    Scheduled {
        /// `(msg id, is_return_leg) -> ticks`.
        overrides: BTreeMap<(u64, bool), u64>,
        /// Ticks for every message not named in `overrides`.
        default: u64,
    },
    /// Per-(src, dst) link delays, falling back to `default`.
    PerLink {
        /// `(src, dst) -> ticks`. Asymmetric links are allowed.
        links: BTreeMap<(u16, u16), u64>,
        /// Ticks for links not present in the map.
        default: u64,
    },
}

impl DelayModel {
    /// Convenience: uniform delays over the full `(0, T]` range.
    pub fn uniform_full(seed: u64, t_unit: u64) -> DelayModel {
        DelayModel::Uniform { seed, min: 1, max: t_unit }
    }

    /// Builds the stateful sampler for one simulation run.
    pub(crate) fn sampler(&self) -> DelaySampler {
        match self {
            DelayModel::Fixed(d) => DelaySampler::Fixed(*d),
            DelayModel::Uniform { seed, min, max } => DelaySampler::Uniform {
                rng: SmallRng::seed_from_u64(*seed),
                min: *min,
                max: (*max).max(*min),
            },
            DelayModel::Scheduled { overrides, default } => {
                DelaySampler::Scheduled { overrides: overrides.clone(), default: *default }
            }
            DelayModel::PerLink { links, default } => {
                DelaySampler::PerLink { links: links.clone(), default: *default }
            }
        }
    }
}

/// Stateful per-run delay sampler. Created fresh for every simulation so that
/// a `DelayModel` value can be reused across runs with identical results.
#[derive(Debug)]
pub(crate) enum DelaySampler {
    Fixed(u64),
    Uniform { rng: SmallRng, min: u64, max: u64 },
    Scheduled { overrides: BTreeMap<(u64, bool), u64>, default: u64 },
    PerLink { links: BTreeMap<(u16, u16), u64>, default: u64 },
}

impl DelaySampler {
    /// Samples the delay for one leg of one message, in ticks (unclamped; the
    /// network clamps to `[1, T]`).
    pub(crate) fn sample(&mut self, id: MsgId, src: SiteId, dst: SiteId, leg: Leg) -> u64 {
        match self {
            DelaySampler::Fixed(d) => *d,
            DelaySampler::Uniform { rng, min, max } => rng.gen_range(*min..=*max),
            DelaySampler::Scheduled { overrides, default } => {
                *overrides.get(&(id.0, matches!(leg, Leg::Return))).unwrap_or(default)
            }
            DelaySampler::PerLink { links, default } => {
                *links.get(&(src.0, dst.0)).unwrap_or(default)
            }
        }
    }
}

/// Builder for [`DelayModel::Scheduled`], the adversarial schedule.
#[derive(Debug, Default, Clone)]
pub struct ScheduleBuilder {
    overrides: BTreeMap<(u64, bool), u64>,
    default: u64,
}

impl ScheduleBuilder {
    /// Starts a schedule whose unnamed messages take `default` ticks.
    pub fn with_default(default: u64) -> Self {
        ScheduleBuilder { overrides: BTreeMap::new(), default }
    }

    /// Pins the outbound delay of the `n`-th message sent (0-based send order).
    pub fn outbound(mut self, msg_index: u64, ticks: u64) -> Self {
        self.overrides.insert((msg_index, false), ticks);
        self
    }

    /// Pins the return-leg delay of the `n`-th message sent.
    pub fn return_leg(mut self, msg_index: u64, ticks: u64) -> Self {
        self.overrides.insert((msg_index, true), ticks);
        self
    }

    /// Finishes the schedule.
    pub fn build(self) -> DelayModel {
        DelayModel::Scheduled { overrides: self.overrides, default: self.default }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_all(model: &DelayModel, n: u64) -> Vec<u64> {
        let mut s = model.sampler();
        (0..n).map(|i| s.sample(MsgId(i), SiteId(1), SiteId(2), Leg::Outbound)).collect()
    }

    #[test]
    fn fixed_is_constant() {
        assert_eq!(sample_all(&DelayModel::Fixed(42), 5), vec![42; 5]);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let m = DelayModel::Uniform { seed: 7, min: 1, max: 1000 };
        assert_eq!(sample_all(&m, 20), sample_all(&m, 20));
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = DelayModel::Uniform { seed: 9, min: 10, max: 20 };
        for d in sample_all(&m, 200) {
            assert!((10..=20).contains(&d));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DelayModel::Uniform { seed: 1, min: 1, max: 1_000_000 };
        let b = DelayModel::Uniform { seed: 2, min: 1, max: 1_000_000 };
        assert_ne!(sample_all(&a, 10), sample_all(&b, 10));
    }

    #[test]
    fn schedule_overrides_specific_messages() {
        let m = ScheduleBuilder::with_default(100).outbound(3, 999).return_leg(3, 500).build();
        let mut s = m.sampler();
        assert_eq!(s.sample(MsgId(2), SiteId(1), SiteId(2), Leg::Outbound), 100);
        assert_eq!(s.sample(MsgId(3), SiteId(1), SiteId(2), Leg::Outbound), 999);
        assert_eq!(s.sample(MsgId(3), SiteId(1), SiteId(2), Leg::Return), 500);
    }

    #[test]
    fn per_link_uses_link_map() {
        let mut links = BTreeMap::new();
        links.insert((1u16, 2u16), 7u64);
        let m = DelayModel::PerLink { links, default: 3 };
        let mut s = m.sampler();
        assert_eq!(s.sample(MsgId(0), SiteId(1), SiteId(2), Leg::Outbound), 7);
        assert_eq!(s.sample(MsgId(0), SiteId(2), SiteId(1), Leg::Outbound), 3);
    }

    #[test]
    fn sampler_reset_between_runs() {
        let m = DelayModel::Uniform { seed: 5, min: 1, max: 100 };
        let first: Vec<u64> = sample_all(&m, 5);
        let second: Vec<u64> = sample_all(&m, 5);
        assert_eq!(first, second, "fresh sampler must replay identically");
    }
}
