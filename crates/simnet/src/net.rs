//! The simulation engine: actors, contexts, and the event loop.

use crate::delay::{DelayModel, DelaySampler, Leg};
use crate::envfault::{DegradeWindow, EnvelopeAction, EnvelopeFault};
use crate::event::{EventKind, EventQueue};
use crate::failure::FailureSpec;
use crate::message::{Envelope, MsgId, SiteId};
use crate::partition::{PartitionEngine, PartitionMode};
use crate::time::{SimDuration, SimTime};
use crate::timers::TimerSlab;
use crate::trace::{Trace, TraceCounters, TraceEvent, TraceSink};

/// A message payload the network can carry.
///
/// The only thing the network itself needs from a payload is a static tag
/// for the trace (`"prepare"`, `"probe"`, ...); routing never inspects
/// contents.
pub trait Payload: Clone + std::fmt::Debug + 'static {
    /// Message-kind tag recorded in traces.
    fn kind(&self) -> &'static str;
}

impl Payload for &'static str {
    fn kind(&self) -> &'static str {
        self
    }
}

impl Payload for () {
    fn kind(&self) -> &'static str {
        "unit"
    }
}

/// Global simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Ticks per `T` (the longest end-to-end delay, the paper's time unit).
    pub t_unit: u64,
    /// Optimistic (return undeliverables) or pessimistic (drop) partitions.
    pub mode: PartitionMode,
    /// Hard horizon; events past it are not dispatched. Guards against
    /// protocols that never quiesce.
    pub max_time: SimTime,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            t_unit: 1000,
            mode: PartitionMode::Optimistic,
            max_time: SimTime(1000 * 200), // 200 T is far beyond any protocol bound
        }
    }
}

impl NetConfig {
    /// `n` times the `T` unit as a duration — `cfg.t(3)` is the paper's `3T`.
    #[inline]
    pub fn t(&self, n: u64) -> SimDuration {
        SimDuration(self.t_unit * n)
    }
}

/// A deterministic, single-threaded simulated process.
///
/// Handlers run to completion; all effects go through the [`Ctx`].
pub trait Actor<P: Payload> {
    /// Called once at `t=0`, before any message flows.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, P>) {}

    /// A message arrived.
    fn on_message(&mut self, env: Envelope<P>, ctx: &mut Ctx<'_, P>);

    /// One of this site's own messages bounced off a partition boundary and
    /// came back (optimistic model only). `env.dst` is the site that never
    /// received it.
    fn on_undeliverable(&mut self, _env: Envelope<P>, _ctx: &mut Ctx<'_, P>) {}

    /// A previously armed timer fired (and was not cancelled).
    fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_, P>) {}

    /// The site just crashed. This is a *bookkeeping* hook — the site is
    /// already marked down when it runs, so implementations must not send
    /// messages or arm timers here; close out externally visible accounting
    /// (e.g. metric intervals for state the crash wipes) and nothing else.
    fn on_crash(&mut self, _ctx: &mut Ctx<'_, P>) {}

    /// The site recovered from a crash.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_, P>) {}

    /// Optional downcasting hook so callers can inspect concrete actor
    /// state after [`Simulation::run`] returns the actors. Implementations
    /// that want to be inspected return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Boxed actors act by delegation, so `Simulation` can be used both with
/// heterogeneous `Vec<Box<dyn Actor<P>>>` clusters (the historical API) and
/// with statically dispatched actor vectors.
impl<P: Payload, A: Actor<P> + ?Sized> Actor<P> for Box<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, P>) {
        (**self).on_start(ctx);
    }
    fn on_message(&mut self, env: Envelope<P>, ctx: &mut Ctx<'_, P>) {
        (**self).on_message(env, ctx);
    }
    fn on_undeliverable(&mut self, env: Envelope<P>, ctx: &mut Ctx<'_, P>) {
        (**self).on_undeliverable(env, ctx);
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, P>) {
        (**self).on_timer(tag, ctx);
    }
    fn on_crash(&mut self, ctx: &mut Ctx<'_, P>) {
        (**self).on_crash(ctx);
    }
    fn on_recover(&mut self, ctx: &mut Ctx<'_, P>) {
        (**self).on_recover(ctx);
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }
}

/// Handle to an armed timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub u64);

/// Everything an actor may do during a handler: inspect time, send messages,
/// and manage timers.
pub struct Ctx<'a, P: Payload> {
    core: &'a mut Core<P>,
    me: SiteId,
}

impl<P: Payload> Ctx<'_, P> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This actor's site id.
    #[inline]
    pub fn me(&self) -> SiteId {
        self.me
    }

    /// Simulation configuration (for `T`-based timer arithmetic).
    #[inline]
    pub fn config(&self) -> &NetConfig {
        &self.core.config
    }

    /// `n * T` as a duration.
    #[inline]
    pub fn t(&self, n: u64) -> SimDuration {
        self.core.config.t(n)
    }

    /// Sends `payload` to `dst`. Self-sends are delivered (after the sampled
    /// delay) without partition interference.
    pub fn send(&mut self, dst: SiteId, payload: P) {
        self.core.send(self.me, dst, payload);
    }

    /// Sends `payload` to every site in `dsts` except self — cloning for
    /// all targets but the last, which receives the original by move. With
    /// `k` targets that is `k - 1` clones instead of `k`, which matters on
    /// the sweep hot path where every protocol round broadcasts.
    pub fn send_to_all(&mut self, dsts: &[SiteId], payload: P) {
        let me = self.me;
        let Some(last) = dsts.iter().rposition(|&d| d != me) else {
            return;
        };
        for &d in &dsts[..last] {
            if d != me {
                self.core.send(me, d, payload.clone());
            }
        }
        self.core.send(me, dsts[last], payload);
    }

    /// Arms a timer that fires `after` from now, delivering `tag` to
    /// [`Actor::on_timer`].
    pub fn set_timer(&mut self, after: SimDuration, tag: u64) -> TimerHandle {
        self.core.set_timer(self.me, after, tag)
    }

    /// Cancels a timer if it has not fired yet.
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.core.cancel_timer(self.me, handle);
    }

    /// Records a free-form annotation in the trace. Protocol code uses this
    /// for state transitions and decisions; the timing experiments measure
    /// gaps between notes.
    pub fn note(&mut self, label: &'static str, detail: u64) {
        let at = self.core.now;
        let site = self.me;
        self.core.trace(|c| c.notes += 1, || TraceEvent::Note { at, site, label, detail });
    }
}

/// Shared simulator internals (everything except the actors themselves, so
/// handler dispatch can borrow an actor and the core disjointly).
struct Core<P: Payload> {
    config: NetConfig,
    now: SimTime,
    queue: EventQueue<P>,
    next_msg: u64,
    timers: TimerSlab,
    crashed: Vec<bool>,
    partition: PartitionEngine,
    sampler: DelaySampler,
    sink: TraceSink,
    counters: TraceCounters,
    /// Envelope-level faults, applied at send time (usually empty; see
    /// [`Simulation::set_envelope_faults`]).
    env_faults: Vec<EnvelopeFault>,
    /// Per-fault count of sends matching the fault's field filters, for
    /// `nth` ordinals. Parallel to `env_faults`.
    env_hits: Vec<u32>,
    /// Degraded-network windows (usually empty; see
    /// [`Simulation::set_degrades`]).
    degrades: Vec<DegradeWindow>,
}

impl<P: Payload> Core<P> {
    /// Routes one event to the counters and the configured sink.
    ///
    /// The counter bump and the trace record are split so the event struct
    /// is only *built* when a recording sink will keep it: the sweep hot
    /// path runs under [`TraceSink::Null`], where assembling a
    /// [`TraceEvent`] per send/delivery/timer just to discard it was
    /// measurable in the event-dispatch profile (`bench_profile`).
    #[inline]
    fn trace(&mut self, bump: impl FnOnce(&mut TraceCounters), ev: impl FnOnce() -> TraceEvent) {
        bump(&mut self.counters);
        if let TraceSink::Recording(trace) = &mut self.sink {
            trace.push(ev());
        }
    }

    /// Remaps a sampled delay when `now` falls inside a degrade window.
    /// The sampler has already advanced either way, so adding or removing
    /// windows never shifts the random stream the rest of the run sees.
    #[inline]
    fn degraded(&self, id: MsgId, raw: u64) -> u64 {
        for w in &self.degrades {
            if w.covers(self.now) {
                return w.remap(id.0, raw);
            }
        }
        raw
    }

    fn send(&mut self, src: SiteId, dst: SiteId, payload: P) {
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        let kind = payload.kind();
        let env = Envelope { id, src, dst, sent_at: self.now, payload };
        let at = self.now;
        self.trace(|c| c.sent += 1, || TraceEvent::Sent { at, id, src, dst, kind });

        let raw = self.sampler.sample(id, src, dst, Leg::Outbound);
        let out = self.degraded(id, raw).clamp(1, self.config.t_unit);
        let mut delivery_at = self.now + SimDuration(out);

        // Envelope faults, matched at send time. A `Drop` wins outright;
        // `Delay` pushes the delivery instant; `Duplicate` schedules a
        // second copy (same message id — the *network* duplicated it).
        let mut duplicate_after = None;
        if !self.env_faults.is_empty() {
            for i in 0..self.env_faults.len() {
                let fault = self.env_faults[i];
                if !fault.matches.covers(kind, src, dst) {
                    continue;
                }
                let ordinal = self.env_hits[i];
                self.env_hits[i] += 1;
                if fault.matches.nth.is_some_and(|n| n != ordinal) {
                    continue;
                }
                match fault.action {
                    EnvelopeAction::Drop => {
                        self.trace(
                            |c| c.dropped += 1,
                            || TraceEvent::Dropped { at, id, src, dst, kind },
                        );
                        return;
                    }
                    EnvelopeAction::Duplicate { after } => duplicate_after = Some(after),
                    EnvelopeAction::Delay { by } => delivery_at += by,
                }
            }
        }

        match duplicate_after {
            None => self.route(env, delivery_at, false),
            Some(after) => {
                let dup_at = delivery_at + after;
                self.route(env.clone(), delivery_at, false);
                self.route(env, dup_at, true);
            }
        }
    }

    /// Hands one in-flight envelope to the partition oracle and schedules
    /// its delivery, bounce, or drop.
    ///
    /// `ghost` marks a network-fabricated duplicate. The paper's
    /// return-undeliverable service is sound only per *send*: a slave that
    /// sees its yes vote bounce may unilaterally abort because the master
    /// cannot have received it. A ghost copy bouncing off a partition must
    /// therefore vanish silently — returning it would fabricate exactly the
    /// signal that rule relies on, after the original was delivered.
    fn route(&mut self, env: Envelope<P>, delivery_at: SimTime, ghost: bool) {
        let (id, src, dst, kind) = (env.id, env.src, env.dst, env.payload.kind());
        let at = self.now;
        // Does the message cross a partition boundary, and if so when does
        // it bounce?
        //
        // * Disconnected already at send time: the message travels out and
        //   bounces at the boundary — bounce instant is the scheduled
        //   delivery instant (it spent its outbound delay reaching the wall).
        // * Partition starts mid-flight: it was "outstanding ... at the time
        //   partitioning occurs" (Lemma 3's setup) and bounces at the
        //   partition instant.
        //
        // Either way the return leg adds at most `T`, so an undeliverable
        // message is back at its sender within `2T` of sending — the bound
        // the Fig. 6 timing analysis uses.
        match self.partition.bounce_instant(src, dst, self.now, delivery_at) {
            None => {
                self.queue.push(delivery_at, EventKind::Deliver(env));
            }
            Some(bounce_at) => match self.config.mode {
                PartitionMode::Optimistic if !ghost => {
                    let raw = self.sampler.sample(id, src, dst, Leg::Return);
                    let ret = self.degraded(id, raw).clamp(1, self.config.t_unit);
                    self.queue.push(bounce_at + SimDuration(ret), EventKind::ReturnUd(env));
                }
                _ => {
                    self.trace(
                        |c| c.dropped += 1,
                        || TraceEvent::Dropped { at, id, src, dst, kind },
                    );
                }
            },
        }
    }

    fn set_timer(&mut self, site: SiteId, after: SimDuration, tag: u64) -> TimerHandle {
        let timer = self.timers.arm();
        let fire_at = self.now + after;
        let at = self.now;
        self.trace(
            |c| c.timers_set += 1,
            || TraceEvent::TimerSet { at, site, timer, tag, fire_at },
        );
        self.queue.push(fire_at, EventKind::Timer { site, timer, tag });
        TimerHandle(timer)
    }

    fn cancel_timer(&mut self, site: SiteId, handle: TimerHandle) {
        if self.timers.cancel(handle.0) {
            let at = self.now;
            self.trace(
                |c| c.timers_cancelled += 1,
                || TraceEvent::TimerCancelled { at, site, timer: handle.0 },
            );
        }
    }
}

/// The simulator's reusable buffers: event heap, timer slab, crash flags,
/// and the partition engine (whose group vectors a session rewrites between
/// runs).
///
/// A simulation built with [`Simulation::with_scratch`] and finished with
/// [`Simulation::run_recycling`] hands these back so the next run starts
/// with warm allocations instead of fresh ones. Every buffer is reset to a
/// fresh-construction state on reuse, so a recycled run is bit-identical to
/// a cold one — determinism never depends on which path built the
/// simulation.
#[derive(Debug)]
pub struct SimScratch<P: Payload> {
    queue: EventQueue<P>,
    timers: TimerSlab,
    crashed: Vec<bool>,
    /// The partition engine. Callers reconfigure it in place between runs
    /// via [`PartitionEngine::clear`] / [`PartitionEngine::reset_single`],
    /// or simply assign a new one.
    pub partition: PartitionEngine,
}

impl<P: Payload> SimScratch<P> {
    /// Fresh, empty scratch with an always-connected partition engine.
    pub fn new() -> SimScratch<P> {
        SimScratch {
            queue: EventQueue::with_capacity(0),
            timers: TimerSlab::with_capacity(0),
            crashed: Vec::new(),
            partition: PartitionEngine::always_connected(),
        }
    }
}

impl<P: Payload> Default for SimScratch<P> {
    fn default() -> Self {
        SimScratch::new()
    }
}

/// Why the event loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events left: the system quiesced.
    Quiescent,
    /// The configured horizon was reached with events still pending.
    Horizon,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Simulated instant of the last dispatched event.
    pub ended_at: SimTime,
    /// Number of dispatched events.
    pub events: u64,
    /// Per-category trace tallies, kept even under [`TraceSink::Null`].
    pub counters: TraceCounters,
}

/// A configured simulation: actors plus network behaviour.
///
/// Build with [`Simulation::new`], then [`Simulation::run`]. The actors are
/// returned to the caller afterwards so protocol outcomes can be read off
/// their final state.
///
/// The actor type defaults to `Box<dyn Actor<P>>` (heterogeneous clusters,
/// the historical API) but any `A: Actor<P>` works; a homogeneous actor
/// vector dispatches statically, which is what the protocol session runner
/// uses on the sweep hot path.
pub struct Simulation<P: Payload, A: Actor<P> = Box<dyn Actor<P>>> {
    core: Core<P>,
    actors: Vec<A>,
}

impl<P: Payload, A: Actor<P>> Simulation<P, A> {
    /// Creates a simulation over `actors` (site `i` is `actors[i]`) with a
    /// full-recording trace sink.
    pub fn new(
        config: NetConfig,
        actors: Vec<A>,
        partition: PartitionEngine,
        delay: &DelayModel,
        failures: Vec<FailureSpec>,
    ) -> Self {
        Simulation::with_sink(config, actors, partition, delay, failures, TraceSink::recording())
    }

    /// Creates a simulation with an explicit [`TraceSink`].
    ///
    /// Use [`TraceSink::Null`] for verdict-only workloads (resilience
    /// sweeps): no trace events are stored, and [`Simulation::run`] returns
    /// an empty [`Trace`]. Event tallies are still available via
    /// [`RunReport::counters`].
    pub fn with_sink(
        config: NetConfig,
        actors: Vec<A>,
        partition: PartitionEngine,
        delay: &DelayModel,
        failures: Vec<FailureSpec>,
        sink: TraceSink,
    ) -> Self {
        let mut scratch = SimScratch::new();
        scratch.partition = partition;
        Simulation::with_scratch(config, actors, delay, &failures, sink, scratch)
    }

    /// Creates a simulation that reuses the buffers of a previous run.
    ///
    /// The partition engine is taken from `scratch.partition` (configure it
    /// before calling); every other buffer is reset to a fresh state, so
    /// the run is indistinguishable from one built by
    /// [`Simulation::with_sink`]. Finish with [`Simulation::run_recycling`]
    /// to get the scratch back.
    pub fn with_scratch(
        config: NetConfig,
        actors: Vec<A>,
        delay: &DelayModel,
        failures: &[FailureSpec],
        sink: TraceSink,
        scratch: SimScratch<P>,
    ) -> Self {
        let n = actors.len();
        let SimScratch { mut queue, mut timers, mut crashed, partition } = scratch;
        // Broadcast peaks put O(n²) deliveries plus O(n) timers in flight;
        // reserving once here keeps the heap from reallocating mid-run.
        queue.reset(n * n + 4 * n + 2 * failures.len() + 8);
        timers.reset();
        crashed.clear();
        crashed.resize(n, false);
        for f in failures {
            assert!(f.site.index() < n, "failure spec names unknown site {}", f.site);
            queue.push(f.at, EventKind::Crash(f.site));
            if let Some(r) = f.recover_at {
                queue.push(r, EventKind::Recover(f.site));
            }
        }
        Simulation {
            core: Core {
                config,
                now: SimTime::ZERO,
                queue,
                next_msg: 0,
                timers,
                crashed,
                partition,
                sampler: delay.sampler(),
                sink,
                counters: TraceCounters::default(),
                env_faults: Vec::new(),
                env_hits: Vec::new(),
                degrades: Vec::new(),
            },
            actors,
        }
    }

    /// Arms envelope-level faults (duplicate / reorder / drop by match
    /// predicate) for this run. Call before [`Simulation::run`]; the
    /// default is none, leaving the hot path untouched.
    ///
    /// ```
    /// use ptp_simnet::{
    ///     DelayModel, EnvelopeFault, EnvelopeMatch, NetConfig, PartitionEngine, SimDuration,
    ///     Simulation,
    /// };
    /// # use ptp_simnet::{Actor, Ctx, Envelope, SiteId};
    /// # struct Pinger;
    /// # impl Actor<&'static str> for Pinger {
    /// #     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
    /// #         if ctx.me() == SiteId(0) { ctx.send(SiteId(1), "ping"); }
    /// #     }
    /// #     fn on_message(&mut self, _: Envelope<&'static str>, _: &mut Ctx<'_, &'static str>) {}
    /// # }
    /// let mut sim = Simulation::new(
    ///     NetConfig::default(),
    ///     vec![Box::new(Pinger), Box::new(Pinger)],
    ///     PartitionEngine::always_connected(),
    ///     &DelayModel::Fixed(500),
    ///     vec![],
    /// );
    /// // Deliver every "ping" twice, the copy 100 ticks later.
    /// sim.set_envelope_faults(&[EnvelopeFault::duplicate(
    ///     EnvelopeMatch::kind("ping"),
    ///     SimDuration(100),
    /// )]);
    /// let (_, trace, _) = sim.run();
    /// assert_eq!(trace.deliveries_to(SiteId(1), "ping").count(), 2);
    /// ```
    pub fn set_envelope_faults(&mut self, faults: &[EnvelopeFault]) {
        self.core.env_faults.clear();
        self.core.env_faults.extend_from_slice(faults);
        self.core.env_hits.clear();
        self.core.env_hits.resize(faults.len(), 0);
    }

    /// Arms degraded-network windows for this run: while a window covers
    /// the send instant, sampled delays are remapped into its band (see
    /// [`DegradeWindow`]). Default: none.
    pub fn set_degrades(&mut self, windows: &[DegradeWindow]) {
        self.core.degrades.clear();
        self.core.degrades.extend_from_slice(windows);
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.actors.len()
    }

    /// [`Simulation::run`], additionally returning the reusable buffers for
    /// the next [`Simulation::with_scratch`] construction.
    pub fn run_recycling(self) -> (Vec<A>, Trace, RunReport, SimScratch<P>) {
        let (actors, trace, report, core) = self.run_inner();
        let scratch = SimScratch {
            queue: core.queue,
            timers: core.timers,
            crashed: core.crashed,
            partition: core.partition,
        };
        (actors, trace, report, scratch)
    }

    /// Runs every actor's `on_start`, then dispatches events until quiescence
    /// or the horizon. Returns the actors, the trace, and a report.
    pub fn run(self) -> (Vec<A>, Trace, RunReport) {
        let (actors, trace, report, _) = self.run_inner();
        (actors, trace, report)
    }

    fn run_inner(mut self) -> (Vec<A>, Trace, RunReport, Core<P>) {
        // Start hooks, in site order at t=0.
        for i in 0..self.actors.len() {
            self.with_actor(i, |actor, ctx| actor.on_start(ctx));
        }

        let mut events: u64 = 0;
        let mut ended_at = SimTime::ZERO;
        let stop = loop {
            let Some(ev) = self.core.queue.pop() else {
                break StopReason::Quiescent;
            };
            if ev.at > self.core.config.max_time {
                break StopReason::Horizon;
            }
            debug_assert!(ev.at >= self.core.now, "time must be monotone");
            self.core.now = ev.at;
            ended_at = ev.at;
            events += 1;
            match ev.kind {
                EventKind::Deliver(env) => {
                    let dst = env.dst;
                    let (at, id, src, kind) = (ev.at, env.id, env.src, env.payload.kind());
                    if self.core.crashed[dst.index()] {
                        self.core.trace(
                            |c| c.dropped += 1,
                            || TraceEvent::Dropped { at, id, src, dst, kind },
                        );
                        continue;
                    }
                    self.core.trace(
                        |c| c.delivered += 1,
                        || TraceEvent::Delivered { at, id, src, dst, kind },
                    );
                    self.with_actor(dst.index(), |actor, ctx| actor.on_message(env, ctx));
                }
                EventKind::ReturnUd(env) => {
                    let src = env.src;
                    let (at, id, dst, kind) = (ev.at, env.id, env.dst, env.payload.kind());
                    if self.core.crashed[src.index()] {
                        self.core.trace(
                            |c| c.dropped += 1,
                            || TraceEvent::Dropped { at, id, src, dst, kind },
                        );
                        continue;
                    }
                    self.core.trace(
                        |c| c.returned += 1,
                        || TraceEvent::Returned { at, id, src, dst, kind },
                    );
                    self.with_actor(src.index(), |actor, ctx| actor.on_undeliverable(env, ctx));
                }
                EventKind::Timer { site, timer, tag } => {
                    // Consume the slot either way; a handle never fires twice.
                    let at = ev.at;
                    let live = self.core.timers.fire(timer);
                    if !live || self.core.crashed[site.index()] {
                        self.core.trace(
                            |c| c.timers_suppressed += 1,
                            || TraceEvent::TimerSuppressed { at, site, timer, tag },
                        );
                        continue;
                    }
                    self.core.trace(
                        |c| c.timers_fired += 1,
                        || TraceEvent::TimerFired { at, site, timer, tag },
                    );
                    self.with_actor(site.index(), |actor, ctx| actor.on_timer(tag, ctx));
                }
                EventKind::Crash(site) => {
                    self.core.crashed[site.index()] = true;
                    let at = ev.at;
                    self.core.trace(|c| c.crashes += 1, || TraceEvent::Crashed { at, site });
                    self.with_actor(site.index(), |actor, ctx| actor.on_crash(ctx));
                }
                EventKind::Recover(site) => {
                    self.core.crashed[site.index()] = false;
                    let at = ev.at;
                    self.core.trace(|c| c.recoveries += 1, || TraceEvent::Recovered { at, site });
                    self.with_actor(site.index(), |actor, ctx| actor.on_recover(ctx));
                }
            }
        };

        let report = RunReport { stop, ended_at, events, counters: self.core.counters };
        let Simulation { mut core, actors } = self;
        let sink = std::mem::replace(&mut core.sink, TraceSink::Null);
        (actors, sink.into_trace(), report, core)
    }

    /// Dispatch through disjoint borrows: the handler gets the actor and a
    /// `Ctx` over the core simultaneously (separate fields of `self`), so
    /// no per-event move of the actor is needed. The old take-and-put-back
    /// scheme copied the full actor struct — several hundred bytes for an
    /// enum-dispatched protocol site — twice per dispatched event, which
    /// the event profile (`bench_profile`) showed as pure overhead.
    #[inline]
    fn with_actor(&mut self, idx: usize, f: impl FnOnce(&mut A, &mut Ctx<'_, P>)) {
        let mut ctx = Ctx { core: &mut self.core, me: SiteId(idx as u16) };
        f(&mut self.actors[idx], &mut ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Test actor: replies "pong" to "ping", records everything it sees on a
    /// shared board.
    #[derive(Debug, Default, Clone, PartialEq)]
    struct Board {
        delivered: Vec<(u16, &'static str, u64)>, // (to, kind, at)
        ud: Vec<(u16, &'static str, u64)>,        // (sender, kind, at)
        timers: Vec<(u16, u64, u64)>,             // (site, tag, at)
    }

    struct Echo {
        board: Rc<RefCell<Board>>,
        peer: Option<SiteId>,
        starts_ping: bool,
    }

    impl Actor<&'static str> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
            if self.starts_ping {
                ctx.send(self.peer.unwrap(), "ping");
            }
        }
        fn on_message(&mut self, env: Envelope<&'static str>, ctx: &mut Ctx<'_, &'static str>) {
            self.board.borrow_mut().delivered.push((ctx.me().0, env.payload, ctx.now().ticks()));
            if env.payload == "ping" {
                ctx.send(env.src, "pong");
            }
        }
        fn on_undeliverable(
            &mut self,
            env: Envelope<&'static str>,
            ctx: &mut Ctx<'_, &'static str>,
        ) {
            self.board.borrow_mut().ud.push((ctx.me().0, env.payload, ctx.now().ticks()));
        }
        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, &'static str>) {
            self.board.borrow_mut().timers.push((ctx.me().0, tag, ctx.now().ticks()));
        }
    }

    fn two_site(
        partition: PartitionEngine,
        mode: PartitionMode,
    ) -> (Rc<RefCell<Board>>, Trace, RunReport) {
        let board = Rc::new(RefCell::new(Board::default()));
        let a = Echo { board: board.clone(), peer: Some(SiteId(1)), starts_ping: true };
        let b = Echo { board: board.clone(), peer: None, starts_ping: false };
        let config = NetConfig { mode, ..NetConfig::default() };
        let sim = Simulation::new(
            config,
            vec![Box::new(a), Box::new(b)],
            partition,
            &DelayModel::Fixed(100),
            vec![],
        );
        let (_, trace, report) = sim.run();
        (board, trace, report)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (board, _, report) =
            two_site(PartitionEngine::always_connected(), PartitionMode::Optimistic);
        let b = board.borrow();
        assert_eq!(b.delivered, vec![(1, "ping", 100), (0, "pong", 200)]);
        assert_eq!(report.stop, StopReason::Quiescent);
        assert_eq!(report.events, 2);
    }

    #[test]
    fn partition_at_zero_returns_message_optimistic() {
        let part = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(0),
            vec![SiteId(0)],
            vec![SiteId(1)],
        )]);
        let (board, trace, _) = two_site(part, PartitionMode::Optimistic);
        let b = board.borrow();
        assert!(b.delivered.is_empty());
        // Bounce at scheduled delivery (100) + return leg (100).
        assert_eq!(b.ud, vec![(0, "ping", 200)]);
        assert_eq!(trace.returns_to(SiteId(0), "ping").count(), 1);
    }

    #[test]
    fn partition_at_zero_drops_message_pessimistic() {
        let part = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(0),
            vec![SiteId(0)],
            vec![SiteId(1)],
        )]);
        let (board, trace, _) = two_site(part, PartitionMode::Pessimistic);
        let b = board.borrow();
        assert!(b.delivered.is_empty());
        assert!(b.ud.is_empty());
        assert!(trace.events().iter().any(|e| matches!(e, TraceEvent::Dropped { .. })));
    }

    #[test]
    fn mid_flight_partition_bounces_at_partition_instant() {
        // ping sent at t=0 with delay 100; partition at t=50 → bounce at 50,
        // return leg 100 → UD at 150.
        let part = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(50),
            vec![SiteId(0)],
            vec![SiteId(1)],
        )]);
        let (board, _, _) = two_site(part, PartitionMode::Optimistic);
        assert_eq!(board.borrow().ud, vec![(0, "ping", 150)]);
    }

    #[test]
    fn heal_before_send_means_delivery() {
        let part = PartitionEngine::new(vec![PartitionSpec::transient(
            SimTime(0),
            vec![SiteId(0)],
            vec![SiteId(1)],
            SimTime(1),
        )]);
        // Send happens at t=0 while partitioned → bounced even though the
        // network heals at t=1 (the message already hit the wall).
        let (board, _, _) = two_site(part, PartitionMode::Optimistic);
        assert_eq!(board.borrow().ud.len(), 1);
    }

    struct TimerActor {
        board: Rc<RefCell<Board>>,
        cancel_second: bool,
    }
    impl Actor<&'static str> for TimerActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
            ctx.set_timer(SimDuration(10), 1);
            let h = ctx.set_timer(SimDuration(20), 2);
            if self.cancel_second {
                ctx.cancel_timer(h);
            }
        }
        fn on_message(&mut self, _: Envelope<&'static str>, _: &mut Ctx<'_, &'static str>) {}
        fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, &'static str>) {
            self.board.borrow_mut().timers.push((ctx.me().0, tag, ctx.now().ticks()));
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let board = Rc::new(RefCell::new(Board::default()));
        let sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(TimerActor { board: board.clone(), cancel_second: false })],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(1),
            vec![],
        );
        sim.run();
        assert_eq!(board.borrow().timers, vec![(0, 1, 10), (0, 2, 20)]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let board = Rc::new(RefCell::new(Board::default()));
        let sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(TimerActor { board: board.clone(), cancel_second: true })],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(1),
            vec![],
        );
        let (_, trace, _) = sim.run();
        assert_eq!(board.borrow().timers, vec![(0, 1, 10)]);
        assert!(trace.events().iter().any(|e| matches!(e, TraceEvent::TimerSuppressed { .. })));
    }

    #[test]
    fn crashed_site_drops_messages_and_timers() {
        let board = Rc::new(RefCell::new(Board::default()));
        let a = Echo { board: board.clone(), peer: Some(SiteId(1)), starts_ping: true };
        let b = Echo { board: board.clone(), peer: None, starts_ping: false };
        let sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(a), Box::new(b)],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(100),
            vec![FailureSpec::crash(SiteId(1), SimTime(50))],
        );
        let (_, trace, _) = sim.run();
        assert!(board.borrow().delivered.is_empty());
        assert!(trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Crashed { site, .. } if *site == SiteId(1))));
    }

    #[test]
    fn crash_hook_runs_at_crash_instant_and_recover_after() {
        struct CrashWatcher {
            board: Rc<RefCell<Vec<(&'static str, u64)>>>,
        }
        impl Actor<&'static str> for CrashWatcher {
            fn on_message(&mut self, _: Envelope<&'static str>, _: &mut Ctx<'_, &'static str>) {}
            fn on_crash(&mut self, ctx: &mut Ctx<'_, &'static str>) {
                self.board.borrow_mut().push(("crash", ctx.now().ticks()));
            }
            fn on_recover(&mut self, ctx: &mut Ctx<'_, &'static str>) {
                self.board.borrow_mut().push(("recover", ctx.now().ticks()));
            }
        }
        let board = Rc::new(RefCell::new(Vec::new()));
        let sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(CrashWatcher { board: board.clone() })],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(1),
            vec![FailureSpec::crash_recover(SiteId(0), SimTime(40), SimTime(90))],
        );
        sim.run();
        assert_eq!(*board.borrow(), vec![("crash", 40), ("recover", 90)]);
    }

    #[test]
    fn horizon_stops_runaway() {
        struct Looper;
        impl Actor<&'static str> for Looper {
            fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
                ctx.set_timer(SimDuration(10), 0);
            }
            fn on_message(&mut self, _: Envelope<&'static str>, _: &mut Ctx<'_, &'static str>) {}
            fn on_timer(&mut self, _: u64, ctx: &mut Ctx<'_, &'static str>) {
                ctx.set_timer(SimDuration(10), 0); // re-arm forever
            }
        }
        let config = NetConfig { max_time: SimTime(1000), ..NetConfig::default() };
        let sim = Simulation::new(
            config,
            vec![Box::new(Looper)],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(1),
            vec![],
        );
        let (_, _, report) = sim.run();
        assert_eq!(report.stop, StopReason::Horizon);
        assert!(report.ended_at <= SimTime(1000));
    }

    #[test]
    fn delay_clamped_to_t() {
        // A 10_000-tick "delay" with t_unit=1000 must be clamped to 1000.
        let board = Rc::new(RefCell::new(Board::default()));
        let a = Echo { board: board.clone(), peer: Some(SiteId(1)), starts_ping: true };
        let b = Echo { board: board.clone(), peer: None, starts_ping: false };
        let sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(a), Box::new(b)],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(10_000),
            vec![],
        );
        sim.run();
        assert_eq!(board.borrow().delivered[0], (1, "ping", 1000));
    }

    #[test]
    fn recycled_scratch_replays_identically() {
        // Two ping-pong runs through the same scratch (the second reusing
        // the first's warm buffers) must produce identical traces and
        // reports — and match a cold with_sink run.
        let part = || {
            PartitionEngine::new(vec![PartitionSpec::transient(
                SimTime(150),
                vec![SiteId(0)],
                vec![SiteId(1)],
                SimTime(400),
            )])
        };
        let run_once = |scratch: SimScratch<&'static str>| {
            let board = Rc::new(RefCell::new(Board::default()));
            let a = Echo { board: board.clone(), peer: Some(SiteId(1)), starts_ping: true };
            let b = Echo { board: board.clone(), peer: None, starts_ping: false };
            let actors: Vec<Box<dyn Actor<&'static str>>> = vec![Box::new(a), Box::new(b)];
            let sim = Simulation::with_scratch(
                NetConfig::default(),
                actors,
                &DelayModel::Fixed(100),
                &[],
                TraceSink::recording(),
                scratch,
            );
            let (_, trace, report, scratch) = sim.run_recycling();
            (trace, report.events, scratch)
        };
        let mut scratch = SimScratch::new();
        scratch.partition = part();
        let (cold_trace, cold_events, mut scratch) = run_once(scratch);
        scratch.partition = part();
        let (warm_trace, warm_events, _) = run_once(scratch);
        assert_eq!(cold_trace.events(), warm_trace.events());
        assert_eq!(cold_events, warm_events);
    }

    fn faulted_two_site(
        faults: &[crate::envfault::EnvelopeFault],
        degrades: &[crate::envfault::DegradeWindow],
    ) -> (Rc<RefCell<Board>>, Trace, RunReport) {
        let board = Rc::new(RefCell::new(Board::default()));
        let a = Echo { board: board.clone(), peer: Some(SiteId(1)), starts_ping: true };
        let b = Echo { board: board.clone(), peer: None, starts_ping: false };
        let mut sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(a), Box::new(b)],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(100),
            vec![],
        );
        sim.set_envelope_faults(faults);
        sim.set_degrades(degrades);
        let (_, trace, report) = sim.run();
        (board, trace, report)
    }

    #[test]
    fn envelope_drop_loses_the_message_silently() {
        use crate::envfault::{EnvelopeFault, EnvelopeMatch};
        let (board, trace, _) =
            faulted_two_site(&[EnvelopeFault::drop(EnvelopeMatch::kind("ping"))], &[]);
        let b = board.borrow();
        // Unlike a partition bounce, nothing comes back to the sender.
        assert!(b.delivered.is_empty());
        assert!(b.ud.is_empty());
        assert!(trace.events().iter().any(|e| matches!(e, TraceEvent::Dropped { .. })));
    }

    #[test]
    fn envelope_duplicate_delivers_twice_with_the_same_id() {
        use crate::envfault::{EnvelopeFault, EnvelopeMatch};
        let (board, trace, _) = faulted_two_site(
            &[EnvelopeFault::duplicate(EnvelopeMatch::kind("ping"), SimDuration(40))],
            &[],
        );
        let b = board.borrow();
        // Original at 100, copy at 140; site 1 answers each ping.
        assert_eq!(b.delivered[0], (1, "ping", 100));
        assert_eq!(b.delivered[1], (1, "ping", 140));
        let ids: Vec<_> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Delivered { id, dst, .. } if *dst == SiteId(1) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], ids[1], "the network duplicated one message");
    }

    #[test]
    fn envelope_delay_reorders_past_later_traffic() {
        use crate::envfault::{EnvelopeFault, EnvelopeMatch};
        // Delay the ping by 500: the pong reply (sent at 600, delivered at
        // 700) lands after it, but a second undelayed ping would overtake.
        let (board, _, _) = faulted_two_site(
            &[EnvelopeFault::delay(EnvelopeMatch::kind("ping"), SimDuration(500))],
            &[],
        );
        assert_eq!(board.borrow().delivered, vec![(1, "ping", 600), (0, "pong", 700)]);
    }

    #[test]
    fn nth_ordinal_hits_only_that_match() {
        use crate::envfault::{EnvelopeFault, EnvelopeMatch};
        // Only the 1st (0-based) "ping" would be dropped; the ping-pong
        // exchange sends exactly one ping, so nothing is lost.
        let (board, _, _) =
            faulted_two_site(&[EnvelopeFault::drop(EnvelopeMatch::kind("ping").nth(1))], &[]);
        assert_eq!(board.borrow().delivered, vec![(1, "ping", 100), (0, "pong", 200)]);
    }

    #[test]
    fn degrade_window_slows_covered_sends_only() {
        use crate::envfault::DegradeWindow;
        // Window covers t=0 (the ping) but not t>=50 (the pong at 100):
        // ping is remapped into [900, 900], pong keeps its sampled 100.
        let (board, _, _) =
            faulted_two_site(&[], &[DegradeWindow::new(SimTime(0), Some(SimTime(50)), 900, 900)]);
        assert_eq!(board.borrow().delivered, vec![(1, "ping", 900), (0, "pong", 1000)]);
    }

    #[test]
    fn no_faults_armed_is_byte_identical_to_default_construction() {
        let (plain_board, plain_trace, _) =
            two_site(PartitionEngine::always_connected(), PartitionMode::Optimistic);
        let (armed_board, armed_trace, _) = faulted_two_site(&[], &[]);
        assert_eq!(*plain_board.borrow(), *armed_board.borrow());
        assert_eq!(plain_trace.events(), armed_trace.events());
    }

    #[test]
    fn note_lands_in_trace() {
        struct Noter;
        impl Actor<&'static str> for Noter {
            fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
                ctx.note("hello", 42);
            }
            fn on_message(&mut self, _: Envelope<&'static str>, _: &mut Ctx<'_, &'static str>) {}
        }
        let sim = Simulation::new(
            NetConfig::default(),
            vec![Box::new(Noter)],
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(1),
            vec![],
        );
        let (_, trace, _) = sim.run();
        assert_eq!(trace.first_note(SiteId(0), "hello"), Some((SimTime(0), 42)));
    }
}
