//! Network partitioning: the failure class the paper is about.
//!
//! Terminology (Sec. 2):
//! * **simple partitioning** — sites split into exactly two groups with no
//!   communication between them;
//! * **multiple partitioning** — more than two groups (provably hopeless,
//!   reproduced by experiment E12);
//! * **transient partitioning** — the network heals before all affected
//!   transactions have terminated (Sec. 6);
//! * **optimistic model** — undeliverable messages are returned to their
//!   senders; **pessimistic model** — they are lost.

use crate::message::SiteId;
use crate::time::SimTime;

/// Whether undeliverable messages are returned or lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// The paper's assumption 1: undeliverable messages come back to the
    /// sender (within `2T` of the original send in this simulator).
    #[default]
    Optimistic,
    /// Undeliverable messages vanish. The Skeen–Stonebraker impossibility
    /// theorem says no protocol is resilient in this model.
    Pessimistic,
}

/// A partition episode: at `at`, the sites split into `groups`; if `heal_at`
/// is set, full connectivity returns at that instant (transient partitioning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// When the partition occurs.
    pub at: SimTime,
    /// The connectivity groups. Two groups = simple partitioning; more =
    /// multiple partitioning. Sites not listed anywhere are unreachable from
    /// everyone (treated as a singleton group).
    pub groups: Vec<Vec<SiteId>>,
    /// When the partition heals, if it does.
    pub heal_at: Option<SimTime>,
}

impl PartitionSpec {
    /// A simple (two-group) partition that never heals.
    pub fn simple(at: SimTime, group_a: Vec<SiteId>, group_b: Vec<SiteId>) -> Self {
        PartitionSpec { at, groups: vec![group_a, group_b], heal_at: None }
    }

    /// A simple partition that heals at `heal_at` (Sec. 6's transient case).
    pub fn transient(
        at: SimTime,
        group_a: Vec<SiteId>,
        group_b: Vec<SiteId>,
        heal_at: SimTime,
    ) -> Self {
        PartitionSpec { at, groups: vec![group_a, group_b], heal_at: Some(heal_at) }
    }

    /// True if this is a simple (exactly two group) partition.
    pub fn is_simple(&self) -> bool {
        self.groups.len() == 2
    }

    /// Index of the group containing `site`, if any.
    fn group_of(&self, site: SiteId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&site))
    }
}

/// Evaluates connectivity questions against a list of partition episodes.
///
/// Episodes may not overlap in time; [`PartitionEngine::new`] checks this.
/// (The paper's assumption 2 rules out a second partition before the first
/// one's transactions terminate; the engine still supports sequential
/// episodes so experiments can model repeated transient partitions.)
#[derive(Debug, Clone)]
pub struct PartitionEngine {
    episodes: Vec<PartitionSpec>,
}

impl PartitionEngine {
    /// Creates an engine from episodes, validating that they are disjoint in
    /// time and sorted by start.
    ///
    /// # Panics
    /// Panics if two episodes overlap in time.
    pub fn new(mut episodes: Vec<PartitionSpec>) -> Self {
        episodes.sort_by_key(|e| e.at);
        for pair in episodes.windows(2) {
            let end = pair[0].heal_at.expect("an unhealed partition must be the last episode");
            assert!(end <= pair[1].at, "partition episodes overlap in time");
        }
        PartitionEngine { episodes }
    }

    /// No partitions at all.
    pub fn always_connected() -> Self {
        PartitionEngine { episodes: Vec::new() }
    }

    /// Removes every episode in place: the engine reports full connectivity
    /// afterwards, exactly like [`PartitionEngine::always_connected`].
    pub fn clear(&mut self) {
        self.episodes.clear();
    }

    /// Reconfigures the engine in place as a **single** episode starting at
    /// `at` (healing at `heal_at`, if given) with exactly `group_count`
    /// connectivity groups, and returns the group buffers for the caller to
    /// fill. Existing group vectors are cleared and reused, so a scenario
    /// session can rewrite its engine for every grid cell without
    /// reallocating — this is the buffer-reuse path behind
    /// `ptp_core::Session`.
    ///
    /// A single episode needs no overlap validation, so the resulting engine
    /// is always well formed once the caller has filled the groups.
    pub fn reset_single(
        &mut self,
        at: SimTime,
        heal_at: Option<SimTime>,
        group_count: usize,
    ) -> &mut [Vec<SiteId>] {
        self.episodes.truncate(1);
        match self.episodes.first_mut() {
            Some(episode) => {
                episode.at = at;
                episode.heal_at = heal_at;
            }
            None => self.episodes.push(PartitionSpec { at, groups: Vec::new(), heal_at }),
        }
        let groups = &mut self.episodes[0].groups;
        for g in groups.iter_mut() {
            g.clear();
        }
        groups.truncate(group_count);
        groups.resize_with(group_count, Vec::new);
        groups
    }

    /// The episode active at `now`, if any.
    pub fn active_at(&self, now: SimTime) -> Option<&PartitionSpec> {
        self.episodes.iter().find(|e| e.at <= now && e.heal_at.is_none_or(|h| now < h))
    }

    /// Can a message travel from `a` to `b` at instant `now`?
    pub fn connected(&self, a: SiteId, b: SiteId, now: SimTime) -> bool {
        if a == b {
            return true;
        }
        match self.active_at(now) {
            None => true,
            Some(ep) => match (ep.group_of(a), ep.group_of(b)) {
                (Some(ga), Some(gb)) => ga == gb,
                // A site missing from every group is isolated.
                _ => false,
            },
        }
    }

    /// The first instant in `(from, to]` at which `a` and `b` become
    /// disconnected, if any. Used to schedule undeliverable-message bounces
    /// for messages that were in flight when the partition started.
    pub fn disconnect_time(
        &self,
        a: SiteId,
        b: SiteId,
        from: SimTime,
        to: SimTime,
    ) -> Option<SimTime> {
        if a == b {
            return None;
        }
        self.episodes
            .iter()
            .filter(|e| e.at > from && e.at <= to)
            .find(|e| match (e.group_of(a), e.group_of(b)) {
                (Some(ga), Some(gb)) => ga != gb,
                _ => true,
            })
            .map(|e| e.at)
    }

    /// All episode boundaries (start and heal instants), for trace annotation.
    pub fn boundaries(&self) -> Vec<(SimTime, bool)> {
        let mut out = Vec::new();
        for e in &self.episodes {
            out.push((e.at, true));
            if let Some(h) = e.heal_at {
                out.push((h, false));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> SiteId {
        SiteId(i)
    }

    fn simple_at(at: u64) -> PartitionSpec {
        PartitionSpec::simple(SimTime(at), vec![s(1), s(2)], vec![s(3)])
    }

    #[test]
    fn connected_before_partition() {
        let eng = PartitionEngine::new(vec![simple_at(100)]);
        assert!(eng.connected(s(1), s(3), SimTime(99)));
        assert!(!eng.connected(s(1), s(3), SimTime(100)));
        assert!(eng.connected(s(1), s(2), SimTime(100)));
    }

    #[test]
    fn self_loop_always_connected() {
        let eng = PartitionEngine::new(vec![simple_at(0)]);
        assert!(eng.connected(s(3), s(3), SimTime(50)));
    }

    #[test]
    fn heal_restores_connectivity() {
        let eng = PartitionEngine::new(vec![PartitionSpec::transient(
            SimTime(10),
            vec![s(1)],
            vec![s(2)],
            SimTime(20),
        )]);
        assert!(!eng.connected(s(1), s(2), SimTime(15)));
        assert!(eng.connected(s(1), s(2), SimTime(20)));
    }

    #[test]
    fn unlisted_site_is_isolated() {
        let eng =
            PartitionEngine::new(vec![PartitionSpec::simple(SimTime(0), vec![s(1)], vec![s(2)])]);
        assert!(!eng.connected(s(1), s(9), SimTime(5)));
        assert!(!eng.connected(s(9), s(2), SimTime(5)));
    }

    #[test]
    fn disconnect_time_finds_partition_start() {
        let eng = PartitionEngine::new(vec![simple_at(100)]);
        assert_eq!(eng.disconnect_time(s(1), s(3), SimTime(50), SimTime(150)), Some(SimTime(100)));
        // Same-group pairs never disconnect.
        assert_eq!(eng.disconnect_time(s(1), s(2), SimTime(50), SimTime(150)), None);
        // Window entirely before the partition.
        assert_eq!(eng.disconnect_time(s(1), s(3), SimTime(0), SimTime(99)), None);
    }

    #[test]
    fn multiple_partitioning_three_groups() {
        let eng = PartitionEngine::new(vec![PartitionSpec {
            at: SimTime(0),
            groups: vec![vec![s(1)], vec![s(2)], vec![s(3)]],
            heal_at: None,
        }]);
        assert!(!eng.connected(s(1), s(2), SimTime(1)));
        assert!(!eng.connected(s(2), s(3), SimTime(1)));
        assert!(!eng.connected(s(1), s(3), SimTime(1)));
    }

    #[test]
    fn sequential_episodes_allowed() {
        let eng = PartitionEngine::new(vec![
            PartitionSpec::transient(SimTime(0), vec![s(1)], vec![s(2)], SimTime(10)),
            PartitionSpec::transient(SimTime(20), vec![s(1), s(2)], vec![], SimTime(30)),
        ]);
        assert!(!eng.connected(s(1), s(2), SimTime(5)));
        assert!(eng.connected(s(1), s(2), SimTime(15)));
        assert!(eng.connected(s(1), s(2), SimTime(25)));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_episodes_rejected() {
        PartitionEngine::new(vec![
            PartitionSpec::transient(SimTime(0), vec![s(1)], vec![s(2)], SimTime(50)),
            PartitionSpec::simple(SimTime(25), vec![s(1)], vec![s(2)]),
        ]);
    }

    #[test]
    fn is_simple_classification() {
        assert!(simple_at(0).is_simple());
        let multi = PartitionSpec {
            at: SimTime(0),
            groups: vec![vec![s(1)], vec![s(2)], vec![s(3)]],
            heal_at: None,
        };
        assert!(!multi.is_simple());
    }
}
