//! Network partitioning: the failure class the paper is about.
//!
//! Terminology (Sec. 2):
//! * **simple partitioning** — sites split into exactly two groups with no
//!   communication between them;
//! * **multiple partitioning** — more than two groups (provably hopeless,
//!   reproduced by experiment E12);
//! * **transient partitioning** — the network heals before all affected
//!   transactions have terminated (Sec. 6);
//! * **optimistic model** — undeliverable messages are returned to their
//!   senders; **pessimistic model** — they are lost.

use crate::message::SiteId;
use crate::time::SimTime;

/// Whether undeliverable messages are returned or lost.
///
/// # Examples
///
/// ```
/// use ptp_simnet::PartitionMode;
///
/// // The paper works in the optimistic model; it is the default.
/// assert_eq!(PartitionMode::default(), PartitionMode::Optimistic);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// The paper's assumption 1: undeliverable messages come back to the
    /// sender (within `2T` of the original send in this simulator).
    #[default]
    Optimistic,
    /// Undeliverable messages vanish. The Skeen–Stonebraker impossibility
    /// theorem says no protocol is resilient in this model.
    Pessimistic,
}

/// A partition episode: at `at`, the sites split into `groups`; if `heal_at`
/// is set, full connectivity returns at that instant (transient partitioning).
///
/// # Examples
///
/// ```
/// use ptp_simnet::{PartitionSpec, SimTime, SiteId};
///
/// // Sites {0, 1} lose contact with site 2 at t = 1500, forever.
/// let spec = PartitionSpec::simple(SimTime(1500), vec![SiteId(0), SiteId(1)], vec![SiteId(2)]);
/// assert!(spec.is_simple());
///
/// // The same split, healing at t = 4000 (Sec. 6's transient case).
/// let spec =
///     PartitionSpec::transient(SimTime(1500), vec![SiteId(0), SiteId(1)], vec![SiteId(2)], SimTime(4000));
/// assert_eq!(spec.heal_at, Some(SimTime(4000)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// When the partition occurs.
    pub at: SimTime,
    /// The connectivity groups. Two groups = simple partitioning; more =
    /// multiple partitioning. Sites not listed anywhere are unreachable from
    /// everyone (treated as a singleton group).
    pub groups: Vec<Vec<SiteId>>,
    /// When the partition heals, if it does.
    pub heal_at: Option<SimTime>,
}

impl PartitionSpec {
    /// A simple (two-group) partition that never heals.
    pub fn simple(at: SimTime, group_a: Vec<SiteId>, group_b: Vec<SiteId>) -> Self {
        PartitionSpec { at, groups: vec![group_a, group_b], heal_at: None }
    }

    /// A simple partition that heals at `heal_at` (Sec. 6's transient case).
    pub fn transient(
        at: SimTime,
        group_a: Vec<SiteId>,
        group_b: Vec<SiteId>,
        heal_at: SimTime,
    ) -> Self {
        PartitionSpec { at, groups: vec![group_a, group_b], heal_at: Some(heal_at) }
    }

    /// True if this is a simple (exactly two group) partition.
    pub fn is_simple(&self) -> bool {
        self.groups.len() == 2
    }

    /// Index of the group containing `site`, if any.
    fn group_of(&self, site: SiteId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&site))
    }

    /// Does this episode cut `members` apart — i.e. leave some pair of them
    /// unable to communicate while it is active? The multi-group
    /// bookkeeping query behind `ptp-shard`'s per-replica-group analysis:
    /// a replica group whose members straddle the episode's fragments (or
    /// include an isolated, unlisted site) cannot run its commit protocol
    /// wholly inside one fragment.
    ///
    /// # Examples
    ///
    /// ```
    /// use ptp_simnet::{PartitionSpec, SimTime, SiteId};
    ///
    /// let spec = PartitionSpec::simple(
    ///     SimTime(1000),
    ///     vec![SiteId(0), SiteId(1)],
    ///     vec![SiteId(2), SiteId(3)],
    /// );
    /// assert!(!spec.severs(&[SiteId(2), SiteId(3)])); // same fragment
    /// assert!(spec.severs(&[SiteId(1), SiteId(2)])); // straddles the cut
    /// assert!(spec.severs(&[SiteId(0), SiteId(9)])); // 9 is isolated
    /// ```
    pub fn severs(&self, members: &[SiteId]) -> bool {
        if members.len() < 2 {
            return false;
        }
        match self.group_of(members[0]) {
            // An unlisted site is isolated from everyone, its own group
            // peers included.
            None => true,
            Some(first) => members[1..].iter().any(|&s| self.group_of(s) != Some(first)),
        }
    }
}

/// Evaluates connectivity questions against an ordered **schedule** of
/// partition episodes.
///
/// Episodes may not overlap in time; [`PartitionEngine::new`] checks this.
/// (The paper's assumption 2 rules out a second partition before the first
/// one's transactions terminate; the engine supports sequential episodes —
/// cascading splits, staggered heals, regroupings — precisely so experiments
/// can quantify where that assumption is load-bearing.)
///
/// Repeated-run workloads rewrite one engine in place instead of building a
/// new one per run: [`PartitionEngine::reset_single`] for the classic
/// one-episode case, [`PartitionEngine::reset_schedule`] +
/// [`PartitionEngine::episode_groups`] for multi-episode schedules. Both
/// recycle the episode and group buffers, so the sweep hot path stays
/// allocation-free in steady state.
///
/// # Examples
///
/// A split → heal → re-split schedule, written twice through the same
/// engine (second write reuses every buffer):
///
/// ```
/// use ptp_simnet::{PartitionEngine, SimTime, SiteId};
///
/// let mut engine = PartitionEngine::always_connected();
/// for round in 0..2 {
///     engine.reset_schedule(2);
///     let g = engine.episode_groups(0, SimTime(1000), Some(SimTime(3000)), 2);
///     g[0].extend([SiteId(0), SiteId(1)]);
///     g[1].push(SiteId(2));
///     let g = engine.episode_groups(1, SimTime(5000), None, 2);
///     g[0].extend([SiteId(0), SiteId(1)]);
///     g[1].push(SiteId(2));
///     assert!(!engine.connected(SiteId(0), SiteId(2), SimTime(2000)), "round {round}");
///     assert!(engine.connected(SiteId(0), SiteId(2), SimTime(4000)), "healed");
///     assert!(!engine.connected(SiteId(0), SiteId(2), SimTime(6000)), "re-split");
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PartitionEngine {
    episodes: Vec<PartitionSpec>,
}

impl PartitionEngine {
    /// Creates an engine from episodes, validating that they are disjoint in
    /// time and sorted by start.
    ///
    /// # Panics
    /// Panics if two episodes overlap in time.
    pub fn new(mut episodes: Vec<PartitionSpec>) -> Self {
        episodes.sort_by_key(|e| e.at);
        for pair in episodes.windows(2) {
            let end = pair[0].heal_at.expect("an unhealed partition must be the last episode");
            assert!(end <= pair[1].at, "partition episodes overlap in time");
        }
        PartitionEngine { episodes }
    }

    /// No partitions at all.
    pub fn always_connected() -> Self {
        PartitionEngine { episodes: Vec::new() }
    }

    /// Removes every episode in place: the engine reports full connectivity
    /// afterwards, exactly like [`PartitionEngine::always_connected`].
    pub fn clear(&mut self) {
        self.episodes.clear();
    }

    /// Reconfigures the engine in place as a **single** episode starting at
    /// `at` (healing at `heal_at`, if given) with exactly `group_count`
    /// connectivity groups, and returns the group buffers for the caller to
    /// fill. Existing group vectors are cleared and reused, so a scenario
    /// session can rewrite its engine for every grid cell without
    /// reallocating — this is the buffer-reuse path behind
    /// `ptp_core::Session`.
    ///
    /// A single episode needs no overlap validation, so the resulting engine
    /// is always well formed once the caller has filled the groups.
    pub fn reset_single(
        &mut self,
        at: SimTime,
        heal_at: Option<SimTime>,
        group_count: usize,
    ) -> &mut [Vec<SiteId>] {
        self.reset_schedule(1);
        self.episode_groups(0, at, heal_at, group_count)
    }

    /// Reconfigures the engine in place as an ordered **multi-episode
    /// schedule** of exactly `episode_count` episodes, generalizing
    /// [`PartitionEngine::reset_single`]'s buffer recycling: surviving
    /// episode records and their group vectors are reused, so a scenario
    /// session can rewrite its engine for every grid cell without
    /// reallocating.
    ///
    /// After this call every episode `0..episode_count` **must** be written
    /// through [`PartitionEngine::episode_groups`], in index order, before
    /// the engine is queried. Kept episodes have their heal instants
    /// stamped out here, so an out-of-order write trips `episode_groups`'
    /// predecessor check ("an unhealed partition must be the last episode")
    /// instead of validating against a stale header — the in-order
    /// discipline, and with it the no-overlap invariant that
    /// [`PartitionEngine::new`] checks for the allocating path, is
    /// enforced, not just documented.
    pub fn reset_schedule(&mut self, episode_count: usize) {
        self.episodes.truncate(episode_count);
        for episode in &mut self.episodes {
            episode.heal_at = None;
        }
        self.episodes.resize_with(episode_count, || PartitionSpec {
            at: SimTime(0),
            groups: Vec::new(),
            heal_at: None,
        });
    }

    /// Rewrites episode `index` of the current schedule to start at `at`
    /// (healing at `heal_at`, if given) with exactly `group_count`
    /// connectivity groups, and returns the cleared group buffers for the
    /// caller to fill. Existing group vectors are recycled.
    ///
    /// A degenerate heal instant (`heal_at <= at`) is tolerated, exactly as
    /// [`PartitionEngine::new`] tolerates it in a final episode: the
    /// episode's active window is empty, so it never partitions anything.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the schedule set up by
    /// [`PartitionEngine::reset_schedule`], or if the episode would overlap
    /// its predecessor (episode `index - 1` must heal at or before `at`; an
    /// unhealed — or not-yet-rewritten — predecessor means this write is
    /// out of order).
    pub fn episode_groups(
        &mut self,
        index: usize,
        at: SimTime,
        heal_at: Option<SimTime>,
        group_count: usize,
    ) -> &mut [Vec<SiteId>] {
        assert!(
            index < self.episodes.len(),
            "episode index {index} outside the {}-episode schedule",
            self.episodes.len()
        );
        if index > 0 {
            let end = self.episodes[index - 1]
                .heal_at
                .expect("an unhealed partition must be the last episode");
            assert!(end <= at, "partition episodes overlap in time");
        }
        let episode = &mut self.episodes[index];
        episode.at = at;
        episode.heal_at = heal_at;
        let groups = &mut episode.groups;
        for g in groups.iter_mut() {
            g.clear();
        }
        groups.truncate(group_count);
        groups.resize_with(group_count, Vec::new);
        groups
    }

    /// The scheduled episodes, in time order.
    pub fn episodes(&self) -> &[PartitionSpec] {
        &self.episodes
    }

    /// The episode active at `now`, if any.
    pub fn active_at(&self, now: SimTime) -> Option<&PartitionSpec> {
        self.episodes.iter().find(|e| e.at <= now && e.heal_at.is_none_or(|h| now < h))
    }

    /// Can a message travel from `a` to `b` at instant `now`?
    pub fn connected(&self, a: SiteId, b: SiteId, now: SimTime) -> bool {
        if a == b {
            return true;
        }
        match self.active_at(now) {
            None => true,
            Some(ep) => match (ep.group_of(a), ep.group_of(b)) {
                (Some(ga), Some(gb)) => ga == gb,
                // A site missing from every group is isolated.
                _ => false,
            },
        }
    }

    /// The first instant in `(from, to]` at which `a` and `b` become
    /// disconnected, if any. Used to schedule undeliverable-message bounces
    /// for messages that were in flight when the partition started.
    pub fn disconnect_time(
        &self,
        a: SiteId,
        b: SiteId,
        from: SimTime,
        to: SimTime,
    ) -> Option<SimTime> {
        if a == b {
            return None;
        }
        self.episodes
            .iter()
            .filter(|e| e.at > from && e.at <= to)
            .find(|e| match (e.group_of(a), e.group_of(b)) {
                (Some(ga), Some(gb)) => ga != gb,
                _ => true,
            })
            .map(|e| e.at)
    }

    /// One-pass fate check for a message sent at `sent_at` with scheduled
    /// delivery at `delivery_at`: `None` if it gets through, `Some(instant)`
    /// when and where it bounces.
    ///
    /// Semantically exactly [`PartitionEngine::connected`] at `sent_at`
    /// (disconnected ⇒ bounce at `delivery_at`, the scheduled arrival at the
    /// wall) followed by [`PartitionEngine::disconnect_time`] over
    /// `(sent_at, delivery_at]` (cut mid-flight ⇒ bounce at the partition
    /// instant) — but in a single scan of the episode schedule. The network
    /// asks this for every message sent, so on the sweep hot path the fused
    /// form halves the episode walks of the old two-query sequence.
    pub fn bounce_instant(
        &self,
        a: SiteId,
        b: SiteId,
        sent_at: SimTime,
        delivery_at: SimTime,
    ) -> Option<SimTime> {
        if a == b {
            return None;
        }
        // Episodes are disjoint and sorted by start (`new` sorts and
        // validates; `episode_groups` enforces in-order writes), so the
        // first relevant episode decides.
        for e in &self.episodes {
            if e.at > delivery_at {
                break;
            }
            let severed = || match (e.group_of(a), e.group_of(b)) {
                (Some(ga), Some(gb)) => ga != gb,
                // A site missing from every group is isolated.
                _ => true,
            };
            if e.at <= sent_at {
                // Active at send time (or already healed).
                if e.heal_at.is_none_or(|h| sent_at < h) && severed() {
                    return Some(delivery_at);
                }
            } else if severed() {
                // Starts mid-flight, in (sent_at, delivery_at].
                return Some(e.at);
            }
        }
        None
    }

    /// How many of the scheduled episodes sever `members` (see
    /// [`PartitionSpec::severs`]) — per-group exposure bookkeeping for
    /// sharded clusters, where one schedule hits every replica group
    /// differently.
    pub fn severed_episodes(&self, members: &[SiteId]) -> usize {
        self.episodes.iter().filter(|e| e.severs(members)).count()
    }

    /// All episode boundaries (start and heal instants), for trace annotation.
    pub fn boundaries(&self) -> Vec<(SimTime, bool)> {
        let mut out = Vec::new();
        for e in &self.episodes {
            out.push((e.at, true));
            if let Some(h) = e.heal_at {
                out.push((h, false));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> SiteId {
        SiteId(i)
    }

    fn simple_at(at: u64) -> PartitionSpec {
        PartitionSpec::simple(SimTime(at), vec![s(1), s(2)], vec![s(3)])
    }

    #[test]
    fn connected_before_partition() {
        let eng = PartitionEngine::new(vec![simple_at(100)]);
        assert!(eng.connected(s(1), s(3), SimTime(99)));
        assert!(!eng.connected(s(1), s(3), SimTime(100)));
        assert!(eng.connected(s(1), s(2), SimTime(100)));
    }

    #[test]
    fn self_loop_always_connected() {
        let eng = PartitionEngine::new(vec![simple_at(0)]);
        assert!(eng.connected(s(3), s(3), SimTime(50)));
    }

    #[test]
    fn heal_restores_connectivity() {
        let eng = PartitionEngine::new(vec![PartitionSpec::transient(
            SimTime(10),
            vec![s(1)],
            vec![s(2)],
            SimTime(20),
        )]);
        assert!(!eng.connected(s(1), s(2), SimTime(15)));
        assert!(eng.connected(s(1), s(2), SimTime(20)));
    }

    #[test]
    fn unlisted_site_is_isolated() {
        let eng =
            PartitionEngine::new(vec![PartitionSpec::simple(SimTime(0), vec![s(1)], vec![s(2)])]);
        assert!(!eng.connected(s(1), s(9), SimTime(5)));
        assert!(!eng.connected(s(9), s(2), SimTime(5)));
    }

    #[test]
    fn disconnect_time_finds_partition_start() {
        let eng = PartitionEngine::new(vec![simple_at(100)]);
        assert_eq!(eng.disconnect_time(s(1), s(3), SimTime(50), SimTime(150)), Some(SimTime(100)));
        // Same-group pairs never disconnect.
        assert_eq!(eng.disconnect_time(s(1), s(2), SimTime(50), SimTime(150)), None);
        // Window entirely before the partition.
        assert_eq!(eng.disconnect_time(s(1), s(3), SimTime(0), SimTime(99)), None);
    }

    #[test]
    fn multiple_partitioning_three_groups() {
        let eng = PartitionEngine::new(vec![PartitionSpec {
            at: SimTime(0),
            groups: vec![vec![s(1)], vec![s(2)], vec![s(3)]],
            heal_at: None,
        }]);
        assert!(!eng.connected(s(1), s(2), SimTime(1)));
        assert!(!eng.connected(s(2), s(3), SimTime(1)));
        assert!(!eng.connected(s(1), s(3), SimTime(1)));
    }

    #[test]
    fn sequential_episodes_allowed() {
        let eng = PartitionEngine::new(vec![
            PartitionSpec::transient(SimTime(0), vec![s(1)], vec![s(2)], SimTime(10)),
            PartitionSpec::transient(SimTime(20), vec![s(1), s(2)], vec![], SimTime(30)),
        ]);
        assert!(!eng.connected(s(1), s(2), SimTime(5)));
        assert!(eng.connected(s(1), s(2), SimTime(15)));
        assert!(eng.connected(s(1), s(2), SimTime(25)));
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_episodes_rejected() {
        PartitionEngine::new(vec![
            PartitionSpec::transient(SimTime(0), vec![s(1)], vec![s(2)], SimTime(50)),
            PartitionSpec::simple(SimTime(25), vec![s(1)], vec![s(2)]),
        ]);
    }

    #[test]
    fn reset_schedule_matches_allocating_constructor() {
        // The in-place schedule writer must produce an engine identical to
        // PartitionEngine::new over the same episodes.
        let episodes = vec![
            PartitionSpec::transient(SimTime(10), vec![s(1), s(2)], vec![s(3)], SimTime(40)),
            PartitionSpec {
                at: SimTime(40),
                groups: vec![vec![s(1)], vec![s(2)], vec![s(3)]],
                heal_at: Some(SimTime(80)),
            },
            PartitionSpec::simple(SimTime(100), vec![s(1), s(3)], vec![s(2)]),
        ];
        let allocated = PartitionEngine::new(episodes.clone());

        let mut reused = PartitionEngine::always_connected();
        // Write a throwaway schedule first so the second write exercises
        // buffer recycling rather than fresh allocation.
        let _ = reused.reset_single(SimTime(5), None, 2);
        reused.reset_schedule(episodes.len());
        for (i, ep) in episodes.iter().enumerate() {
            let bufs = reused.episode_groups(i, ep.at, ep.heal_at, ep.groups.len());
            for (buf, group) in bufs.iter_mut().zip(&ep.groups) {
                buf.extend_from_slice(group);
            }
        }
        assert_eq!(reused.episodes(), allocated.episodes());
        for t in [0u64, 20, 50, 90, 150] {
            for (a, b) in [(s(1), s(2)), (s(1), s(3)), (s(2), s(3))] {
                assert_eq!(
                    reused.connected(a, b, SimTime(t)),
                    allocated.connected(a, b, SimTime(t)),
                    "connectivity diverged at t={t} for {a:?}-{b:?}"
                );
            }
        }
    }

    #[test]
    fn reset_schedule_shrinks_a_longer_schedule() {
        let mut eng = PartitionEngine::always_connected();
        eng.reset_schedule(3);
        for i in 0..3u64 {
            let bufs = eng.episode_groups(
                i as usize,
                SimTime(i * 20),
                (i < 2).then(|| SimTime(i * 20 + 10)),
                2,
            );
            bufs[0].push(s(1));
            bufs[1].push(s(2));
        }
        assert_eq!(eng.episodes().len(), 3);
        // Rewrite as a single permanent episode: the stale tail must be gone.
        let groups = eng.reset_single(SimTime(5), None, 2);
        groups[0].push(s(1));
        groups[1].push(s(2));
        assert_eq!(eng.episodes().len(), 1);
        assert!(eng.connected(s(1), s(2), SimTime(0)));
        assert!(!eng.connected(s(1), s(2), SimTime(100)));
    }

    #[test]
    fn degenerate_heal_is_a_tolerated_no_op() {
        // heal_at == at was accepted (and inert) before the schedule
        // refactor; the legacy reset_single path must keep tolerating it.
        let mut eng = PartitionEngine::always_connected();
        let groups = eng.reset_single(SimTime(2000), Some(SimTime(2000)), 2);
        groups[0].push(s(1));
        groups[1].push(s(2));
        for t in [0u64, 1999, 2000, 5000] {
            assert!(eng.connected(s(1), s(2), SimTime(t)), "empty window active at t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "unhealed")]
    fn out_of_order_episode_write_is_rejected() {
        let mut eng = PartitionEngine::always_connected();
        // Leave a healed episode 0 behind from a previous schedule...
        let _ = eng.reset_single(SimTime(0), Some(SimTime(50)), 2);
        eng.reset_schedule(2);
        // ...then try to write episode 1 first: the stale heal instant has
        // been stamped out, so this cannot validate against it.
        let _ = eng.episode_groups(1, SimTime(100), None, 2);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn episode_groups_rejects_overlap() {
        let mut eng = PartitionEngine::always_connected();
        eng.reset_schedule(2);
        let _ = eng.episode_groups(0, SimTime(0), Some(SimTime(50)), 2);
        let _ = eng.episode_groups(1, SimTime(25), None, 2);
    }

    #[test]
    #[should_panic(expected = "unhealed")]
    fn episode_groups_rejects_unhealed_predecessor() {
        let mut eng = PartitionEngine::always_connected();
        eng.reset_schedule(2);
        let _ = eng.episode_groups(0, SimTime(0), None, 2);
        let _ = eng.episode_groups(1, SimTime(25), None, 2);
    }

    #[test]
    fn back_to_back_episodes_switch_seamlessly() {
        // A nested secession: ep1 heals exactly when ep2 begins, so there is
        // no reconnect instant in between.
        let mut eng = PartitionEngine::always_connected();
        eng.reset_schedule(2);
        let g = eng.episode_groups(0, SimTime(10), Some(SimTime(30)), 2);
        g[0].push(s(1));
        g[1].extend([s(2), s(3)]);
        let g = eng.episode_groups(1, SimTime(30), None, 3);
        g[0].push(s(1));
        g[1].push(s(2));
        g[2].push(s(3));
        assert!(eng.connected(s(2), s(3), SimTime(20)), "same fragment during ep1");
        assert!(!eng.connected(s(2), s(3), SimTime(30)), "seceded at the boundary instant");
        assert!(!eng.connected(s(1), s(2), SimTime(30)), "still cut from G1");
    }

    #[test]
    fn severs_classifies_replica_groups() {
        let spec = PartitionSpec {
            at: SimTime(0),
            groups: vec![vec![s(0), s(1)], vec![s(2)], vec![s(3), s(4)]],
            heal_at: None,
        };
        assert!(!spec.severs(&[s(0), s(1)]), "intact in fragment 0");
        assert!(!spec.severs(&[s(3), s(4)]), "intact in fragment 2");
        assert!(spec.severs(&[s(1), s(2)]), "straddles fragments");
        assert!(spec.severs(&[s(2), s(9)]), "unlisted member is isolated");
        assert!(spec.severs(&[s(8), s(9)]), "two isolated members");
        assert!(!spec.severs(&[s(2)]), "singleton groups cannot be severed");
    }

    #[test]
    fn severed_episodes_counts_per_group_exposure() {
        let eng = PartitionEngine::new(vec![
            PartitionSpec::transient(SimTime(0), vec![s(0), s(1)], vec![s(2), s(3)], SimTime(10)),
            PartitionSpec::simple(SimTime(20), vec![s(0), s(2)], vec![s(1), s(3)]),
        ]);
        assert_eq!(eng.severed_episodes(&[s(0), s(1)]), 1, "cut by the second episode only");
        assert_eq!(eng.severed_episodes(&[s(2), s(3)]), 1, "cut by the second episode only");
        assert_eq!(eng.severed_episodes(&[s(1), s(2)]), 2, "cut by both");
        assert_eq!(eng.severed_episodes(&[s(0), s(2)]), 1, "cut by the first");
    }

    #[test]
    fn is_simple_classification() {
        assert!(simple_at(0).is_simple());
        let multi = PartitionSpec {
            at: SimTime(0),
            groups: vec![vec![s(1)], vec![s(2)], vec![s(3)]],
            heal_at: None,
        };
        assert!(!multi.is_simple());
    }
}
