//! # ptp-simnet — deterministic discrete-event network simulation
//!
//! The network substrate assumed by Huang & Li (ICDE 1987): a message-passing
//! network whose longest end-to-end delay is `T`, which can undergo *simple*
//! (two-group), *multiple* (more groups), or *transient* (healing) partitions,
//! and which — in the paper's **optimistic model** — returns undeliverable
//! messages to their senders instead of losing them.
//!
//! Everything is deterministic: events are ordered by `(time, insertion
//! sequence)` and all randomness flows from seeded delay models, so any
//! counterexample an experiment finds is replayable bit-for-bit.
//!
//! ## Structure
//!
//! * [`time`] — virtual clock types ([`SimTime`], [`SimDuration`]).
//! * [`message`] — [`SiteId`], [`MsgId`], [`Envelope`].
//! * [`delay`] — per-message delay models bounded by `T` (fixed / seeded
//!   uniform / per-link / adversarial schedules).
//! * [`partition`] — partition episodes and the connectivity oracle.
//! * [`failure`] — crash/recover injection (for the Sec. 7 counterexamples).
//! * [`envfault`] — envelope-level faults (duplicate / reorder / drop by
//!   match predicate) and degraded-network delay windows.
//! * [`event`] — the deterministic event queue.
//! * [`net`] — the [`Simulation`] engine, [`Actor`] trait and [`Ctx`] handle.
//! * [`trace`] — complete execution logs and measurement helpers.
//! * [`prof`] — event-attribution profiling ([`ProfSink`], [`Profile`]).
//!
//! ## Example
//!
//! ```
//! use ptp_simnet::{
//!     Actor, Ctx, DelayModel, Envelope, NetConfig, PartitionEngine, Simulation, SiteId,
//! };
//!
//! struct Greeter;
//! impl Actor<&'static str> for Greeter {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
//!         if ctx.me() == SiteId(0) {
//!             ctx.send(SiteId(1), "hello");
//!         }
//!     }
//!     fn on_message(&mut self, env: Envelope<&'static str>, ctx: &mut Ctx<'_, &'static str>) {
//!         ctx.note("got", env.id.0);
//!     }
//! }
//!
//! let sim = Simulation::new(
//!     NetConfig::default(),
//!     vec![Box::new(Greeter), Box::new(Greeter)],
//!     PartitionEngine::always_connected(),
//!     &DelayModel::Fixed(500),
//!     vec![],
//! );
//! let (_actors, trace, report) = sim.run();
//! assert_eq!(trace.first_note(SiteId(1), "got").unwrap().0.ticks(), 500);
//! assert_eq!(report.events, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod envfault;
pub mod event;
pub mod failure;
pub mod message;
pub mod net;
pub mod partition;
pub mod prof;
pub mod rng;
pub mod time;
mod timers;
pub mod trace;

pub use delay::{DelayModel, Leg, ScheduleBuilder};
pub use envfault::{DegradeWindow, EnvelopeAction, EnvelopeFault, EnvelopeMatch};
pub use failure::FailureSpec;
pub use message::{Disposition, Envelope, MsgId, SiteId};
pub use net::{
    Actor, Ctx, NetConfig, Payload, RunReport, SimScratch, Simulation, StopReason, TimerHandle,
};
pub use partition::{PartitionEngine, PartitionMode, PartitionSpec};
pub use prof::{ProfEntry, ProfKey, ProfSink, Profile};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceCounters, TraceEvent, TraceSink};
