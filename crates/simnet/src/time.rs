//! Virtual time for the discrete-event simulator.
//!
//! The paper reasons about time exclusively in units of `T`, the longest
//! end-to-end network propagation delay (Sec. 5.3, Fig. 5). The simulator
//! uses integer *ticks*; a [`crate::NetConfig`] fixes how many ticks one `T`
//! is, so experiments can report waits as exact multiples of `T`.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute instant in simulated time, in ticks since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Expresses this instant as a (possibly fractional) multiple of `t_unit`.
    #[inline]
    pub fn in_t_units(self, t_unit: u64) -> f64 {
        self.0 as f64 / t_unit as f64
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Expresses this span as a (possibly fractional) multiple of `t_unit`.
    #[inline]
    pub fn in_t_units(self, t_unit: u64) -> f64 {
        self.0 as f64 / t_unit as f64
    }

    /// Multiplies the span by an integer factor (used for `2T`, `3T`, ... timer
    /// constants).
    #[inline]
    pub fn times(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        assert_eq!(SimTime(5) + SimDuration(7), SimTime(12));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(3).since(SimTime(10)), SimDuration::ZERO);
        assert_eq!(SimTime(10).since(SimTime(3)), SimDuration(7));
    }

    #[test]
    fn subtraction_yields_duration() {
        assert_eq!(SimTime(10) - SimTime(4), SimDuration(6));
    }

    #[test]
    fn t_unit_conversion() {
        assert!((SimTime(1500).in_t_units(1000) - 1.5).abs() < 1e-12);
        assert!((SimDuration(2500).in_t_units(1000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn times_scales() {
        assert_eq!(SimDuration(1000).times(3), SimDuration(3000));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(1) < SimDuration(2));
    }
}
