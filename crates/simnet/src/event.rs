//! The discrete-event queue.
//!
//! A binary heap ordered by `(time, class, sequence)`. Ties in simulated
//! time are broken first by event *class* — crash/recover, then message
//! deliveries and returns, then timers — and then by insertion order, which
//! makes every run fully deterministic.
//!
//! Messages-before-timers at equal instants matters for protocol fidelity:
//! the paper's timing analyses (Figs. 5, 6) size timeouts so that the
//! triggering message or undeliverable return arrives *within* the timeout
//! interval. The worst-case arrival can coincide exactly with the timer's
//! expiry (e.g. an undeliverable prepare returning at `2T`, the master's
//! timeout); a site that checks its mailbox when the alarm rings must see
//! the message.

use crate::message::{Envelope, SiteId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<P> {
    /// Deliver a message to its destination.
    Deliver(Envelope<P>),
    /// Return a message to its sender as undeliverable.
    ReturnUd(Envelope<P>),
    /// A timer at `site` expires.
    Timer { site: SiteId, timer: u64, tag: u64 },
    /// A site halts.
    Crash(SiteId),
    /// A site comes back.
    Recover(SiteId),
}

impl<P> EventKind<P> {
    /// Same-instant processing class: crash/recover first, then message
    /// traffic, then timers.
    fn class(&self) -> u8 {
        match self {
            EventKind::Crash(_) | EventKind::Recover(_) => 0,
            EventKind::Deliver(_) | EventKind::ReturnUd(_) => 1,
            EventKind::Timer { .. } => 2,
        }
    }
}

#[derive(Debug)]
pub(crate) struct QueuedEvent<P> {
    pub at: SimTime,
    pub seq: u64,
    /// [`EventKind::class`], precomputed at push time: heap sifts compare
    /// each element O(log n) times, and resolving the class through a match
    /// on every comparison was measurable on the sweep hot path.
    class: u8,
    pub kind: EventKind<P>,
}

impl<P> PartialEq for QueuedEvent<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for QueuedEvent<P> {}

impl<P> Ord for QueuedEvent<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.class.cmp(&self.class))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<P> PartialOrd for QueuedEvent<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue.
#[derive(Debug)]
pub(crate) struct EventQueue<P> {
    heap: BinaryHeap<QueuedEvent<P>>,
    next_seq: u64,
}

impl<P> EventQueue<P> {
    #[cfg(test)]
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Queue with room for `capacity` events before the first heap growth.
    ///
    /// The simulator sizes this from the cluster: an `n`-site commit
    /// protocol keeps O(n²) messages and O(n) timers in flight at its
    /// broadcast peaks, so reserving up front removes every reallocation
    /// from the common sweep scenario.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }

    /// Drops any queued events and rewinds the sequence counter, keeping the
    /// heap's allocation. A cleared queue behaves exactly like a freshly
    /// constructed one, which is what lets [`crate::net::SimScratch`] recycle
    /// it across runs without perturbing determinism.
    pub fn reset(&mut self, capacity: usize) {
        self.heap.clear();
        // The heap is empty here, so this guarantees `capacity` slots (and
        // is a no-op when the recycled allocation already suffices).
        self.heap.reserve(capacity);
        self.next_seq = 0;
    }

    pub fn push(&mut self, at: SimTime, kind: EventKind<P>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, class: kind.class(), kind });
    }

    pub fn pop(&mut self) -> Option<QueuedEvent<P>> {
        self.heap.pop()
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgId;

    fn timer(site: u16, tag: u64) -> EventKind<()> {
        EventKind::Timer { site: SiteId(site), timer: tag, tag }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(0, 0));
        q.push(SimTime(10), timer(0, 1));
        q.push(SimTime(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.at.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for tag in 0..5 {
            q.push(SimTime(7), timer(0, tag));
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deliver_events_carry_envelopes() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.push(
            SimTime(5),
            EventKind::Deliver(Envelope {
                id: MsgId(0),
                src: SiteId(0),
                dst: SiteId(1),
                sent_at: SimTime(0),
                payload: "m",
            }),
        );
        match q.pop().unwrap().kind {
            EventKind::Deliver(env) => assert_eq!(env.payload, "m"),
            _ => panic!("wrong event kind"),
        }
        assert!(q.is_empty());
    }

    #[test]
    fn deliveries_beat_timers_at_equal_time() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.push(SimTime(10), EventKind::Timer { site: SiteId(0), timer: 7, tag: 7 });
        q.push(
            SimTime(10),
            EventKind::Deliver(Envelope {
                id: MsgId(0),
                src: SiteId(1),
                dst: SiteId(0),
                sent_at: SimTime(0),
                payload: "m",
            }),
        );
        // Delivery was inserted second but must come out first.
        assert!(matches!(q.pop().unwrap().kind, EventKind::Deliver(_)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Timer { .. }));
    }

    #[test]
    fn crashes_beat_deliveries_at_equal_time() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.push(
            SimTime(10),
            EventKind::Deliver(Envelope {
                id: MsgId(0),
                src: SiteId(1),
                dst: SiteId(0),
                sent_at: SimTime(0),
                payload: "m",
            }),
        );
        q.push(SimTime(10), EventKind::Crash(SiteId(0)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Crash(_)));
    }

    #[test]
    fn len_tracks_queue_size() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.push(SimTime(1), timer(0, 0));
        q.push(SimTime(2), timer(0, 1));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
