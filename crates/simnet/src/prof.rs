//! Event-attribution profiling.
//!
//! [`TraceSink`](crate::TraceSink) answers *what happened*; [`ProfSink`]
//! answers *where the simulator's work went*. Each recorded sample
//! attributes one dispatched event (a delivery, an undeliverable return, a
//! timer expiry, a start callback) to the acting site, the message kind or
//! timer tag, and the protocol phase the actor was in when the event
//! arrived, together with the wall-clock nanoseconds the handler spent.
//!
//! The sink mirrors the [`TraceSink`](crate::TraceSink) null/recording
//! split: the sweep hot path keeps a [`ProfSink::Null`] and pays one enum
//! discriminant test per event, nothing more. Profiling runs flip the sink
//! to recording and aggregate into a [`Profile`], whose rollups
//! ([`Profile::by_phase`], [`Profile::by_kind`], [`Profile::by_site`]) feed
//! the `bench_profile` binary's `BENCH_profile.json`.

use std::collections::BTreeMap;

use crate::message::SiteId;

/// Attribution coordinates for one profiled sample.
///
/// All string fields are `&'static str` (message-kind tags, timer-tag
/// names, state names), so recording allocates only on first sight of a
/// new key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProfKey {
    /// Dispatch class: `"deliver"`, `"ud"`, `"timer"`, or `"start"`.
    pub event: &'static str,
    /// Message kind (for deliveries/returns) or timer-tag name.
    pub kind: &'static str,
    /// Protocol phase (participant state name) when the event arrived.
    pub phase: &'static str,
    /// The acting site.
    pub site: SiteId,
}

/// Accumulated cost of all samples sharing one [`ProfKey`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfEntry {
    /// Number of dispatched events.
    pub count: u64,
    /// Total wall-clock nanoseconds spent in the handlers.
    pub nanos: u64,
}

impl ProfEntry {
    fn add(&mut self, nanos: u64) {
        self.count += 1;
        self.nanos += nanos;
    }

    fn merge(&mut self, other: &ProfEntry) {
        self.count += other.count;
        self.nanos += other.nanos;
    }
}

/// An aggregated profile: per-key tallies plus grand totals.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    entries: BTreeMap<ProfKey, ProfEntry>,
    total: ProfEntry,
}

impl Profile {
    /// Records one sample.
    pub fn record(&mut self, key: ProfKey, nanos: u64) {
        self.entries.entry(key).or_default().add(nanos);
        self.total.add(nanos);
    }

    /// Folds another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (key, entry) in &other.entries {
            self.entries.entry(*key).or_default().merge(entry);
        }
        self.total.merge(&other.total);
    }

    /// All per-key tallies in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&ProfKey, &ProfEntry)> {
        self.entries.iter()
    }

    /// Grand totals across every key.
    pub fn total(&self) -> ProfEntry {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn rollup(&self, project: impl Fn(&ProfKey) -> &'static str) -> Vec<(&'static str, ProfEntry)> {
        let mut map: BTreeMap<&'static str, ProfEntry> = BTreeMap::new();
        for (key, entry) in &self.entries {
            map.entry(project(key)).or_default().merge(entry);
        }
        let mut rows: Vec<_> = map.into_iter().collect();
        // Most expensive first: that is the row the perf work targets.
        rows.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then(a.0.cmp(b.0)));
        rows
    }

    /// Tallies grouped by protocol phase, most expensive first.
    pub fn by_phase(&self) -> Vec<(&'static str, ProfEntry)> {
        self.rollup(|k| k.phase)
    }

    /// Tallies grouped by message kind / timer tag, most expensive first.
    pub fn by_kind(&self) -> Vec<(&'static str, ProfEntry)> {
        self.rollup(|k| k.kind)
    }

    /// Tallies grouped by dispatch class, most expensive first.
    pub fn by_event(&self) -> Vec<(&'static str, ProfEntry)> {
        self.rollup(|k| k.event)
    }

    /// Tallies grouped by acting site, in site order.
    pub fn by_site(&self) -> Vec<(SiteId, ProfEntry)> {
        let mut map: BTreeMap<SiteId, ProfEntry> = BTreeMap::new();
        for (key, entry) in &self.entries {
            map.entry(key.site).or_default().merge(entry);
        }
        map.into_iter().collect()
    }
}

/// Where profiling samples go.
///
/// Mirrors [`TraceSink`](crate::TraceSink): [`ProfSink::Null`] discards
/// samples (and callers skip the `Instant::now` pair entirely), so sweeps
/// with profiling off pay zero cost beyond one branch per event.
#[derive(Debug, Default)]
pub enum ProfSink {
    /// Discard samples.
    #[default]
    Null,
    /// Aggregate samples into a [`Profile`].
    Recording(Profile),
}

impl ProfSink {
    /// A recording sink over an empty profile.
    pub fn recording() -> ProfSink {
        ProfSink::Recording(Profile::default())
    }

    /// True when samples are being kept.
    #[inline]
    pub fn is_recording(&self) -> bool {
        matches!(self, ProfSink::Recording(_))
    }

    /// Records one sample (no-op for [`ProfSink::Null`]).
    #[inline]
    pub fn record(&mut self, key: ProfKey, nanos: u64) {
        match self {
            ProfSink::Recording(profile) => profile.record(key, nanos),
            ProfSink::Null => {}
        }
    }

    /// Consumes the sink, yielding the profile (empty for [`ProfSink::Null`]).
    pub fn into_profile(self) -> Profile {
        match self {
            ProfSink::Recording(profile) => profile,
            ProfSink::Null => Profile::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(event: &'static str, kind: &'static str, phase: &'static str, site: u16) -> ProfKey {
        ProfKey { event, kind, phase, site: SiteId(site) }
    }

    #[test]
    fn record_accumulates_per_key_and_total() {
        let mut p = Profile::default();
        p.record(key("deliver", "state-req", "p", 1), 100);
        p.record(key("deliver", "state-req", "p", 1), 50);
        p.record(key("timer", "quorum-collect", "p", 2), 10);
        assert_eq!(p.entries().count(), 2);
        assert_eq!(p.total(), ProfEntry { count: 3, nanos: 160 });
        let (_, first) = p.entries().next().unwrap();
        assert_eq!(first.count, 2);
        assert_eq!(first.nanos, 150);
    }

    #[test]
    fn rollups_group_and_sort_by_cost() {
        let mut p = Profile::default();
        p.record(key("deliver", "state-req", "p", 1), 10);
        p.record(key("deliver", "state-rep", "p", 2), 100);
        p.record(key("timer", "quorum-collect", "w", 1), 40);
        let by_phase = p.by_phase();
        assert_eq!(by_phase[0].0, "p");
        assert_eq!(by_phase[0].1, ProfEntry { count: 2, nanos: 110 });
        assert_eq!(by_phase[1].0, "w");
        let by_kind = p.by_kind();
        assert_eq!(by_kind[0].0, "state-rep");
        let by_site = p.by_site();
        assert_eq!(by_site[0].0, SiteId(1));
        assert_eq!(by_site[0].1.count, 2);
    }

    #[test]
    fn merge_folds_profiles() {
        let mut a = Profile::default();
        a.record(key("deliver", "yes", "q", 0), 5);
        let mut b = Profile::default();
        b.record(key("deliver", "yes", "q", 0), 7);
        b.record(key("start", "-", "q", 1), 3);
        a.merge(&b);
        assert_eq!(a.total(), ProfEntry { count: 3, nanos: 15 });
        assert_eq!(a.entries().count(), 2);
    }

    #[test]
    fn null_sink_discards_and_recording_keeps() {
        let mut null = ProfSink::Null;
        null.record(key("deliver", "yes", "q", 0), 5);
        assert!(!null.is_recording());
        assert!(null.into_profile().is_empty());

        let mut rec = ProfSink::recording();
        assert!(rec.is_recording());
        rec.record(key("deliver", "yes", "q", 0), 5);
        let p = rec.into_profile();
        assert_eq!(p.total().count, 1);
    }
}
