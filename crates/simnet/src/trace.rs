//! Execution traces.
//!
//! Every simulation records a complete, ordered log of network and timer
//! activity. The timing experiments (Figs. 5–7, 9) are measurements over
//! these traces, and failed invariant checks print them for replay debugging.

use crate::message::{MsgId, SiteId};
use crate::time::{SimDuration, SimTime};

/// One record in the execution trace.
///
/// `kind` fields carry the payload's message-kind tag (e.g. `"prepare"`),
/// supplied by the payload's [`crate::Payload::kind`] implementation, so
/// traces stay allocation-free and comparable across runs.
///
/// Field meanings are uniform across variants: `at` is the instant, `id`
/// the message, `src`/`dst` its addressing, `site` the acting site, `timer`
/// the timer handle, `tag` the actor-chosen timer tag.
#[allow(missing_docs)] // fields documented collectively above
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A site handed a message to the network.
    Sent { at: SimTime, id: MsgId, src: SiteId, dst: SiteId, kind: &'static str },
    /// The network delivered a message to its destination.
    Delivered { at: SimTime, id: MsgId, src: SiteId, dst: SiteId, kind: &'static str },
    /// The network returned a message to its sender as undeliverable.
    Returned { at: SimTime, id: MsgId, src: SiteId, dst: SiteId, kind: &'static str },
    /// The network dropped a message (pessimistic mode or crashed receiver).
    Dropped { at: SimTime, id: MsgId, src: SiteId, dst: SiteId, kind: &'static str },
    /// A timer was armed.
    TimerSet { at: SimTime, site: SiteId, timer: u64, tag: u64, fire_at: SimTime },
    /// A timer fired and was dispatched.
    TimerFired { at: SimTime, site: SiteId, timer: u64, tag: u64 },
    /// A timer was cancelled before firing.
    TimerCancelled { at: SimTime, site: SiteId, timer: u64 },
    /// A timer expired but was suppressed (cancelled earlier or site down).
    TimerSuppressed { at: SimTime, site: SiteId, timer: u64, tag: u64 },
    /// A site crashed.
    Crashed { at: SimTime, site: SiteId },
    /// A site recovered.
    Recovered { at: SimTime, site: SiteId },
    /// Free-form site annotation (state transitions, decisions, ...).
    Note { at: SimTime, site: SiteId, label: &'static str, detail: u64 },
}

impl TraceEvent {
    /// The instant the event happened.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Sent { at, .. }
            | TraceEvent::Delivered { at, .. }
            | TraceEvent::Returned { at, .. }
            | TraceEvent::Dropped { at, .. }
            | TraceEvent::TimerSet { at, .. }
            | TraceEvent::TimerFired { at, .. }
            | TraceEvent::TimerCancelled { at, .. }
            | TraceEvent::TimerSuppressed { at, .. }
            | TraceEvent::Crashed { at, .. }
            | TraceEvent::Recovered { at, .. }
            | TraceEvent::Note { at, .. } => at,
        }
    }
}

/// Per-category event tallies, maintained by every run regardless of the
/// [`TraceSink`] in use.
///
/// Sweeps that judge verdicts with the null sink still get these for free
/// (they are a handful of integer bumps), so experiment reports can cite
/// message counts without paying for full traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to their destinations.
    pub delivered: u64,
    /// Messages returned to their senders as undeliverable.
    pub returned: u64,
    /// Messages dropped (pessimistic mode or crashed receiver).
    pub dropped: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Timers fired and dispatched.
    pub timers_fired: u64,
    /// Timers cancelled before firing.
    pub timers_cancelled: u64,
    /// Timers that expired but were suppressed.
    pub timers_suppressed: u64,
    /// Site crashes.
    pub crashes: u64,
    /// Site recoveries.
    pub recoveries: u64,
    /// Free-form annotations.
    pub notes: u64,
}

impl TraceCounters {
    /// Total events tallied.
    pub fn total(&self) -> u64 {
        self.sent
            + self.delivered
            + self.returned
            + self.dropped
            + self.timers_set
            + self.timers_fired
            + self.timers_cancelled
            + self.timers_suppressed
            + self.crashes
            + self.recoveries
            + self.notes
    }
}

/// Where a simulation's trace events go.
///
/// The timing experiments (Figs. 5–7, 9) need the complete log; the
/// resilience sweeps only consult verdicts and run millions of scenarios,
/// where the per-event `Vec` growth dominated the profile. The null sink
/// drops events on the floor (counters are still kept in the
/// [`crate::RunReport`]), making the sweep hot path allocation-free on the
/// tracing side.
#[derive(Debug)]
pub enum TraceSink {
    /// Record every event into a [`Trace`].
    Recording(Trace),
    /// Discard events; only [`TraceCounters`] are maintained.
    Null,
}

impl TraceSink {
    /// A recording sink over an empty trace.
    pub fn recording() -> TraceSink {
        TraceSink::Recording(Trace::default())
    }

    /// True when events are being kept.
    pub fn is_recording(&self) -> bool {
        matches!(self, TraceSink::Recording(_))
    }

    /// Consumes the sink, yielding the recorded trace (empty for
    /// [`TraceSink::Null`]).
    pub fn into_trace(self) -> Trace {
        match self {
            TraceSink::Recording(trace) => trace,
            TraceSink::Null => Trace::default(),
        }
    }
}

/// The full, ordered execution log of one simulation run.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events in occurrence order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Deliveries of a given message kind to a given site.
    pub fn deliveries_to<'a>(
        &'a self,
        site: SiteId,
        kind: &'a str,
    ) -> impl Iterator<Item = (SimTime, MsgId, SiteId)> + 'a {
        self.events.iter().filter_map(move |e| match *e {
            TraceEvent::Delivered { at, id, src, dst, kind: k } if dst == site && k == kind => {
                Some((at, id, src))
            }
            _ => None,
        })
    }

    /// Undeliverable returns of a given message kind to a given sender.
    pub fn returns_to<'a>(
        &'a self,
        site: SiteId,
        kind: &'a str,
    ) -> impl Iterator<Item = (SimTime, MsgId, SiteId)> + 'a {
        self.events.iter().filter_map(move |e| match *e {
            TraceEvent::Returned { at, id, src, dst, kind: k } if src == site && k == kind => {
                Some((at, id, dst))
            }
            _ => None,
        })
    }

    /// First `Note` with the given label at the given site.
    pub fn first_note(&self, site: SiteId, label: &str) -> Option<(SimTime, u64)> {
        self.events.iter().find_map(|e| match *e {
            TraceEvent::Note { at, site: s, label: l, detail } if s == site && l == label => {
                Some((at, detail))
            }
            _ => None,
        })
    }

    /// All `Note`s with the given label, across sites.
    pub fn notes<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = (SimTime, SiteId, u64)> + 'a {
        self.events.iter().filter_map(move |e| match *e {
            TraceEvent::Note { at, site, label: l, detail } if l == label => {
                Some((at, site, detail))
            }
            _ => None,
        })
    }

    /// Time between two notes at one site (e.g. "timed out in w" to
    /// "received commit"), if both occurred in that order.
    pub fn note_gap(&self, site: SiteId, from_label: &str, to_label: &str) -> Option<SimDuration> {
        let (from, _) = self.first_note(site, from_label)?;
        let to = self.events.iter().find_map(|e| match *e {
            TraceEvent::Note { at, site: s, label: l, .. }
                if s == site && l == to_label && at >= from =>
            {
                Some(at)
            }
            _ => None,
        })?;
        Some(to - from)
    }

    /// Renders the trace as one event per line — used in failure messages.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 48);
        for e in &self.events {
            let _ = writeln!(out, "{e:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::default();
        t.push(TraceEvent::Sent {
            at: SimTime(0),
            id: MsgId(0),
            src: SiteId(0),
            dst: SiteId(1),
            kind: "xact",
        });
        t.push(TraceEvent::Delivered {
            at: SimTime(10),
            id: MsgId(0),
            src: SiteId(0),
            dst: SiteId(1),
            kind: "xact",
        });
        t.push(TraceEvent::Note { at: SimTime(12), site: SiteId(1), label: "voted", detail: 1 });
        t.push(TraceEvent::Note { at: SimTime(30), site: SiteId(1), label: "decided", detail: 0 });
        t
    }

    #[test]
    fn deliveries_filter_by_site_and_kind() {
        let t = sample_trace();
        let d: Vec<_> = t.deliveries_to(SiteId(1), "xact").collect();
        assert_eq!(d, vec![(SimTime(10), MsgId(0), SiteId(0))]);
        assert_eq!(t.deliveries_to(SiteId(0), "xact").count(), 0);
        assert_eq!(t.deliveries_to(SiteId(1), "yes").count(), 0);
    }

    #[test]
    fn first_note_found() {
        let t = sample_trace();
        assert_eq!(t.first_note(SiteId(1), "voted"), Some((SimTime(12), 1)));
        assert_eq!(t.first_note(SiteId(1), "missing"), None);
    }

    #[test]
    fn note_gap_measures_interval() {
        let t = sample_trace();
        assert_eq!(t.note_gap(SiteId(1), "voted", "decided"), Some(SimDuration(18)));
        assert_eq!(t.note_gap(SiteId(1), "decided", "voted"), None);
    }

    #[test]
    fn event_at_returns_timestamp() {
        let t = sample_trace();
        assert_eq!(t.events()[0].at(), SimTime(0));
        assert_eq!(t.events()[3].at(), SimTime(30));
    }

    #[test]
    fn render_one_line_per_event() {
        let t = sample_trace();
        assert_eq!(t.render().lines().count(), t.len());
    }
}
