//! The router thread: wall-clock message delays, partitions, and the
//! optimistic undeliverable-message return.

use ptp_protocols::api::CommitMsg;
use ptp_simnet::rng::SmallRng;
use ptp_simnet::SiteId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Global parameters of a live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// The longest end-to-end delay `T`, in wall-clock time. Each message
    /// leg is delayed uniformly in `(T/10, T]`.
    pub t: Duration,
    /// Give up after this much wall time (blocked baselines never decide).
    pub run_timeout: Duration,
    /// RNG seed for delay sampling (scheduling jitter keeps runs
    /// nondeterministic regardless).
    pub seed: u64,
}

impl LiveConfig {
    /// Configuration with the given `T` and a 60T run timeout.
    pub fn with_t(t: Duration) -> LiveConfig {
        LiveConfig { t, run_timeout: t * 60, seed: 7 }
    }
}

/// A simple partition applied during the run: `g2` splits from the rest
/// `after` the start, healing after `heal_after` (from the start) if given.
#[derive(Debug, Clone)]
pub struct LivePartition {
    /// When the partition begins, relative to run start.
    pub after: Duration,
    /// The non-master group.
    pub g2: Vec<SiteId>,
    /// When connectivity returns, relative to run start.
    pub heal_after: Option<Duration>,
}

impl LivePartition {
    fn severed(&self, a: SiteId, b: SiteId, at: Duration) -> bool {
        if at < self.after {
            return false;
        }
        if let Some(heal) = self.heal_after {
            if at >= heal {
                return false;
            }
        }
        self.g2.contains(&a) != self.g2.contains(&b)
    }
}

/// A message handed to the router by a site.
#[derive(Debug)]
pub(crate) struct Outbound {
    pub src: SiteId,
    pub dst: SiteId,
    pub msg: CommitMsg,
}

/// What sites receive from the router (or the coordinator).
#[derive(Debug)]
pub(crate) enum Inbound {
    /// A delivered message.
    Deliver { src: SiteId, msg: CommitMsg },
    /// One of the site's own messages came back undeliverable.
    Undeliverable { original_dst: SiteId, msg: CommitMsg },
    /// The run is over: exit the site thread.
    Shutdown,
}

#[derive(Debug)]
struct Scheduled {
    due: Instant,
    seq: u64,
    out: Outbound,
    /// True if this entry is the bounced return leg.
    returning: bool,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The router: owns the delay queue and the partition schedule.
pub(crate) struct Router {
    config: LiveConfig,
    partition: Option<LivePartition>,
    site_txs: Vec<Sender<Inbound>>,
    started: Instant,
}

impl Router {
    pub(crate) fn new(
        config: LiveConfig,
        partition: Option<LivePartition>,
        site_txs: Vec<Sender<Inbound>>,
        started: Instant,
    ) -> Router {
        Router { config, partition, site_txs, started }
    }

    fn severed(&self, a: SiteId, b: SiteId, now: Instant) -> bool {
        self.partition.as_ref().is_some_and(|p| p.severed(a, b, now.duration_since(self.started)))
    }

    fn sample_delay(&self, rng: &mut SmallRng) -> Duration {
        let t = self.config.t.as_micros() as u64;
        Duration::from_micros(rng.gen_range(t / 10..=t).max(1))
    }

    /// Runs until every sender hangs up and the queue drains.
    pub(crate) fn run(self, inbox: Receiver<Outbound>) {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut queue: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut open = true;

        loop {
            // Drain whatever is due.
            let now = Instant::now();
            while queue.peek().is_some_and(|Reverse(s)| s.due <= now) {
                let Reverse(s) = queue.pop().expect("peeked");
                if s.returning {
                    // The bounced leg: hand the message back to its sender.
                    let _ = self.site_txs[s.out.src.index()]
                        .send(Inbound::Undeliverable { original_dst: s.out.dst, msg: s.out.msg });
                } else if self.severed(s.out.src, s.out.dst, s.due) {
                    // Hit the boundary: schedule the return leg.
                    let due = s.due + self.sample_delay(&mut rng);
                    seq += 1;
                    queue.push(Reverse(Scheduled { due, seq, out: s.out, returning: true }));
                } else {
                    let _ = self.site_txs[s.out.dst.index()]
                        .send(Inbound::Deliver { src: s.out.src, msg: s.out.msg });
                }
            }

            if !open && queue.is_empty() {
                return;
            }

            // Wait for new traffic or the next due message.
            let timeout = queue
                .peek()
                .map(|Reverse(s)| s.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match inbox.recv_timeout(timeout) {
                Ok(out) => {
                    let due = Instant::now() + self.sample_delay(&mut rng);
                    seq += 1;
                    queue.push(Reverse(Scheduled { due, seq, out, returning: false }));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_windows() {
        let p = LivePartition {
            after: Duration::from_millis(10),
            g2: vec![SiteId(2)],
            heal_after: Some(Duration::from_millis(30)),
        };
        let a = SiteId(0);
        let b = SiteId(2);
        assert!(!p.severed(a, b, Duration::from_millis(5)));
        assert!(p.severed(a, b, Duration::from_millis(15)));
        assert!(!p.severed(a, b, Duration::from_millis(35)));
        // Same side: never severed.
        assert!(!p.severed(SiteId(0), SiteId(1), Duration::from_millis(15)));
    }

    #[test]
    fn config_defaults() {
        let c = LiveConfig::with_t(Duration::from_millis(10));
        assert_eq!(c.run_timeout, Duration::from_millis(600));
    }
}
