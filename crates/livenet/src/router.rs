//! The router thread: wall-clock message delays, partition episodes, site
//! crashes, and the optimistic undeliverable-message return.
//!
//! The delivery core is generic over the payload type `M`: the protocol
//! harness in this crate routes bare [`ptp_protocols::api::CommitMsg`]s,
//! while `ptp-live` routes coalesced multi-message envelopes through the
//! *same* router — one delay-queue implementation serves both runtimes.

use ptp_simnet::rng::SmallRng;
use ptp_simnet::{EnvelopeMatch, SiteId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// Global parameters of a live run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// The longest end-to-end delay `T`, in wall-clock time. Each message
    /// leg is delayed uniformly in `(T/10, T]`.
    pub t: Duration,
    /// Give up after this much wall time (blocked baselines never decide).
    pub run_timeout: Duration,
    /// RNG seed for delay sampling (scheduling jitter keeps runs
    /// nondeterministic regardless).
    pub seed: u64,
}

impl LiveConfig {
    /// Configuration with the given `T` and a 60T run timeout.
    pub fn with_t(t: Duration) -> LiveConfig {
        LiveConfig { t, run_timeout: t * 60, seed: 7 }
    }
}

/// One connectivity episode of a live partition schedule: from `from` until
/// `until` (forever if `None`), the listed `groups` can only talk within
/// themselves. Sites not listed in any group form one implicit extra group
/// together.
#[derive(Debug, Clone)]
pub struct LiveEpisode {
    /// When the episode begins, relative to run start.
    pub from: Duration,
    /// When it ends (exclusive), or `None` for "until the run ends".
    pub until: Option<Duration>,
    /// The severed groups. One group splits it from the unlisted rest;
    /// several groups make a multi-way split.
    pub groups: Vec<Vec<SiteId>>,
}

impl LiveEpisode {
    fn active(&self, at: Duration) -> bool {
        at >= self.from && self.until.is_none_or(|u| at < u)
    }

    /// The group index of `site` (listed group position, or `usize::MAX`
    /// for the implicit rest-group).
    fn group_of(&self, site: SiteId) -> usize {
        self.groups.iter().position(|g| g.contains(&site)).unwrap_or(usize::MAX)
    }
}

/// A wall-clock partition schedule: ordered, non-overlapping episodes —
/// the live counterpart of the simulator's multi-episode
/// `PartitionSchedule`, covering the same `ScheduleShape` families
/// (simple split, split→heal→re-split, multi-way, nested secession).
#[derive(Debug, Clone)]
pub struct LivePartition {
    episodes: Vec<LiveEpisode>,
}

impl LivePartition {
    /// A schedule from explicit episodes.
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is empty, out of order, or overlapping (every
    /// episode but the last must end, at or before its successor starts).
    pub fn new(episodes: Vec<LiveEpisode>) -> LivePartition {
        assert!(!episodes.is_empty(), "a partition schedule needs at least one episode");
        for pair in episodes.windows(2) {
            let end = pair[0].until.expect("only the last episode may be open-ended");
            assert!(pair[0].from <= end, "episode ends before it starts");
            assert!(end <= pair[1].from, "episodes must be ordered and non-overlapping");
        }
        LivePartition { episodes }
    }

    /// The single-episode schedule of the original harness: `g2` splits
    /// from the rest `after` the start, healing at `heal_after` (from the
    /// start) if given.
    pub fn simple(after: Duration, g2: Vec<SiteId>, heal_after: Option<Duration>) -> LivePartition {
        LivePartition::new(vec![LiveEpisode { from: after, until: heal_after, groups: vec![g2] }])
    }

    /// Split→heal→re-split: `first` secedes during `[split_at, heal_at)`,
    /// connectivity returns, then `second` secedes from `resplit_at` on.
    pub fn split_heal_resplit(
        first: Vec<SiteId>,
        split_at: Duration,
        heal_at: Duration,
        second: Vec<SiteId>,
        resplit_at: Duration,
    ) -> LivePartition {
        LivePartition::new(vec![
            LiveEpisode { from: split_at, until: Some(heal_at), groups: vec![first] },
            LiveEpisode { from: resplit_at, until: None, groups: vec![second] },
        ])
    }

    /// A single multi-way split: from `at` on, each listed group (plus the
    /// implicit rest) can only talk within itself.
    pub fn multi_way(at: Duration, groups: Vec<Vec<SiteId>>) -> LivePartition {
        LivePartition::new(vec![LiveEpisode { from: at, until: None, groups }])
    }

    /// Nested secession: `g2` secedes at `at`; at `then_at` a `splinter`
    /// (a subset of `g2`) secedes *again*, leaving three groups.
    pub fn nested_secession(
        at: Duration,
        g2: Vec<SiteId>,
        then_at: Duration,
        splinter: Vec<SiteId>,
    ) -> LivePartition {
        let remainder: Vec<SiteId> = g2.iter().copied().filter(|s| !splinter.contains(s)).collect();
        LivePartition::new(vec![
            LiveEpisode { from: at, until: Some(then_at), groups: vec![g2] },
            LiveEpisode { from: then_at, until: None, groups: vec![remainder, splinter] },
        ])
    }

    /// The schedule's episodes, in order.
    pub fn episodes(&self) -> &[LiveEpisode] {
        &self.episodes
    }

    /// True if `a` and `b` cannot talk at instant `at` (relative to start).
    pub fn severed(&self, a: SiteId, b: SiteId, at: Duration) -> bool {
        self.episodes.iter().find(|e| e.active(at)).is_some_and(|e| e.group_of(a) != e.group_of(b))
    }
}

/// Crash (and optionally recover) one site at wall-clock instants — the
/// live counterpart of `ptp_simnet::FailureSpec`. While crashed, messages
/// to and from the site are dropped (the message-loss effect of Sec. 7)
/// and its timers are suppressed.
#[derive(Debug, Clone)]
pub struct LiveCrash {
    /// The site to crash.
    pub site: SiteId,
    /// When it halts, relative to run start.
    pub after: Duration,
    /// When it comes back, if ever.
    pub recover_after: Option<Duration>,
}

impl LiveCrash {
    /// A permanent crash.
    pub fn crash(site: SiteId, after: Duration) -> LiveCrash {
        LiveCrash { site, after, recover_after: None }
    }

    /// A crash followed by recovery.
    pub fn crash_recover(site: SiteId, after: Duration, recover_after: Duration) -> LiveCrash {
        assert!(recover_after > after, "recovery must come after the crash");
        LiveCrash { site, after, recover_after: Some(recover_after) }
    }

    fn down(&self, site: SiteId, at: Duration) -> bool {
        self.site == site && at >= self.after && self.recover_after.is_none_or(|r| at < r)
    }
}

/// Message-kind tagging for envelope-fault matching.
///
/// The router matches [`LiveEnvFault`]s by the same `&'static str` kind
/// tags the simulator uses (`"xact"`, `"prepare"`, ...). Payload types
/// implement this explicitly: `ptp-livenet` tags bare `CommitMsg`s,
/// `ptp-live` tags its coalesced `Packet`s by their first inner message.
pub trait Tagged {
    /// The kind tag envelope faults match against.
    fn tag(&self) -> &'static str;
}

/// A wall-clock degraded-network window: while active, sampled delays come
/// from `min..=max` instead of the healthy `(T/10, T]` band — the live
/// counterpart of `ptp_simnet::DegradeWindow`.
#[derive(Debug, Clone, Copy)]
pub struct LiveDegrade {
    /// When the window opens, relative to run start.
    pub from: Duration,
    /// When it closes (exclusive), or `None` for "until the run ends".
    pub until: Option<Duration>,
    /// Slowest-band lower bound for each leg's delay.
    pub min: Duration,
    /// Slowest-band upper bound.
    pub max: Duration,
}

impl LiveDegrade {
    /// A window degrading delays to `min..=max` during `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if the band is empty or inverted, or the window never opens.
    pub fn new(from: Duration, until: Option<Duration>, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "degraded band is inverted");
        assert!(!max.is_zero(), "degraded band must allow positive delays");
        assert!(until.is_none_or(|u| from < u), "degrade window never opens");
        LiveDegrade { from, until, min, max }
    }

    fn active(&self, at: Duration) -> bool {
        at >= self.from && self.until.is_none_or(|u| at < u)
    }
}

/// What happens to a matched message — the wall-clock counterpart of
/// `ptp_simnet::EnvelopeAction`.
#[derive(Debug, Clone, Copy)]
pub enum LiveEnvAction {
    /// Silently lose the forward leg (no undeliverable bounce).
    Drop,
    /// Deliver the original and a clone `after` later.
    Duplicate {
        /// Extra delay of the duplicate past the original's delivery.
        after: Duration,
    },
    /// Postpone delivery by `by` past the sampled delay (reordering).
    Delay {
        /// The extra delay.
        by: Duration,
    },
}

/// One armed envelope-level fault: messages matching `matches` (by kind
/// tag, endpoints, and per-fault ordinal — the same [`EnvelopeMatch`] the
/// simulator uses) suffer `action`.
#[derive(Debug, Clone, Copy)]
pub struct LiveEnvFault {
    /// Which sends this fault applies to.
    pub matches: EnvelopeMatch,
    /// What happens to them.
    pub action: LiveEnvAction,
}

impl LiveEnvFault {
    /// A fault silently dropping every matched send.
    pub fn drop(matches: EnvelopeMatch) -> LiveEnvFault {
        LiveEnvFault { matches, action: LiveEnvAction::Drop }
    }

    /// A fault duplicating matched sends, the clone landing `after` later.
    pub fn duplicate(matches: EnvelopeMatch, after: Duration) -> LiveEnvFault {
        LiveEnvFault { matches, action: LiveEnvAction::Duplicate { after } }
    }

    /// A fault delaying matched sends by `by` past their sampled delay.
    pub fn delay(matches: EnvelopeMatch, by: Duration) -> LiveEnvFault {
        LiveEnvFault { matches, action: LiveEnvAction::Delay { by } }
    }
}

/// The full fault vocabulary of a live run, bundled: partition episodes,
/// site crashes, degraded-delay windows, and envelope-level faults. This is
/// what `ptp_core`'s timeline compiler lowers to.
#[derive(Debug, Clone, Default)]
pub struct LiveFaults {
    /// Partition episodes, if any.
    pub partition: Option<LivePartition>,
    /// Site crash (and recovery) schedule.
    pub crashes: Vec<LiveCrash>,
    /// Degraded-delay windows.
    pub degrades: Vec<LiveDegrade>,
    /// Envelope-level faults.
    pub env_faults: Vec<LiveEnvFault>,
}

impl LiveFaults {
    /// No faults at all.
    pub fn none() -> LiveFaults {
        LiveFaults::default()
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.partition.is_none()
            && self.crashes.is_empty()
            && self.degrades.is_empty()
            && self.env_faults.is_empty()
    }
}

/// A message handed to the router by a site (or an injecting client).
#[derive(Debug)]
pub struct Outbound<M> {
    /// Sending site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// The payload.
    pub msg: M,
}

/// What sites receive from the router (or the run harness).
#[derive(Debug)]
pub enum Inbound<M> {
    /// A delivered message.
    Deliver {
        /// The sender.
        src: SiteId,
        /// The payload.
        msg: M,
    },
    /// One of the site's own messages came back undeliverable.
    Undeliverable {
        /// Where the message was headed.
        original_dst: SiteId,
        /// The payload.
        msg: M,
    },
    /// The site just crashed: drop volatile state, go silent.
    Crash,
    /// The site recovered and may process traffic again.
    Recover,
    /// The run is over: exit the site thread.
    Shutdown,
}

#[derive(Debug)]
enum Sched<M> {
    /// The forward leg of a message. The flag marks a network-fabricated
    /// duplicate: a ghost copy that hits the partition boundary vanishes
    /// instead of bouncing, because the return-undeliverable service is
    /// per *send* — a fabricated bounce would tell the sender its message
    /// never arrived when the original was in fact delivered.
    Deliver(Outbound<M>, bool),
    /// The bounced return leg of an undeliverable message.
    Bounce(Outbound<M>),
    /// Tell a site it crashed.
    Crash(SiteId),
    /// Tell a site it recovered.
    Recover(SiteId),
}

#[derive(Debug)]
struct Scheduled<M> {
    due: Instant,
    seq: u64,
    what: Sched<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The router: owns the delay queue, the partition schedule, and the crash
/// schedule. Generic over the payload type — see the module docs.
pub struct Router<M> {
    config: LiveConfig,
    faults: LiveFaults,
    site_txs: Vec<Sender<Inbound<M>>>,
    started: Instant,
}

impl<M: Send + Clone + Tagged> Router<M> {
    /// A router delivering through `site_txs`, with delays and schedules
    /// measured from `started`.
    pub fn new(
        config: LiveConfig,
        partition: Option<LivePartition>,
        crashes: Vec<LiveCrash>,
        site_txs: Vec<Sender<Inbound<M>>>,
        started: Instant,
    ) -> Router<M> {
        let faults = LiveFaults { partition, crashes, ..LiveFaults::default() };
        Router::with_faults(config, faults, site_txs, started)
    }

    /// A router armed with the full [`LiveFaults`] vocabulary.
    pub fn with_faults(
        config: LiveConfig,
        faults: LiveFaults,
        site_txs: Vec<Sender<Inbound<M>>>,
        started: Instant,
    ) -> Router<M> {
        Router { config, faults, site_txs, started }
    }

    fn severed(&self, a: SiteId, b: SiteId, now: Instant) -> bool {
        self.faults
            .partition
            .as_ref()
            .is_some_and(|p| p.severed(a, b, now.duration_since(self.started)))
    }

    fn crashed(&self, site: SiteId, now: Instant) -> bool {
        let at = now.duration_since(self.started);
        self.faults.crashes.iter().any(|c| c.down(site, at))
    }

    fn sample_delay(&self, rng: &mut SmallRng, at: Duration) -> Duration {
        if let Some(w) = self.faults.degrades.iter().find(|w| w.active(at)) {
            let (lo, hi) = (w.min.as_micros() as u64, w.max.as_micros() as u64);
            return Duration::from_micros(rng.gen_range(lo..=hi).max(1));
        }
        let t = self.config.t.as_micros() as u64;
        Duration::from_micros(rng.gen_range(t / 10..=t).max(1))
    }

    /// Runs until every sender hangs up and the queue drains.
    pub fn run(self, inbox: Receiver<Outbound<M>>) {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut queue: BinaryHeap<Reverse<Scheduled<M>>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut open = true;
        // Per-fault match ordinals for `EnvelopeMatch::nth`.
        let mut env_hits = vec![0u32; self.faults.env_faults.len()];

        // Crash/recover control messages are ordinary queue entries with
        // exact (unsampled) due instants.
        for c in &self.faults.crashes {
            seq += 1;
            queue.push(Reverse(Scheduled {
                due: self.started + c.after,
                seq,
                what: Sched::Crash(c.site),
            }));
            if let Some(r) = c.recover_after {
                seq += 1;
                queue.push(Reverse(Scheduled {
                    due: self.started + r,
                    seq,
                    what: Sched::Recover(c.site),
                }));
            }
        }

        loop {
            // Drain whatever is due.
            let now = Instant::now();
            while queue.peek().is_some_and(|Reverse(s)| s.due <= now) {
                let Reverse(s) = queue.pop().expect("peeked");
                match s.what {
                    Sched::Deliver(out, ghost) => {
                        if self.crashed(out.src, s.due) || self.crashed(out.dst, s.due) {
                            // Message loss: a crashed endpoint neither sends
                            // nor receives (mirrors the simulator).
                        } else if self.severed(out.src, out.dst, s.due) {
                            // Hit the partition boundary: schedule the
                            // optimistic return leg — unless this copy is a
                            // ghost duplicate, which the network silently
                            // loses (mirrors the simulator).
                            if !ghost {
                                let rel = s.due.duration_since(self.started);
                                let due = s.due + self.sample_delay(&mut rng, rel);
                                seq += 1;
                                queue.push(Reverse(Scheduled {
                                    due,
                                    seq,
                                    what: Sched::Bounce(out),
                                }));
                            }
                        } else {
                            let _ = self.site_txs[out.dst.index()]
                                .send(Inbound::Deliver { src: out.src, msg: out.msg });
                        }
                    }
                    Sched::Bounce(out) => {
                        if !self.crashed(out.src, s.due) {
                            let _ = self.site_txs[out.src.index()].send(Inbound::Undeliverable {
                                original_dst: out.dst,
                                msg: out.msg,
                            });
                        }
                    }
                    Sched::Crash(site) => {
                        let _ = self.site_txs[site.index()].send(Inbound::Crash);
                    }
                    Sched::Recover(site) => {
                        let _ = self.site_txs[site.index()].send(Inbound::Recover);
                    }
                }
            }

            if !open && queue.is_empty() {
                return;
            }

            // Wait for new traffic or the next due entry.
            let timeout = queue
                .peek()
                .map(|Reverse(s)| s.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(50));
            match inbox.recv_timeout(timeout) {
                Ok(out) => {
                    let now = Instant::now();
                    let rel = now.duration_since(self.started);
                    let mut due = now + self.sample_delay(&mut rng, rel);
                    // Envelope faults are matched at send time, like the
                    // simulator's `Core::send` hook.
                    let mut dropped = false;
                    let mut duplicate_at: Option<Instant> = None;
                    for (i, fault) in self.faults.env_faults.iter().enumerate() {
                        if !fault.matches.covers(out.msg.tag(), out.src, out.dst) {
                            continue;
                        }
                        let ordinal = env_hits[i];
                        env_hits[i] += 1;
                        if fault.matches.nth.is_some_and(|n| n != ordinal) {
                            continue;
                        }
                        match fault.action {
                            LiveEnvAction::Drop => dropped = true,
                            LiveEnvAction::Duplicate { after } => {
                                duplicate_at = Some(due + after);
                            }
                            LiveEnvAction::Delay { by } => due += by,
                        }
                    }
                    if dropped {
                        continue;
                    }
                    if let Some(dup_due) = duplicate_at {
                        let clone = Outbound { src: out.src, dst: out.dst, msg: out.msg.clone() };
                        seq += 1;
                        queue.push(Reverse(Scheduled {
                            due: dup_due,
                            seq,
                            what: Sched::Deliver(clone, true),
                        }));
                    }
                    seq += 1;
                    queue.push(Reverse(Scheduled { due, seq, what: Sched::Deliver(out, false) }));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => open = false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn simple_partition_windows() {
        let p = LivePartition::simple(ms(10), vec![SiteId(2)], Some(ms(30)));
        let a = SiteId(0);
        let b = SiteId(2);
        assert!(!p.severed(a, b, ms(5)));
        assert!(p.severed(a, b, ms(15)));
        assert!(!p.severed(a, b, ms(35)));
        // Same side: never severed.
        assert!(!p.severed(SiteId(0), SiteId(1), ms(15)));
    }

    #[test]
    fn split_heal_resplit_schedule() {
        let p = LivePartition::split_heal_resplit(
            vec![SiteId(2), SiteId(3)],
            ms(10),
            ms(30),
            vec![SiteId(1)],
            ms(50),
        );
        assert_eq!(p.episodes().len(), 2);
        assert!(p.severed(SiteId(0), SiteId(2), ms(15)));
        assert!(!p.severed(SiteId(0), SiteId(2), ms(40)), "healed between episodes");
        assert!(p.severed(SiteId(0), SiteId(1), ms(60)));
        assert!(!p.severed(SiteId(0), SiteId(2), ms(60)), "second split severs g2 only");
    }

    #[test]
    fn multi_way_severs_across_groups() {
        let p = LivePartition::multi_way(ms(10), vec![vec![SiteId(1)], vec![SiteId(2)]]);
        assert!(p.severed(SiteId(1), SiteId(2), ms(20)));
        assert!(p.severed(SiteId(0), SiteId(1), ms(20)));
        // Unlisted sites share the implicit rest-group.
        assert!(!p.severed(SiteId(0), SiteId(3), ms(20)));
    }

    #[test]
    fn nested_secession_splits_the_splinter() {
        let p = LivePartition::nested_secession(
            ms(10),
            vec![SiteId(2), SiteId(3)],
            ms(30),
            vec![SiteId(3)],
        );
        assert!(!p.severed(SiteId(2), SiteId(3), ms(20)), "still one seceded group");
        assert!(p.severed(SiteId(2), SiteId(3), ms(40)), "splinter seceded again");
        assert!(p.severed(SiteId(0), SiteId(2), ms(40)));
    }

    #[test]
    #[should_panic(expected = "ordered and non-overlapping")]
    fn overlapping_episodes_rejected() {
        let _ = LivePartition::new(vec![
            LiveEpisode { from: ms(10), until: Some(ms(40)), groups: vec![vec![SiteId(1)]] },
            LiveEpisode { from: ms(30), until: None, groups: vec![vec![SiteId(2)]] },
        ]);
    }

    #[test]
    #[should_panic(expected = "open-ended")]
    fn open_ended_middle_episode_rejected() {
        let _ = LivePartition::new(vec![
            LiveEpisode { from: ms(10), until: None, groups: vec![vec![SiteId(1)]] },
            LiveEpisode { from: ms(30), until: None, groups: vec![vec![SiteId(2)]] },
        ]);
    }

    #[test]
    fn crash_windows() {
        let c = LiveCrash::crash_recover(SiteId(1), ms(10), ms(30));
        assert!(!c.down(SiteId(1), ms(5)));
        assert!(c.down(SiteId(1), ms(15)));
        assert!(!c.down(SiteId(1), ms(35)));
        assert!(!c.down(SiteId(2), ms(15)));
        let p = LiveCrash::crash(SiteId(1), ms(10));
        assert!(p.down(SiteId(1), ms(1000)));
    }

    #[test]
    #[should_panic(expected = "recovery must come after")]
    fn recovery_before_crash_rejected() {
        let _ = LiveCrash::crash_recover(SiteId(1), ms(30), ms(10));
    }

    #[test]
    fn config_defaults() {
        let c = LiveConfig::with_t(Duration::from_millis(10));
        assert_eq!(c.run_timeout, Duration::from_millis(600));
    }
}
