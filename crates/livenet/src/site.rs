//! The per-site thread: drives one [`Participant`] with real messages and
//! real timers.

use crate::router::{Inbound, LiveConfig, Outbound};
use ptp_model::Decision;
use ptp_protocols::api::{Action, CommitMsg, Participant, TimerTag};
use ptp_simnet::SiteId;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

pub(crate) struct SiteRunner<P: Participant> {
    me: SiteId,
    n: usize,
    participant: P,
    inbox: Receiver<Inbound<CommitMsg>>,
    router: Sender<Outbound<CommitMsg>>,
    done: Sender<(SiteId, Decision)>,
    config: LiveConfig,
    /// Armed timers: tag -> (deadline, generation). Re-arming bumps the
    /// generation so a stale deadline that already slipped past `recv`'s
    /// timeout cannot fire.
    timers: HashMap<TimerTag, (Instant, u64)>,
    generation: u64,
    decided: Option<Decision>,
    /// Down right now: ignore traffic, discard due timers (the router
    /// drops this site's messages too — see `Router::run`).
    crashed: bool,
}

impl<P: Participant> SiteRunner<P> {
    pub(crate) fn new(
        me: SiteId,
        n: usize,
        participant: P,
        inbox: Receiver<Inbound<CommitMsg>>,
        router: Sender<Outbound<CommitMsg>>,
        done: Sender<(SiteId, Decision)>,
        config: LiveConfig,
    ) -> SiteRunner<P> {
        SiteRunner {
            me,
            n,
            participant,
            inbox,
            router,
            done,
            config,
            timers: HashMap::new(),
            generation: 0,
            decided: None,
            crashed: false,
        }
    }

    fn apply(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let _ = self.router.send(Outbound { src: self.me, dst: to, msg });
                }
                Action::Broadcast { msg } => {
                    for dst in (0..self.n as u16).map(SiteId) {
                        if dst != self.me {
                            let _ = self.router.send(Outbound { src: self.me, dst, msg });
                        }
                    }
                }
                Action::SetTimer { t_units, tag } => {
                    self.generation += 1;
                    let deadline = Instant::now() + self.config.t * t_units as u32;
                    self.timers.insert(tag, (deadline, self.generation));
                }
                Action::CancelTimer { tag } => {
                    self.timers.remove(&tag);
                }
                Action::Decide(decision) => {
                    if self.decided.is_none() {
                        self.decided = Some(decision);
                        let _ = self.done.send((self.me, decision));
                    }
                }
                Action::Note(..) => {}
            }
        }
    }

    /// The earliest armed timer, if any.
    fn next_timer(&self) -> Option<(TimerTag, Instant, u64)> {
        self.timers
            .iter()
            .min_by_key(|(_, (deadline, _))| *deadline)
            .map(|(tag, (deadline, generation))| (*tag, *deadline, *generation))
    }

    /// Runs until the inbox closes. Continues after deciding so peers can
    /// still be answered (e.g. quorum state requests).
    pub(crate) fn run(mut self) {
        let mut out = Vec::new();
        self.participant.start(&mut out);
        self.apply(std::mem::take(&mut out));

        loop {
            let wait = match self.next_timer() {
                Some((_, deadline, _)) => deadline.saturating_duration_since(Instant::now()),
                None => Duration::from_millis(50),
            };
            match self.inbox.recv_timeout(wait) {
                Ok(Inbound::Deliver { src, msg }) => {
                    if self.crashed {
                        continue;
                    }
                    let mut actions = Vec::new();
                    self.participant.on_msg(src, &msg, &mut actions);
                    self.apply(actions);
                }
                Ok(Inbound::Undeliverable { original_dst, msg }) => {
                    if self.crashed {
                        continue;
                    }
                    let mut actions = Vec::new();
                    self.participant.on_ud(original_dst, &msg, &mut actions);
                    self.apply(actions);
                }
                Ok(Inbound::Crash) => self.crashed = true,
                Ok(Inbound::Recover) => self.crashed = false,
                Ok(Inbound::Shutdown) => return,
                Err(RecvTimeoutError::Timeout) => {
                    // Fire every timer whose deadline has passed (check the
                    // generation so a re-armed tag does not double-fire).
                    // While crashed, due timers are discarded unfired —
                    // the simulator's suppression semantics.
                    let now = Instant::now();
                    let due: Vec<(TimerTag, u64)> = self
                        .timers
                        .iter()
                        .filter(|(_, (deadline, _))| *deadline <= now)
                        .map(|(tag, (_, generation))| (*tag, *generation))
                        .collect();
                    for (tag, generation) in due {
                        if self.timers.get(&tag).is_some_and(|(_, g)| *g == generation) {
                            self.timers.remove(&tag);
                            if self.crashed {
                                continue;
                            }
                            let mut actions = Vec::new();
                            self.participant.on_timer(tag, &mut actions);
                            self.apply(actions);
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}
