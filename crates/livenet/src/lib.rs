//! # ptp-livenet — the protocols on real threads and real clocks
//!
//! The protocol implementations in `ptp-protocols` are sans-IO state
//! machines; the discrete-event simulator is only one possible harness.
//! This crate is the other: every site runs on its **own OS thread**,
//! messages travel through **mpsc channels** via a router thread that
//! imposes wall-clock delays bounded by a configurable `T`, and the paper's
//! optimistic partition semantics (undeliverable messages bounce back to
//! their senders) are enforced against the actual system clock. Partition
//! schedules are multi-episode ([`LivePartition`] covers the same families
//! as the simulator's `ScheduleShape`: simple, split→heal→re-split,
//! multi-way, nested secession) and sites can crash mid-run
//! ([`LiveCrash`]). The delivery core ([`Router`]) is generic over the
//! payload, so `ptp-live`'s long-running shard server reuses it unchanged.
//!
//! Nothing in the protocol code changes between the two runtimes — which is
//! itself a useful validation: the termination protocol's guarantees follow
//! from its message/timer discipline, not from simulator conveniences.
//! Executions here are *not* deterministic (thread scheduling and timer
//! jitter are real), so the tests assert outcomes — atomicity,
//! nonblocking — rather than exact timings.
//!
//! ```
//! use ptp_livenet::{LiveConfig, LivePartition, run_live};
//! use ptp_protocols::clusters::huang_li_3pc_cluster;
//! use ptp_protocols::termination::TerminationVariant;
//! use ptp_protocols::api::Vote;
//! use ptp_simnet::SiteId;
//! use std::time::Duration;
//!
//! let parts = huang_li_3pc_cluster(3, &[Vote::Yes; 2], TerminationVariant::Transient);
//! let outcome = run_live(
//!     parts,
//!     LiveConfig::with_t(Duration::from_millis(10)),
//!     Some(LivePartition::simple(Duration::from_millis(25), vec![SiteId(2)], None)),
//! );
//! assert!(outcome.consistent(), "{outcome:?}");
//! assert!(outcome.all_decided());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod router;
mod site;

pub use router::{
    Inbound, LiveConfig, LiveCrash, LiveDegrade, LiveEnvAction, LiveEnvFault, LiveEpisode,
    LiveFaults, LivePartition, Outbound, Router, Tagged,
};

use ptp_model::Decision;
use ptp_protocols::api::{CommitMsg, Participant};
use ptp_simnet::{Payload, SiteId};
use std::sync::mpsc;
use std::time::{Duration, Instant};

impl Tagged for CommitMsg {
    fn tag(&self) -> &'static str {
        self.kind()
    }
}

/// What a live run produced.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// Final decision per site (`None` = undecided when the run ended).
    pub decisions: Vec<Option<Decision>>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl LiveOutcome {
    /// No two sites decided differently.
    pub fn consistent(&self) -> bool {
        let mut kinds = self.decisions.iter().flatten();
        match kinds.next() {
            None => true,
            Some(first) => kinds.all(|d| d == first),
        }
    }

    /// Every site decided.
    pub fn all_decided(&self) -> bool {
        self.decisions.iter().all(Option::is_some)
    }

    /// Every site except the listed ones decided.
    pub fn all_decided_except(&self, exempt: &[SiteId]) -> bool {
        self.decisions
            .iter()
            .enumerate()
            .all(|(i, d)| d.is_some() || exempt.contains(&SiteId(i as u16)))
    }
}

/// Runs the participants (site `i` = `participants[i]`, site 0 the master)
/// on threads until everyone decides or `config.run_timeout` elapses.
///
/// Generic over the participant type: boxed `Vec<Box<dyn Participant>>`
/// clusters and enum-dispatched `Vec<ptp_protocols::AnyParticipant>` ones
/// (from the `*_cluster_any` constructors) both work.
pub fn run_live<P: Participant + 'static>(
    participants: Vec<P>,
    config: LiveConfig,
    partition: Option<LivePartition>,
) -> LiveOutcome {
    run_live_faulty(participants, config, partition, Vec::new())
}

/// [`run_live`] with site crashes: the full fault vocabulary of the live
/// harness. A crashed site stops processing messages and timers; with
/// [`LiveCrash::crash_recover`] it resumes (its protocol state intact —
/// the livenet harness models the network-level message loss, not WAL
/// recovery, which lives in `ptp-live`).
pub fn run_live_faulty<P: Participant + 'static>(
    participants: Vec<P>,
    config: LiveConfig,
    partition: Option<LivePartition>,
    crashes: Vec<LiveCrash>,
) -> LiveOutcome {
    run_live_with(participants, config, LiveFaults { partition, crashes, ..LiveFaults::default() })
}

/// [`run_live`] with the full [`LiveFaults`] vocabulary: partition
/// episodes, site crashes, degraded-delay windows, and envelope-level
/// faults — the lowering target of `ptp_core`'s scenario timeline.
pub fn run_live_with<P: Participant + 'static>(
    participants: Vec<P>,
    config: LiveConfig,
    faults: LiveFaults,
) -> LiveOutcome {
    let n = participants.len();
    assert!(n >= 2);
    let started = Instant::now();

    // Per-site inboxes and the router's shared inbox.
    let (router_tx, router_rx) = mpsc::channel();
    let mut site_txs = Vec::with_capacity(n);
    let mut site_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = mpsc::channel();
        site_txs.push(tx);
        site_rxs.push(rx);
    }
    let (done_tx, done_rx) = mpsc::channel();

    let router: Router<CommitMsg> = Router::with_faults(config, faults, site_txs.clone(), started);
    let router_handle = std::thread::spawn(move || router.run(router_rx));

    let mut handles = Vec::with_capacity(n);
    for (i, (participant, rx)) in participants.into_iter().zip(site_rxs).enumerate() {
        let runner = site::SiteRunner::new(
            SiteId(i as u16),
            n,
            participant,
            rx,
            router_tx.clone(),
            done_tx.clone(),
            config,
        );
        handles.push(std::thread::spawn(move || runner.run()));
    }
    drop(router_tx);
    drop(done_tx);

    // Collect decisions until all sites reported or the deadline passes.
    let mut decisions: Vec<Option<Decision>> = vec![None; n];
    let deadline = started + config.run_timeout;
    let mut reported = 0usize;
    while reported < n {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match done_rx.recv_timeout(deadline - now) {
            Ok((site, decision)) => {
                let slot: &mut Option<Decision> = &mut decisions[SiteId::index(site)];
                if slot.is_none() {
                    *slot = Some(decision);
                    reported += 1;
                }
            }
            Err(_) => break,
        }
    }

    // Shut everything down: tell every site to exit; their router senders
    // drop, the router's inbox disconnects, and the router drains out.
    for tx in &site_txs {
        let _ = tx.send(Inbound::Shutdown);
    }
    for h in handles {
        let _ = h.join().map_err(|_| ()); // a panicked site is reported as undecided
    }
    drop(site_txs);
    let _ = router_handle.join();

    LiveOutcome { decisions, elapsed: started.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_protocols::api::Vote;
    use ptp_protocols::clusters::huang_li_3pc_cluster_any;
    use ptp_protocols::termination::TerminationVariant;
    use ptp_protocols::AnyParticipant;

    fn cfg() -> LiveConfig {
        LiveConfig::with_t(Duration::from_millis(8))
    }

    // Enum-dispatched cluster: the live threads run without a single box.
    fn hl_cluster(n: usize) -> Vec<AnyParticipant> {
        huang_li_3pc_cluster_any(n, &vec![Vote::Yes; n - 1], TerminationVariant::Transient)
    }

    #[test]
    fn failure_free_commit_on_threads() {
        let outcome = run_live(hl_cluster(4), cfg(), None);
        assert!(outcome.all_decided(), "{outcome:?}");
        assert!(outcome.consistent());
        assert_eq!(outcome.decisions[0], Some(Decision::Commit));
    }

    #[test]
    fn partition_mid_commit_is_survived_on_threads() {
        let outcome = run_live(
            hl_cluster(3),
            cfg(),
            Some(LivePartition::simple(Duration::from_millis(20), vec![SiteId(2)], None)),
        );
        assert!(outcome.all_decided(), "{outcome:?}");
        assert!(outcome.consistent(), "{outcome:?}");
    }

    #[test]
    fn transient_partition_is_survived_on_threads() {
        let outcome = run_live(
            hl_cluster(3),
            cfg(),
            Some(LivePartition::simple(
                Duration::from_millis(16),
                vec![SiteId(1), SiteId(2)],
                Some(Duration::from_millis(40)),
            )),
        );
        assert!(outcome.all_decided(), "{outcome:?}");
        assert!(outcome.consistent(), "{outcome:?}");
    }

    #[test]
    fn crashed_slave_does_not_block_the_rest() {
        let outcome = run_live_faulty(
            hl_cluster(4),
            cfg(),
            None,
            vec![LiveCrash::crash(SiteId(3), Duration::from_millis(10))],
        );
        assert!(outcome.consistent(), "{outcome:?}");
        assert!(outcome.all_decided_except(&[SiteId(3)]), "{outcome:?}");
    }
}
