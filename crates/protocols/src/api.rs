//! The sans-IO participant interface.
//!
//! Protocol logic is written as pure state machines that consume events and
//! emit [`Action`]s; the [`crate::runner`] wires them to `ptp-simnet`. This
//! keeps every protocol unit-testable without a network and lets the ddb
//! crate embed the same state machines under its own message multiplexing.

use ptp_model::Decision;
use ptp_simnet::{Payload, SiteId};

/// Messages exchanged by the commit protocols in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMsg {
    /// A protocol message identified by its kind tag (`"xact"`, `"yes"`,
    /// `"prepare"`, `"ack"`, `"ready"`, `"ack2"`, `"commit"`, `"abort"`, ...).
    /// Addressing lives in the envelope; commit protocols never need more
    /// payload than the kind.
    Kind(&'static str),
    /// The termination protocol's probe: `probe(trans_id, slave_id)`
    /// (Sec. 5.3). The transaction id is implicit (one transaction per
    /// simulation; `ptp-ddb` multiplexes by wrapping), the slave id is in
    /// the envelope source; the variant still carries it for fidelity with
    /// the paper's message format.
    Probe {
        /// The probing slave.
        slave: u16,
    },
    /// Quorum-termination state request (Skeen 1982 baseline). Carries the
    /// requester's own state class so responders already collecting can
    /// absorb it as a free report (piggybacking); the baseline tuning
    /// ignores the field.
    StateReq {
        /// Encoded local state class of the *requester*.
        state: u8,
    },
    /// Quorum-termination state report: the responder's current local state
    /// class (see [`crate::quorum`]).
    StateRep {
        /// Encoded local state class.
        state: u8,
    },
}

impl Payload for CommitMsg {
    fn kind(&self) -> &'static str {
        match self {
            CommitMsg::Kind(k) => k,
            CommitMsg::Probe { .. } => "probe",
            CommitMsg::StateReq { .. } => "state-req",
            CommitMsg::StateRep { .. } => "state-rep",
        }
    }
}

/// Timer tags used by the protocol state machines. All durations are integer
/// multiples of `T` (Figs. 5, 6, 7, 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerTag {
    /// The commit-protocol timeout: 2T at the master, 3T at slaves (Fig. 5).
    Proto,
    /// Slave's 6T wait after timing out in `w` (Fig. 7).
    WWait,
    /// Master's 5T probe-collection window after the first UD(prepare)
    /// (Fig. 6).
    Collect,
    /// Slave's 5T wait after timing out in `p` (Fig. 9 / Sec. 6).
    PWait,
    /// Quorum baseline: state-collection window.
    QuorumCollect,
}

impl TimerTag {
    /// Number of distinct tags — sizes the runner's per-site timer table.
    pub const COUNT: usize = 5;

    /// Dense index in `0..TimerTag::COUNT`.
    pub fn index(self) -> usize {
        (self.encode() - 1) as usize
    }

    /// Stable encoding for the simulator's `u64` timer tags.
    pub fn encode(self) -> u64 {
        match self {
            TimerTag::Proto => 1,
            TimerTag::WWait => 2,
            TimerTag::Collect => 3,
            TimerTag::PWait => 4,
            TimerTag::QuorumCollect => 5,
        }
    }

    /// Stable human-readable name — profiling attribution for timer events.
    pub fn name(self) -> &'static str {
        match self {
            TimerTag::Proto => "proto",
            TimerTag::WWait => "w-wait",
            TimerTag::Collect => "collect",
            TimerTag::PWait => "p-wait",
            TimerTag::QuorumCollect => "quorum-collect",
        }
    }

    /// Inverse of [`TimerTag::encode`].
    pub fn decode(raw: u64) -> Option<TimerTag> {
        Some(match raw {
            1 => TimerTag::Proto,
            2 => TimerTag::WWait,
            3 => TimerTag::Collect,
            4 => TimerTag::PWait,
            5 => TimerTag::QuorumCollect,
            _ => return None,
        })
    }
}

/// An effect requested by a participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a message to one site.
    Send {
        /// Destination.
        to: SiteId,
        /// Message.
        msg: CommitMsg,
    },
    /// Send a message to every *other* participating site — the paper's
    /// `commit_1-n` / `abort_1-n` broadcasts.
    Broadcast {
        /// Message.
        msg: CommitMsg,
    },
    /// Arm (or re-arm: an existing timer with the same tag is cancelled) a
    /// timer for `t_units * T`.
    SetTimer {
        /// Duration in units of `T`.
        t_units: u64,
        /// Which timer.
        tag: TimerTag,
    },
    /// Cancel the timer with this tag, if armed.
    CancelTimer {
        /// Which timer.
        tag: TimerTag,
    },
    /// Record the site's final decision. At most one per site per run.
    Decide(Decision),
    /// Trace annotation (state transitions; timing experiments key off
    /// these).
    Note(&'static str, u64),
}

/// A protocol participant: one site's state machine.
///
/// `Send` so the same state machines run both on the single-threaded
/// simulator and on `ptp-livenet`'s one-thread-per-site runtime.
pub trait Participant: Send {
    /// Called once at simulation start.
    fn start(&mut self, out: &mut Vec<Action>);

    /// A message arrived from `from`.
    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>);

    /// One of this site's messages to `original_dst` came back undeliverable.
    fn on_ud(&mut self, original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>);

    /// A timer fired.
    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>);

    /// The participant's decision so far, if any (used by tests; the runner
    /// records decisions from [`Action::Decide`]).
    fn decision(&self) -> Option<Decision>;

    /// Short, stable name of the current local state (for traces and the
    /// quorum baseline's state reports).
    fn state_name(&self) -> &'static str;

    /// Re-initialises the participant for a fresh run with the given vote,
    /// keeping its configuration (protocol spec, timing, quorum sizes, site
    /// identity) and — wherever possible — its heap allocations.
    ///
    /// Contract: after `reset`, the participant must behave exactly like a
    /// freshly constructed one with the same configuration and `vote`.
    /// Masters have no vote of their own and ignore the argument. This is
    /// what lets a `ptp_core::Session` build each state machine once and
    /// replay thousands of grid cells through it.
    fn reset(&mut self, vote: Vote);
}

/// Boxed participants delegate, so heterogeneous `Box<dyn Participant>`
/// clusters keep working wherever a `P: Participant` is expected.
impl Participant for Box<dyn Participant> {
    fn start(&mut self, out: &mut Vec<Action>) {
        (**self).start(out);
    }
    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        (**self).on_msg(from, msg, out);
    }
    fn on_ud(&mut self, original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        (**self).on_ud(original_dst, msg, out);
    }
    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        (**self).on_timer(tag, out);
    }
    fn decision(&self) -> Option<Decision> {
        (**self).decision()
    }
    fn state_name(&self) -> &'static str {
        (**self).state_name()
    }
    fn reset(&mut self, vote: Vote) {
        (**self).reset(vote);
    }
}

/// How a slave votes when the transaction arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Vote {
    /// Vote to commit (send `yes`).
    #[default]
    Yes,
    /// Unilaterally abort (send `no`).
    No,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_kinds() {
        assert_eq!(CommitMsg::Kind("prepare").kind(), "prepare");
        assert_eq!(CommitMsg::Probe { slave: 2 }.kind(), "probe");
        assert_eq!(CommitMsg::StateReq { state: 0 }.kind(), "state-req");
        assert_eq!(CommitMsg::StateRep { state: 1 }.kind(), "state-rep");
    }

    #[test]
    fn timer_tag_roundtrip() {
        for tag in [
            TimerTag::Proto,
            TimerTag::WWait,
            TimerTag::Collect,
            TimerTag::PWait,
            TimerTag::QuorumCollect,
        ] {
            assert_eq!(TimerTag::decode(tag.encode()), Some(tag));
            assert!(!tag.name().is_empty());
            // COUNT sizes the runner's dense timer table; a tag whose
            // index falls outside it would panic at runtime.
            assert!(tag.index() < TimerTag::COUNT, "{tag:?} index out of table");
        }
        assert_eq!(TimerTag::decode(0), None);
        assert_eq!(TimerTag::decode(99), None);
        // Every index in 0..COUNT is covered by exactly one tag.
        let mut seen = [false; TimerTag::COUNT];
        for raw in 1..=TimerTag::COUNT as u64 {
            let tag = TimerTag::decode(raw).expect("dense encoding");
            assert!(!seen[tag.index()]);
            seen[tag.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn default_vote_is_yes() {
        assert_eq!(Vote::default(), Vote::Yes);
    }
}
