//! Per-site outcome records and the consistency verdict.

use ptp_model::Decision;
use ptp_simnet::{SimTime, SiteId};

/// What one site did during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteOutcome {
    /// Final decision, if the site terminated.
    pub decision: Option<Decision>,
    /// When the decision was recorded.
    pub decided_at: Option<SimTime>,
    /// State-name history with timestamps (from participants' notes).
    pub history: Vec<(SimTime, &'static str)>,
}

impl SiteOutcome {
    /// True if the site never reached a decision — the paper's "blocked".
    pub fn blocked(&self) -> bool {
        self.decision.is_none()
    }
}

/// The atomicity verdict over all sites of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every site committed.
    AllCommit,
    /// Every site aborted.
    AllAbort,
    /// Everyone who decided agreed, but some sites never decided.
    Blocked {
        /// The undecided sites.
        undecided: Vec<SiteId>,
        /// What the decided sites chose (`None` if nobody decided).
        agreed: Option<Decision>,
    },
    /// Atomicity violation: some sites committed while others aborted.
    Inconsistent {
        /// Sites that committed.
        committed: Vec<SiteId>,
        /// Sites that aborted.
        aborted: Vec<SiteId>,
    },
}

impl Verdict {
    /// Classifies a slice of outcomes.
    pub fn judge(outcomes: &[SiteOutcome]) -> Verdict {
        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        let mut undecided = Vec::new();
        for (i, o) in outcomes.iter().enumerate() {
            match o.decision {
                Some(Decision::Commit) => committed.push(SiteId(i as u16)),
                Some(Decision::Abort) => aborted.push(SiteId(i as u16)),
                None => undecided.push(SiteId(i as u16)),
            }
        }
        match (committed.is_empty(), aborted.is_empty(), undecided.is_empty()) {
            (false, false, _) => Verdict::Inconsistent { committed, aborted },
            (_, _, false) => Verdict::Blocked {
                undecided,
                agreed: if !committed.is_empty() {
                    Some(Decision::Commit)
                } else if !aborted.is_empty() {
                    Some(Decision::Abort)
                } else {
                    None
                },
            },
            (false, true, true) => Verdict::AllCommit,
            (true, false, true) => Verdict::AllAbort,
            (true, true, true) => Verdict::Blocked { undecided: vec![], agreed: None },
        }
    }

    /// Resilience in the paper's sense: atomicity preserved *and* nonblocking.
    pub fn is_resilient(&self) -> bool {
        matches!(self, Verdict::AllCommit | Verdict::AllAbort)
    }

    /// Atomicity alone (blocking allowed).
    pub fn is_atomic(&self) -> bool {
        !matches!(self, Verdict::Inconsistent { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(d: Option<Decision>) -> SiteOutcome {
        SiteOutcome { decision: d, decided_at: d.map(|_| SimTime(1)), history: vec![] }
    }

    #[test]
    fn all_commit() {
        let v = Verdict::judge(&vec![outcome(Some(Decision::Commit)); 3]);
        assert_eq!(v, Verdict::AllCommit);
        assert!(v.is_resilient());
        assert!(v.is_atomic());
    }

    #[test]
    fn all_abort() {
        let v = Verdict::judge(&vec![outcome(Some(Decision::Abort)); 2]);
        assert_eq!(v, Verdict::AllAbort);
        assert!(v.is_resilient());
    }

    #[test]
    fn inconsistent_dominates_blocked() {
        let v = Verdict::judge(&[
            outcome(Some(Decision::Commit)),
            outcome(Some(Decision::Abort)),
            outcome(None),
        ]);
        match &v {
            Verdict::Inconsistent { committed, aborted } => {
                assert_eq!(committed, &vec![SiteId(0)]);
                assert_eq!(aborted, &vec![SiteId(1)]);
            }
            other => panic!("expected inconsistent, got {other:?}"),
        }
        assert!(!v.is_atomic());
        assert!(!v.is_resilient());
    }

    #[test]
    fn blocked_with_agreement() {
        let v = Verdict::judge(&[outcome(Some(Decision::Commit)), outcome(None)]);
        assert_eq!(
            v,
            Verdict::Blocked { undecided: vec![SiteId(1)], agreed: Some(Decision::Commit) }
        );
        assert!(v.is_atomic());
        assert!(!v.is_resilient());
    }

    #[test]
    fn blocked_nobody_decided() {
        let v = Verdict::judge(&[outcome(None), outcome(None)]);
        match v {
            Verdict::Blocked { ref undecided, agreed: None } => {
                assert_eq!(undecided.len(), 2);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn blocked_predicate_on_outcomes() {
        assert!(outcome(None).blocked());
        assert!(!outcome(Some(Decision::Commit)).blocked());
    }
}
