//! Wiring participants to the simulated network.

use crate::api::{Action, CommitMsg, Participant, TimerTag};
use crate::outcome::SiteOutcome;
use ptp_model::Decision;
use ptp_simnet::{
    Actor, Ctx, DelayModel, Envelope, FailureSpec, NetConfig, PartitionEngine, RunReport,
    Simulation, SiteId, TimerHandle, Trace, TraceSink,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Shared outcome board written by the actor adapters during a run.
type Board = Rc<RefCell<Vec<SiteOutcome>>>;

/// Adapter: drives a [`Participant`] as a `ptp-simnet` [`Actor`].
struct ProtocolActor {
    inner: Box<dyn Participant>,
    all_sites: Vec<SiteId>,
    board: Board,
    timers: HashMap<TimerTag, TimerHandle>,
}

impl ProtocolActor {
    fn apply(&mut self, actions: Vec<Action>, ctx: &mut Ctx<'_, CommitMsg>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => ctx.send(to, msg),
                Action::Broadcast { msg } => {
                    let sites = self.all_sites.clone();
                    ctx.send_to_all(&sites, msg);
                }
                Action::SetTimer { t_units, tag } => {
                    if let Some(old) = self.timers.remove(&tag) {
                        ctx.cancel_timer(old);
                    }
                    let handle = ctx.set_timer(ctx.t(t_units), tag.encode());
                    self.timers.insert(tag, handle);
                }
                Action::CancelTimer { tag } => {
                    if let Some(old) = self.timers.remove(&tag) {
                        ctx.cancel_timer(old);
                    }
                }
                Action::Decide(decision) => {
                    let me = ctx.me().index();
                    let mut board = self.board.borrow_mut();
                    let slot = &mut board[me];
                    // First decision wins; a second one would be a protocol
                    // bug, surfaced by the debug assertion.
                    debug_assert!(
                        slot.decision.is_none() || slot.decision == Some(decision),
                        "site {me} changed its decision"
                    );
                    if slot.decision.is_none() {
                        slot.decision = Some(decision);
                        slot.decided_at = Some(ctx.now());
                        ctx.note(
                            "decided",
                            match decision {
                                Decision::Commit => 1,
                                Decision::Abort => 0,
                            },
                        );
                    }
                }
                Action::Note(label, detail) => {
                    let me = ctx.me().index();
                    self.board.borrow_mut()[me].history.push((ctx.now(), label));
                    ctx.note(label, detail);
                }
            }
        }
    }
}

impl Actor<CommitMsg> for ProtocolActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CommitMsg>) {
        let mut out = Vec::new();
        self.inner.start(&mut out);
        self.apply(out, ctx);
    }

    fn on_message(&mut self, env: Envelope<CommitMsg>, ctx: &mut Ctx<'_, CommitMsg>) {
        let mut out = Vec::new();
        self.inner.on_msg(env.src, &env.payload, &mut out);
        self.apply(out, ctx);
    }

    fn on_undeliverable(&mut self, env: Envelope<CommitMsg>, ctx: &mut Ctx<'_, CommitMsg>) {
        let mut out = Vec::new();
        self.inner.on_ud(env.dst, &env.payload, &mut out);
        self.apply(out, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, CommitMsg>) {
        let Some(tag) = TimerTag::decode(tag) else { return };
        self.timers.remove(&tag);
        let mut out = Vec::new();
        self.inner.on_timer(tag, &mut out);
        self.apply(out, ctx);
    }
}

/// Result of running a commit protocol through one scenario.
#[derive(Debug)]
pub struct ProtocolRun {
    /// Per-site outcomes (index = site id).
    pub outcomes: Vec<SiteOutcome>,
    /// Full network trace.
    pub trace: Trace,
    /// Simulator report.
    pub report: RunReport,
}

/// Runs `participants` (site `i` = `participants[i]`, site 0 the master)
/// under the given network conditions, recording a full trace.
///
/// Equivalent to [`run_protocol_with`] with `record_trace = true`; the
/// timing experiments (Figs. 5–7, 9) measure over the returned trace.
pub fn run_protocol(
    participants: Vec<Box<dyn Participant>>,
    config: NetConfig,
    partition: PartitionEngine,
    delay: &DelayModel,
    failures: Vec<FailureSpec>,
) -> ProtocolRun {
    run_protocol_with(participants, config, partition, delay, failures, true)
}

/// Runs `participants` with an explicit tracing choice.
///
/// `record_trace = false` routes the simulation through
/// [`TraceSink::Null`]: verdict-only workloads (resilience sweeps,
/// counterexample hunts) skip every per-event allocation and
/// [`ProtocolRun::trace`] comes back empty. Outcomes, decisions and the
/// [`RunReport`] (including its event counters) are identical either way —
/// the sink never feeds back into protocol behaviour.
pub fn run_protocol_with(
    participants: Vec<Box<dyn Participant>>,
    config: NetConfig,
    partition: PartitionEngine,
    delay: &DelayModel,
    failures: Vec<FailureSpec>,
    record_trace: bool,
) -> ProtocolRun {
    let n = participants.len();
    let board: Board = Rc::new(RefCell::new(vec![SiteOutcome::default(); n]));
    let all_sites: Vec<SiteId> = (0..n as u16).map(SiteId).collect();

    let actors: Vec<Box<dyn Actor<CommitMsg>>> = participants
        .into_iter()
        .map(|p| {
            Box::new(ProtocolActor {
                inner: p,
                all_sites: all_sites.clone(),
                board: board.clone(),
                timers: HashMap::new(),
            }) as Box<dyn Actor<CommitMsg>>
        })
        .collect();

    let sink = if record_trace { TraceSink::recording() } else { TraceSink::Null };
    let sim = Simulation::with_sink(config, actors, partition, delay, failures, sink);
    let (actors, trace, report) = sim.run();
    drop(actors); // release the adapters' board references
    let outcomes = Rc::try_unwrap(board).expect("board uniquely owned after run").into_inner();
    ProtocolRun { outcomes, trace, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Vote;
    use crate::interp::FsaParticipant;
    use crate::outcome::Verdict;
    use ptp_model::protocols::two_phase;
    use std::sync::Arc;

    fn run_2pc(votes: &[Vote]) -> ProtocolRun {
        let spec = Arc::new(two_phase(votes.len() + 1));
        let mut parts: Vec<Box<dyn Participant>> = Vec::new();
        for site in 0..spec.n() {
            let vote = if site == 0 { Vote::Yes } else { votes[site - 1] };
            parts.push(Box::new(FsaParticipant::new(spec.clone(), site, vote, None)));
        }
        run_protocol(
            parts,
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(300),
            vec![],
        )
    }

    #[test]
    fn failure_free_2pc_commits_on_unanimous_yes() {
        let run = run_2pc(&[Vote::Yes, Vote::Yes]);
        assert_eq!(Verdict::judge(&run.outcomes), Verdict::AllCommit);
    }

    #[test]
    fn failure_free_2pc_aborts_on_any_no() {
        let run = run_2pc(&[Vote::Yes, Vote::No]);
        assert_eq!(Verdict::judge(&run.outcomes), Verdict::AllAbort);
    }

    #[test]
    fn decision_timestamps_recorded() {
        let run = run_2pc(&[Vote::Yes, Vote::Yes]);
        for o in &run.outcomes {
            assert!(o.decided_at.is_some());
        }
        // Master decides before the slaves receive the commit message.
        assert!(run.outcomes[0].decided_at <= run.outcomes[1].decided_at);
    }
}
