//! Wiring participants to the simulated network.
//!
//! The centrepiece is [`ClusterRunner`]: a **reusable** harness that owns
//! the actor adapters, the simulator's recycled buffers
//! ([`ptp_simnet::SimScratch`]) and an outcome scratch vector, so running a
//! cluster through thousands of scenarios allocates per run only what a
//! single simulation inherently needs. It is generic over the participant
//! type — `ClusterRunner<AnyParticipant>` (what `ptp_core::Session` uses)
//! dispatches protocol events without any vtable; `ClusterRunner<Box<dyn
//! Participant>>` keeps the historical heterogeneous clusters working.
//!
//! One-shot conveniences remain: [`run_protocol`] (records a full trace)
//! and [`run_protocol_opts`] (typed [`RunOptions`]).

use crate::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use crate::options::{RunOptions, TraceMode};
use crate::outcome::SiteOutcome;
use ptp_model::Decision;
use ptp_simnet::{
    Actor, Ctx, DegradeWindow, DelayModel, Envelope, EnvelopeFault, FailureSpec, NetConfig,
    PartitionEngine, ProfKey, ProfSink, Profile, RunReport, SimScratch, Simulation, SiteId,
    TimerHandle, Trace,
};
use std::sync::Arc;

/// Adapter: drives a [`Participant`] as a `ptp-simnet` [`Actor`].
///
/// Each adapter owns its site's [`SiteOutcome`] (sites never write each
/// other's outcomes, so no shared board is needed), a dense timer table
/// indexed by [`TimerTag`], and a reusable action buffer — all recycled
/// across runs by [`ClusterRunner`].
struct ProtocolActor<P> {
    inner: P,
    all_sites: Arc<[SiteId]>,
    outcome: SiteOutcome,
    timers: [Option<TimerHandle>; TimerTag::COUNT],
    pending: Vec<Action>,
    /// Event-attribution sink. [`ProfSink::Null`] by default; *not* cleared
    /// by [`ProtocolActor::begin_run`], so a recording sink accumulates
    /// attribution across every run until [`ClusterRunner::take_profile`]
    /// drains it — sweep-wide breakdowns come from exactly this.
    prof: ProfSink,
}

impl<P: Participant> ProtocolActor<P> {
    fn new(inner: P, all_sites: Arc<[SiteId]>) -> Self {
        ProtocolActor {
            inner,
            all_sites,
            outcome: SiteOutcome::default(),
            timers: [None; TimerTag::COUNT],
            pending: Vec::new(),
            prof: ProfSink::Null,
        }
    }

    /// Clears the per-run adapter state (the participant itself is reset by
    /// the caller, which knows the votes). Buffers keep their capacity.
    fn begin_run(&mut self) {
        self.outcome.decision = None;
        self.outcome.decided_at = None;
        self.outcome.history.clear();
        self.timers = [None; TimerTag::COUNT];
    }

    /// Runs one participant handler through the reusable action buffer and
    /// applies the resulting effects.
    ///
    /// `event`/`kind` attribute the handler for profiling; with the null
    /// sink (the sweep default) the only overhead is one branch — no clock
    /// reads, no allocation.
    fn dispatch(
        &mut self,
        ctx: &mut Ctx<'_, CommitMsg>,
        event: &'static str,
        kind: &'static str,
        f: impl FnOnce(&mut P, &mut Vec<Action>),
    ) {
        let mut out = std::mem::take(&mut self.pending);
        if self.prof.is_recording() {
            // Phase is sampled *before* the handler runs: the cost of an
            // event belongs to the state that had to process it.
            let phase = self.inner.state_name();
            let begun = std::time::Instant::now();
            f(&mut self.inner, &mut out);
            let nanos = begun.elapsed().as_nanos() as u64;
            self.prof.record(ProfKey { event, kind, phase, site: ctx.me() }, nanos);
        } else {
            f(&mut self.inner, &mut out);
        }
        self.apply(&mut out, ctx);
        self.pending = out;
    }

    fn apply(&mut self, actions: &mut Vec<Action>, ctx: &mut Ctx<'_, CommitMsg>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg } => ctx.send(to, msg),
                Action::Broadcast { msg } => ctx.send_to_all(&self.all_sites, msg),
                Action::SetTimer { t_units, tag } => {
                    if let Some(old) = self.timers[tag.index()].take() {
                        ctx.cancel_timer(old);
                    }
                    let handle = ctx.set_timer(ctx.t(t_units), tag.encode());
                    self.timers[tag.index()] = Some(handle);
                }
                Action::CancelTimer { tag } => {
                    if let Some(old) = self.timers[tag.index()].take() {
                        ctx.cancel_timer(old);
                    }
                }
                Action::Decide(decision) => {
                    // First decision wins; a second one would be a protocol
                    // bug, surfaced by the debug assertion.
                    debug_assert!(
                        self.outcome.decision.is_none() || self.outcome.decision == Some(decision),
                        "site {} changed its decision",
                        ctx.me()
                    );
                    if self.outcome.decision.is_none() {
                        self.outcome.decision = Some(decision);
                        self.outcome.decided_at = Some(ctx.now());
                        ctx.note(
                            "decided",
                            match decision {
                                Decision::Commit => 1,
                                Decision::Abort => 0,
                            },
                        );
                    }
                }
                Action::Note(label, detail) => {
                    self.outcome.history.push((ctx.now(), label));
                    ctx.note(label, detail);
                }
            }
        }
    }
}

impl<P: Participant> Actor<CommitMsg> for ProtocolActor<P> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CommitMsg>) {
        self.dispatch(ctx, "start", "-", |p, out| p.start(out));
    }

    fn on_message(&mut self, env: Envelope<CommitMsg>, ctx: &mut Ctx<'_, CommitMsg>) {
        let kind = ptp_simnet::Payload::kind(&env.payload);
        self.dispatch(ctx, "deliver", kind, |p, out| p.on_msg(env.src, &env.payload, out));
    }

    fn on_undeliverable(&mut self, env: Envelope<CommitMsg>, ctx: &mut Ctx<'_, CommitMsg>) {
        let kind = ptp_simnet::Payload::kind(&env.payload);
        self.dispatch(ctx, "ud", kind, |p, out| p.on_ud(env.dst, &env.payload, out));
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, CommitMsg>) {
        let Some(tag) = TimerTag::decode(tag) else { return };
        self.timers[tag.index()] = None;
        self.dispatch(ctx, "timer", tag.name(), |p, out| p.on_timer(tag, out));
    }
}

/// Result of running a commit protocol through one scenario.
#[derive(Debug)]
pub struct ProtocolRun {
    /// Per-site outcomes (index = site id).
    pub outcomes: Vec<SiteOutcome>,
    /// Full network trace.
    pub trace: Trace,
    /// Simulator report.
    pub report: RunReport,
}

/// A reusable protocol-execution harness: build once, run many scenarios.
///
/// ```
/// use ptp_protocols::clusters::huang_li_3pc_cluster_any;
/// use ptp_protocols::options::RunOptions;
/// use ptp_protocols::runner::ClusterRunner;
/// use ptp_protocols::termination::TerminationVariant;
/// use ptp_protocols::api::Vote;
/// use ptp_protocols::Verdict;
/// use ptp_simnet::{DelayModel, NetConfig, SimTime, SiteId};
///
/// let cluster = huang_li_3pc_cluster_any(3, &[Vote::Yes; 2], TerminationVariant::Transient);
/// let mut runner = ClusterRunner::new(cluster);
/// for at in [0u64, 1500, 2500, 4500] {
///     runner.reset(&[Vote::Yes; 2]);
///     let groups = runner.partition_mut().reset_single(SimTime(at), None, 2);
///     groups[0].extend([SiteId(0), SiteId(1)]);
///     groups[1].push(SiteId(2));
///     let run = runner.run(NetConfig::default(), &DelayModel::Fixed(900), &RunOptions::new());
///     assert!(Verdict::judge(&run.outcomes).is_resilient());
/// }
/// ```
pub struct ClusterRunner<P: Participant> {
    actors: Vec<ProtocolActor<P>>,
    /// Recycled simulator buffers; `None` only transiently while a run is in
    /// flight.
    scratch: Option<SimScratch<CommitMsg>>,
    /// The previous run's outcomes, swapped out of the actors so both
    /// buffers (and their history capacity) ping-pong between runs.
    outcomes: Vec<SiteOutcome>,
}

impl<P: Participant> ClusterRunner<P> {
    /// Builds the harness around a participant vector (site `i` =
    /// `participants[i]`, site 0 the master).
    pub fn new(participants: Vec<P>) -> Self {
        let n = participants.len();
        assert!(n >= 2, "a cluster needs a master and at least one slave");
        let all_sites: Arc<[SiteId]> = (0..n as u16).map(SiteId).collect();
        ClusterRunner {
            actors: participants
                .into_iter()
                .map(|p| ProtocolActor::new(p, all_sites.clone()))
                .collect(),
            scratch: Some(SimScratch::new()),
            outcomes: vec![SiteOutcome::default(); n],
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.actors.len()
    }

    /// The participants, in site order.
    pub fn participants(&self) -> impl Iterator<Item = &P> {
        self.actors.iter().map(|a| &a.inner)
    }

    /// Mutable access to the participants (for custom re-initialisation
    /// between runs; most callers want [`ClusterRunner::reset`]).
    pub fn participants_mut(&mut self) -> impl Iterator<Item = &mut P> {
        self.actors.iter_mut().map(|a| &mut a.inner)
    }

    /// Resets every participant for a fresh run: the master (site 0) and one
    /// vote per slave, matching the cluster constructors' convention.
    pub fn reset(&mut self, votes: &[Vote]) {
        assert_eq!(votes.len() + 1, self.actors.len(), "one vote per slave");
        for (i, actor) in self.actors.iter_mut().enumerate() {
            actor.inner.reset(if i == 0 { Vote::Yes } else { votes[i - 1] });
        }
    }

    /// The partition engine the next run will use. Reconfigure it in place
    /// ([`PartitionEngine::clear`], [`PartitionEngine::reset_single`], or
    /// [`PartitionEngine::reset_schedule`] + episode writes for
    /// multi-episode schedules) to reuse its group buffers across runs.
    pub fn partition_mut(&mut self) -> &mut PartitionEngine {
        &mut self.scratch.as_mut().expect("scratch present between runs").partition
    }

    /// Replaces the partition engine wholesale.
    pub fn set_partition(&mut self, engine: PartitionEngine) {
        *self.partition_mut() = engine;
    }

    /// The outcomes of the most recent run (empty defaults before any run).
    pub fn last_outcomes(&self) -> &[SiteOutcome] {
        &self.outcomes
    }

    /// Switches event-attribution profiling on or off for subsequent runs.
    ///
    /// While on, every actor's [`ProfSink`] records across runs (profiles
    /// are *not* cleared between scenarios) until drained by
    /// [`ClusterRunner::take_profile`].
    pub fn set_profiling(&mut self, on: bool) {
        for actor in &mut self.actors {
            actor.prof = if on { ProfSink::recording() } else { ProfSink::Null };
        }
    }

    /// Drains and merges every actor's accumulated profile. Profiling stays
    /// on (with fresh, empty sinks) if it was on.
    pub fn take_profile(&mut self) -> Profile {
        let mut merged = Profile::default();
        for actor in &mut self.actors {
            let was_recording = actor.prof.is_recording();
            let sink = std::mem::take(&mut actor.prof);
            merged.merge(&sink.into_profile());
            if was_recording {
                actor.prof = ProfSink::recording();
            }
        }
        merged
    }

    /// Runs the cluster once with everything explicit, returning the
    /// outcomes by reference — the zero-copy path the sweep engine uses.
    ///
    /// The caller is responsible for having [`ClusterRunner::reset`] the
    /// participants and configured [`ClusterRunner::partition_mut`]; any
    /// horizon override must already be folded into `config` (see
    /// [`RunOptions::apply_horizon`]).
    pub fn run_borrowed(
        &mut self,
        config: NetConfig,
        delay: &DelayModel,
        trace: TraceMode,
        failures: &[FailureSpec],
    ) -> (&[SiteOutcome], Trace, RunReport) {
        self.run_borrowed_faulty(config, delay, trace, failures, &[], &[])
    }

    /// [`ClusterRunner::run_borrowed`] plus envelope faults and degrade
    /// windows — the full fault surface a compiled scenario timeline
    /// carries. Empty slices keep the behaviour (and the hot path)
    /// identical to `run_borrowed`.
    pub fn run_borrowed_faulty(
        &mut self,
        config: NetConfig,
        delay: &DelayModel,
        trace: TraceMode,
        failures: &[FailureSpec],
        env_faults: &[EnvelopeFault],
        degrades: &[DegradeWindow],
    ) -> (&[SiteOutcome], Trace, RunReport) {
        for actor in &mut self.actors {
            actor.begin_run();
        }
        let actors = std::mem::take(&mut self.actors);
        let scratch = self.scratch.take().expect("scratch present between runs");
        let mut sim =
            Simulation::with_scratch(config, actors, delay, failures, trace.sink(), scratch);
        if !env_faults.is_empty() {
            sim.set_envelope_faults(env_faults);
        }
        if !degrades.is_empty() {
            sim.set_degrades(degrades);
        }
        let (actors, trace, report, scratch) = sim.run_recycling();
        self.actors = actors;
        self.scratch = Some(scratch);
        for (slot, actor) in self.outcomes.iter_mut().zip(&mut self.actors) {
            std::mem::swap(slot, &mut actor.outcome);
        }
        (&self.outcomes, trace, report)
    }

    /// Runs the cluster once under typed [`RunOptions`], returning owned
    /// outcomes.
    pub fn run(
        &mut self,
        config: NetConfig,
        delay: &DelayModel,
        options: &RunOptions,
    ) -> ProtocolRun {
        let config = options.apply_horizon(config);
        let (outcomes, trace, report) = self.run_borrowed_faulty(
            config,
            delay,
            options.trace,
            &options.failures,
            &options.env_faults,
            &options.degrades,
        );
        ProtocolRun { outcomes: outcomes.to_vec(), trace, report }
    }
}

/// One-shot execution of `participants` (site `i` = `participants[i]`,
/// site 0 the master) with typed [`RunOptions`].
///
/// Builds a [`ClusterRunner`], runs it once and discards it; workloads that
/// run many scenarios should keep a runner (or a `ptp_core::Session`)
/// instead.
pub fn run_protocol_opts<P: Participant>(
    participants: Vec<P>,
    config: NetConfig,
    partition: PartitionEngine,
    delay: &DelayModel,
    options: &RunOptions,
) -> ProtocolRun {
    let mut runner = ClusterRunner::new(participants);
    runner.set_partition(partition);
    runner.run(config, delay, options)
}

/// Runs `participants` under the given network conditions, recording a full
/// trace (the timing experiments measure over it). Equivalent to
/// [`run_protocol_opts`] with [`RunOptions::recording`] plus `failures`.
pub fn run_protocol<P: Participant>(
    participants: Vec<P>,
    config: NetConfig,
    partition: PartitionEngine,
    delay: &DelayModel,
    failures: Vec<FailureSpec>,
) -> ProtocolRun {
    run_protocol_opts(
        participants,
        config,
        partition,
        delay,
        &RunOptions::recording().failures(failures),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Vote;
    use crate::interp::FsaParticipant;
    use crate::outcome::Verdict;
    use ptp_model::protocols::two_phase;
    use ptp_simnet::{PartitionSpec, SimTime};

    fn two_pc_parts(votes: &[Vote]) -> Vec<FsaParticipant> {
        let spec = Arc::new(two_phase(votes.len() + 1));
        (0..spec.n())
            .map(|site| {
                let vote = if site == 0 { Vote::Yes } else { votes[site - 1] };
                FsaParticipant::new(spec.clone(), site, vote, None)
            })
            .collect()
    }

    fn run_2pc(votes: &[Vote]) -> ProtocolRun {
        run_protocol(
            two_pc_parts(votes),
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(300),
            vec![],
        )
    }

    #[test]
    fn failure_free_2pc_commits_on_unanimous_yes() {
        let run = run_2pc(&[Vote::Yes, Vote::Yes]);
        assert_eq!(Verdict::judge(&run.outcomes), Verdict::AllCommit);
    }

    #[test]
    fn failure_free_2pc_aborts_on_any_no() {
        let run = run_2pc(&[Vote::Yes, Vote::No]);
        assert_eq!(Verdict::judge(&run.outcomes), Verdict::AllAbort);
    }

    #[test]
    fn decision_timestamps_recorded() {
        let run = run_2pc(&[Vote::Yes, Vote::Yes]);
        for o in &run.outcomes {
            assert!(o.decided_at.is_some());
        }
        // Master decides before the slaves receive the commit message.
        assert!(run.outcomes[0].decided_at <= run.outcomes[1].decided_at);
    }

    #[test]
    fn boxed_participants_still_run() {
        let boxed: Vec<Box<dyn Participant>> = two_pc_parts(&[Vote::Yes, Vote::Yes])
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Participant>)
            .collect();
        let run = run_protocol(
            boxed,
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(300),
            vec![],
        );
        assert_eq!(Verdict::judge(&run.outcomes), Verdict::AllCommit);
    }

    #[test]
    fn reused_runner_matches_one_shot_runs() {
        // The tentpole guarantee at this layer: a runner reused across runs
        // (with participant resets in between) is indistinguishable from
        // fresh one-shot executions — outcomes, trace and report.
        let mut runner = ClusterRunner::new(two_pc_parts(&[Vote::Yes, Vote::Yes]));
        let votes_grid = [[Vote::Yes, Vote::Yes], [Vote::No, Vote::Yes], [Vote::Yes, Vote::Yes]];
        for votes in votes_grid {
            runner.reset(&votes);
            runner.partition_mut().clear();
            let reused =
                runner.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::recording());
            let fresh = run_2pc(&votes);
            assert_eq!(reused.outcomes, fresh.outcomes);
            assert_eq!(reused.trace.events(), fresh.trace.events());
            assert_eq!(reused.report.events, fresh.report.events);
            assert_eq!(reused.report.counters, fresh.report.counters);
        }
    }

    #[test]
    fn runner_partition_buffers_are_reused() {
        let mut runner = ClusterRunner::new(two_pc_parts(&[Vote::Yes, Vote::Yes]));
        for at in [500u64, 1500] {
            runner.reset(&[Vote::Yes, Vote::Yes]);
            let groups = runner.partition_mut().reset_single(SimTime(at), None, 2);
            groups[0].extend([SiteId(0), SiteId(1)]);
            groups[1].push(SiteId(2));
            let run = runner.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::new());
            assert!(run.trace.is_empty(), "counters mode records no trace");
            // Plain 2PC under partition: never inconsistent.
            assert!(Verdict::judge(&run.outcomes).is_atomic());
        }
    }

    #[test]
    fn runner_replays_multi_episode_schedules_in_place() {
        // Split → heal → re-split replayed through one reused runner: the
        // schedule write path must recycle buffers run after run and match
        // a fresh engine built by PartitionEngine::new.
        let mut runner = ClusterRunner::new(two_pc_parts(&[Vote::Yes, Vote::Yes]));
        for round in 0..3u64 {
            let at = 500 + round * 250;
            runner.reset(&[Vote::Yes, Vote::Yes]);
            let engine = runner.partition_mut();
            engine.reset_schedule(2);
            let g = engine.episode_groups(0, SimTime(at), Some(SimTime(at + 2000)), 2);
            g[0].extend([SiteId(0), SiteId(1)]);
            g[1].push(SiteId(2));
            let g = engine.episode_groups(1, SimTime(at + 4000), None, 2);
            g[0].extend([SiteId(0), SiteId(1)]);
            g[1].push(SiteId(2));
            let expected = PartitionEngine::new(vec![
                PartitionSpec::transient(
                    SimTime(at),
                    vec![SiteId(0), SiteId(1)],
                    vec![SiteId(2)],
                    SimTime(at + 2000),
                ),
                PartitionSpec::simple(
                    SimTime(at + 4000),
                    vec![SiteId(0), SiteId(1)],
                    vec![SiteId(2)],
                ),
            ]);
            assert_eq!(runner.partition_mut().episodes(), expected.episodes());

            let reused =
                runner.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::new());
            let fresh = run_protocol_opts(
                two_pc_parts(&[Vote::Yes, Vote::Yes]),
                NetConfig::default(),
                expected,
                &DelayModel::Fixed(300),
                &RunOptions::new(),
            );
            assert_eq!(reused.outcomes, fresh.outcomes, "round {round}");
            assert_eq!(reused.report.counters, fresh.report.counters, "round {round}");
            // 2PC across any partition schedule: atomic (it may block, it
            // never lies).
            assert!(Verdict::judge(&reused.outcomes).is_atomic());
        }
    }

    #[test]
    fn profiling_attributes_events_and_leaves_outcomes_alone() {
        let mut base = ClusterRunner::new(two_pc_parts(&[Vote::Yes, Vote::Yes]));
        base.reset(&[Vote::Yes, Vote::Yes]);
        base.partition_mut().clear();
        let plain = base.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::new());

        let mut prof = ClusterRunner::new(two_pc_parts(&[Vote::Yes, Vote::Yes]));
        prof.set_profiling(true);
        prof.reset(&[Vote::Yes, Vote::Yes]);
        prof.partition_mut().clear();
        let profiled = prof.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::new());
        assert_eq!(plain.outcomes, profiled.outcomes, "profiling must not perturb the run");

        let profile = prof.take_profile();
        assert!(!profile.is_empty());
        // Every network delivery the report counted is attributed.
        let delivers: u64 =
            profile.entries().filter(|(k, _)| k.event == "deliver").map(|(_, e)| e.count).sum();
        assert_eq!(delivers, profiled.report.counters.delivered);
        // Kinds come from the payload tags; phases from state names.
        assert!(profile.by_kind().iter().any(|(k, _)| *k == "yes"));
        assert!(profile.entries().all(|(k, _)| !k.phase.is_empty()));

        // take_profile drains but keeps recording; a second run refills it.
        assert!(prof.take_profile().is_empty());
        prof.reset(&[Vote::Yes, Vote::Yes]);
        prof.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::new());
        assert!(!prof.take_profile().is_empty());

        // Turning profiling off leaves the null sink in place.
        prof.set_profiling(false);
        prof.reset(&[Vote::Yes, Vote::Yes]);
        prof.run(NetConfig::default(), &DelayModel::Fixed(300), &RunOptions::new());
        assert!(prof.take_profile().is_empty());
    }

    #[test]
    fn options_horizon_cuts_the_run_short() {
        // A partitioned bare 2PC quiesces late; a 1T horizon must stop it.
        let parts = two_pc_parts(&[Vote::Yes, Vote::Yes]);
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(0),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )]);
        let run = run_protocol_opts(
            parts,
            NetConfig::default(),
            partition,
            &DelayModel::Fixed(1000),
            &RunOptions::new().horizon_t(1),
        );
        assert!(run.report.ended_at <= SimTime(1000));
    }
}
