//! The paper's termination protocol (Secs. 5 and 6), implemented as the
//! generic master–slave engine of Theorem 10 and instantiated for the
//! modified three-phase commit (the paper's protocol) and a four-phase
//! variant.
//!
//! # The protocol (Sec. 5.3)
//!
//! The commit protocol runs in rounds: the master broadcasts a request and
//! collects one reply from every slave. One round's request is the
//! *decisive message* `m` (3PC: `prepare`) — the message that moves slaves
//! from noncommittable to committable states. After the last round the
//! master broadcasts `commit`.
//!
//! Termination behaviour, exactly as specified in Sec. 5.3 (state names in
//! brackets are the 3PC instance):
//!
//! **Master**
//! * `[w1]` pre-decisive round — timeout or UD(xact): broadcast abort.
//! * `[p1]` decisive round — timeout with no undeliverable prepare:
//!   broadcast commit (every slave received `m`, so partition G2 will
//!   commit itself).
//! * `[p1]` on UD(prepare_i): start a 5T collection window; accumulate the
//!   set `UD` of slaves whose prepare bounced and the set `PB` of slaves
//!   that probed. At expiry: if `slaves − UD = PB`, no prepare crossed the
//!   boundary — broadcast abort; otherwise broadcast commit.
//!   (The paper writes `N − UD = PB` with `N = {1..n}` including the
//!   master, but `PB` can only contain slaves, so we implement the evident
//!   intent over the slave set; see ARCHITECTURE.md.)
//! * post-decisive rounds (4PC's `r1`) — timeout or UD: broadcast commit.
//!
//! **Slave**
//! * `[w]` timeout: wait 6T for a commit or abort; on expiry abort (Fig. 7).
//! * `[w]` UD(yes): broadcast abort, abort.
//! * `[p]` timeout: probe the master, then wait. UD(probe) → broadcast
//!   commit (we are in G2 and hold `m`); a commit → commit; an abort →
//!   abort. In the transient-partitioning variant (Sec. 6) also start a 5T
//!   timer and commit on expiry (case 3.2.2.2 is the only case that can
//!   exceed 5T, and there the decision is necessarily commit).
//! * `[p]` UD(ack): broadcast commit, commit.
//! * Fig. 8 modification: a commit is accepted in `w` too (a peer's
//!   broadcast may arrive before this slave ever times out).

use crate::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use crate::timing::{
    MASTER_COLLECT_T, MASTER_PROTO_T, SLAVE_PROTO_T, SLAVE_P_WAIT_T, SLAVE_W_WAIT_T,
};
use ptp_model::Decision;
use ptp_simnet::SiteId;

/// One request/reply round of a master–slave commit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// The master's broadcast for this round.
    pub request: &'static str,
    /// The slaves' reply.
    pub reply: &'static str,
}

/// A master–slave commit protocol shape: the rounds, and which round's
/// request is the decisive message `m` of Theorem 10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePlan {
    /// Protocol name for traces.
    pub name: &'static str,
    /// The request/reply rounds, in order. After the last round's replies
    /// the master broadcasts `commit`.
    pub rounds: Vec<Round>,
    /// Index of the decisive round (must not be the vote round 0).
    pub decisive: usize,
}

impl PhasePlan {
    /// The modified three-phase commit protocol (Figs. 3 and 8): rounds
    /// `xact/yes`, `prepare/ack`; `prepare` is decisive.
    pub fn three_phase() -> PhasePlan {
        PhasePlan {
            name: "M3PC",
            rounds: vec![
                Round { request: "xact", reply: "yes" },
                Round { request: "prepare", reply: "ack" },
            ],
            decisive: 1,
        }
    }

    /// A four-phase protocol (Theorem 10 exercise): rounds `xact/yes`,
    /// `prepare/ack`, `ready/ack2`; `prepare` is decisive.
    pub fn four_phase() -> PhasePlan {
        PhasePlan {
            name: "4PC",
            rounds: vec![
                Round { request: "xact", reply: "yes" },
                Round { request: "prepare", reply: "ack" },
                Round { request: "ready", reply: "ack2" },
            ],
            decisive: 1,
        }
    }

    fn validate(&self) {
        assert!(self.rounds.len() >= 2, "need a vote round and a decisive round");
        assert!(
            (1..self.rounds.len()).contains(&self.decisive),
            "decisive round must come after the vote round"
        );
    }

    fn round_of_request(&self, kind: &str) -> Option<usize> {
        self.rounds.iter().position(|r| r.request == kind)
    }

    fn round_of_reply(&self, kind: &str) -> Option<usize> {
        self.rounds.iter().position(|r| r.reply == kind)
    }
}

/// The protocol's timer constants in units of `T`. Defaults to the paper's
/// values (Figs. 5–7, 9); the ablation experiments shrink individual
/// constants to demonstrate each bound is necessary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolTiming {
    /// Master commit-protocol timeout (paper: 2T).
    pub master_proto: u64,
    /// Slave commit-protocol timeout (paper: 3T).
    pub slave_proto: u64,
    /// Master probe-collection window (paper: 5T).
    pub collect: u64,
    /// Slave wait after timing out in `w` (paper: 6T).
    pub w_wait: u64,
    /// Slave wait after timing out in `p`, transient variant (paper: 5T).
    pub p_wait: u64,
}

impl Default for ProtocolTiming {
    fn default() -> Self {
        ProtocolTiming {
            master_proto: MASTER_PROTO_T,
            slave_proto: SLAVE_PROTO_T,
            collect: MASTER_COLLECT_T,
            w_wait: SLAVE_W_WAIT_T,
            p_wait: SLAVE_P_WAIT_T,
        }
    }
}

/// Whether the slave runs the Sec. 5 protocol (assumes the partition lasts)
/// or the Sec. 6 variant that also survives transient partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TerminationVariant {
    /// Sec. 5: after probing, wait indefinitely for UD(probe)/commit/abort.
    Static,
    /// Sec. 6: additionally commit 5T after timing out in `p` (only case
    /// 3.2.2.2 waits that long, and its outcome is necessarily commit).
    #[default]
    Transient,
}

// ---------------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum MState {
    /// Sent `rounds[k].request`, collecting replies.
    Round(usize),
    /// Sec. 5.3 collection window after UD(prepare).
    Collecting,
    Done(Decision),
}

/// A set of slave ids as a bitmask with a maintained cardinality.
///
/// The master's three sets (`replies`, `UD`, `PB`) sat on the sweep hot
/// path as `BTreeSet<u16>`s — every `insert` a tree walk, every round a
/// `clear`, and the Sec. 5.3 collection decision allocated two fresh sets
/// per run. A bitmask makes all of that branch-free integer arithmetic;
/// [`TerminationMaster::with_timing`] caps clusters at 64 sites to match.
/// Set semantics are preserved exactly (duplicate inserts don't change the
/// cardinality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SlaveSet {
    bits: u64,
    len: u32,
}

impl SlaveSet {
    fn insert(&mut self, site: u16) {
        let bit = 1u64 << site;
        if self.bits & bit == 0 {
            self.bits |= bit;
            self.len += 1;
        }
    }

    fn len(&self) -> usize {
        self.len as usize
    }

    fn clear(&mut self) {
        self.bits = 0;
        self.len = 0;
    }
}

/// The termination-protocol master (the paper's site 1).
pub struct TerminationMaster {
    plan: PhasePlan,
    n: usize,
    timing: ProtocolTiming,
    state: MState,
    replies: SlaveSet,
    /// Slaves whose decisive message bounced (the paper's `UD`).
    ud: SlaveSet,
    /// Slaves that probed (the paper's `PB`).
    pb: SlaveSet,
    /// All slave ids — precomputed once; `N` in the Sec. 5.3 rule.
    slaves_bits: u64,
    decided: Option<Decision>,
}

impl TerminationMaster {
    /// Master for a cluster of `n` sites (including itself, site 0).
    pub fn new(plan: PhasePlan, n: usize) -> Self {
        Self::with_timing(plan, n, ProtocolTiming::default())
    }

    /// Master with non-default timer constants (ablation experiments).
    pub fn with_timing(plan: PhasePlan, n: usize, timing: ProtocolTiming) -> Self {
        plan.validate();
        assert!(n >= 2);
        assert!(n <= 64, "slave bookkeeping is a 64-bit mask");
        TerminationMaster {
            plan,
            n,
            timing,
            state: MState::Round(0),
            replies: SlaveSet::default(),
            ud: SlaveSet::default(),
            pb: SlaveSet::default(),
            // Bits 1..n — site 0 is the master itself.
            slaves_bits: (u64::MAX >> (64 - n)) & !1,
            decided: None,
        }
    }

    fn decide(&mut self, d: Decision, broadcast: bool, out: &mut Vec<Action>) {
        self.state = MState::Done(d);
        self.decided = Some(d);
        out.push(Action::CancelTimer { tag: TimerTag::Proto });
        out.push(Action::CancelTimer { tag: TimerTag::Collect });
        if broadcast {
            out.push(Action::Broadcast {
                msg: CommitMsg::Kind(match d {
                    Decision::Commit => "commit",
                    Decision::Abort => "abort",
                }),
            });
        }
        out.push(Action::Decide(d));
    }

    fn begin_round(&mut self, k: usize, out: &mut Vec<Action>) {
        self.state = MState::Round(k);
        self.replies.clear();
        out.push(Action::Note("master-round", k as u64));
        out.push(Action::Broadcast { msg: CommitMsg::Kind(self.plan.rounds[k].request) });
        out.push(Action::SetTimer { t_units: self.timing.master_proto, tag: TimerTag::Proto });
    }
}

impl Participant for TerminationMaster {
    fn start(&mut self, out: &mut Vec<Action>) {
        self.begin_round(0, out);
    }

    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        match (&self.state, msg) {
            (MState::Done(_), _) => {}
            (MState::Round(0), CommitMsg::Kind("no")) => {
                // A unilateral no-vote: abort everyone (Fig. 1's second
                // phase; the no-voter already knows).
                out.push(Action::Note("master-got-no", from.0 as u64));
                self.decide(Decision::Abort, true, out);
            }
            (MState::Round(k), CommitMsg::Kind(kind))
                if self.plan.round_of_reply(kind) == Some(*k) =>
            {
                self.replies.insert(from.0);
                if self.replies.len() == self.n - 1 {
                    if *k + 1 < self.plan.rounds.len() {
                        let next = *k + 1;
                        self.begin_round(next, out);
                    } else {
                        // All rounds complete: commit.
                        self.decide(Decision::Commit, true, out);
                    }
                }
            }
            (MState::Collecting, CommitMsg::Probe { slave }) => {
                // PB := PB + {j}.
                self.pb.insert(*slave);
                out.push(Action::Note("master-probe", *slave as u64));
            }
            (_, CommitMsg::Probe { slave }) => {
                // A probe outside the collection window: the prober either
                // already received our decision broadcast or is about to.
                out.push(Action::Note("master-stray-probe", *slave as u64));
            }
            // Peer decisions and stale replies: the master's own timers
            // subsume them (see module docs); note and ignore.
            (_, CommitMsg::Kind(k)) => {
                let _ = k;
            }
            _ => {}
        }
    }

    fn on_ud(&mut self, original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        let CommitMsg::Kind(kind) = msg else { return };
        let Some(k) = self.plan.round_of_request(kind) else {
            return; // UD of our commit/abort broadcast: already decided.
        };
        match &self.state {
            MState::Done(_) => {}
            MState::Round(cur) if *cur == k && k < self.plan.decisive => {
                // UD(xact_i): no slave can be committable yet — abort all.
                out.push(Action::Note("master-ud-early", original_dst.0 as u64));
                self.decide(Decision::Abort, true, out);
            }
            MState::Round(cur) if *cur == k && k == self.plan.decisive => {
                // UD(prepare_i): enter the Sec. 5.3 collection window.
                // UD := {i}; PB := Ø; reset timer 5T.
                out.push(Action::Note("master-ud-prepare", original_dst.0 as u64));
                self.ud.insert(original_dst.0);
                self.pb.clear();
                self.state = MState::Collecting;
                out.push(Action::CancelTimer { tag: TimerTag::Proto });
                out.push(Action::SetTimer { t_units: self.timing.collect, tag: TimerTag::Collect });
            }
            MState::Round(cur) if *cur == k => {
                // UD of a post-decisive request (4PC's ready): everyone is
                // committable — commit all.
                out.push(Action::Note("master-ud-late", original_dst.0 as u64));
                self.decide(Decision::Commit, true, out);
            }
            MState::Collecting if k == self.plan.decisive => {
                // Another UD(prepare_j): UD := UD + {j}.
                out.push(Action::Note("master-ud-prepare", original_dst.0 as u64));
                self.ud.insert(original_dst.0);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        match (&self.state, tag) {
            (MState::Round(k), TimerTag::Proto) => {
                if *k < self.plan.decisive {
                    // w1 timeout: send abort_1-n.
                    out.push(Action::Note("master-timeout-early", *k as u64));
                    self.decide(Decision::Abort, true, out);
                } else {
                    // p1 (or later) timeout with no undeliverable prepare:
                    // send commit_1-n.
                    out.push(Action::Note("master-timeout-late", *k as u64));
                    self.decide(Decision::Commit, true, out);
                }
            }
            (MState::Collecting, TimerTag::Collect) => {
                // if (N − UD = PB) then abort_1-n else commit_1-n.
                let no_prepare_crossed = self.slaves_bits & !self.ud.bits == self.pb.bits;
                out.push(Action::Note("master-collect-decision", u64::from(!no_prepare_crossed)));
                if no_prepare_crossed {
                    self.decide(Decision::Abort, true, out);
                } else {
                    self.decide(Decision::Commit, true, out);
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<Decision> {
        self.decided
    }

    fn state_name(&self) -> &'static str {
        match &self.state {
            MState::Round(0) => "w1",
            MState::Round(_) => "p1",
            MState::Collecting => "p1-collecting",
            MState::Done(Decision::Commit) => "c1",
            MState::Done(Decision::Abort) => "a1",
        }
    }

    fn reset(&mut self, _vote: Vote) {
        // The master has no vote; its plan, size and timing are fixed.
        self.state = MState::Round(0);
        self.replies.clear();
        self.ud.clear();
        self.pb.clear();
        self.decided = None;
    }
}

// ---------------------------------------------------------------------------
// Slave
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    /// Waiting for `rounds[k].request` (k = 0 is `q`; 1..=decisive is `w`;
    /// beyond decisive is `p`) or, after the last round, for `commit`.
    Await(usize),
    /// Timed out pre-decisive: 6T window for a commit/abort (Fig. 7).
    WWaiting,
    /// Timed out at/after decisive: probe sent, waiting for UD(probe),
    /// commit, or abort (Fig. 9).
    Probing,
    Done(Decision),
}

/// The termination-protocol slave (the paper's sites 2..n).
pub struct TerminationSlave {
    plan: PhasePlan,
    me: u16,
    vote: Vote,
    variant: TerminationVariant,
    timing: ProtocolTiming,
    state: SState,
    decided: Option<Decision>,
}

impl TerminationSlave {
    /// Slave `me` (1-based site id within the cluster).
    pub fn new(plan: PhasePlan, me: SiteId, vote: Vote, variant: TerminationVariant) -> Self {
        Self::with_timing(plan, me, vote, variant, ProtocolTiming::default())
    }

    /// Slave with non-default timer constants (ablation experiments).
    pub fn with_timing(
        plan: PhasePlan,
        me: SiteId,
        vote: Vote,
        variant: TerminationVariant,
        timing: ProtocolTiming,
    ) -> Self {
        plan.validate();
        assert!(me.0 >= 1, "site 0 is the master");
        TerminationSlave {
            plan,
            me: me.0,
            vote,
            variant,
            timing,
            state: SState::Await(0),
            decided: None,
        }
    }

    fn decide(&mut self, d: Decision, out: &mut Vec<Action>) {
        self.state = SState::Done(d);
        self.decided = Some(d);
        for tag in [TimerTag::Proto, TimerTag::WWait, TimerTag::PWait] {
            out.push(Action::CancelTimer { tag });
        }
        out.push(Action::Decide(d));
    }

    /// Received `m` (or later): this slave is committable. Exposed for
    /// tests and the ddb integration's lock-release policy.
    pub fn holds_decisive(&self) -> bool {
        match self.state {
            SState::Await(k) => k > self.plan.decisive,
            SState::Probing => true,
            _ => false,
        }
    }
}

impl Participant for TerminationSlave {
    fn start(&mut self, out: &mut Vec<Action>) {
        out.push(Action::SetTimer { t_units: self.timing.slave_proto, tag: TimerTag::Proto });
    }

    fn on_msg(&mut self, _from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        let CommitMsg::Kind(kind) = msg else { return };
        if matches!(self.state, SState::Done(_)) {
            return;
        }
        match *kind {
            "commit" => {
                // Accepted in every waiting state: the base transition in p,
                // the Fig. 8 modification in w, and the termination waits.
                if matches!(self.state, SState::Await(0)) {
                    out.push(Action::Note("slave-unexpected-commit", self.me as u64));
                }
                self.decide(Decision::Commit, out);
            }
            "abort" => {
                self.decide(Decision::Abort, out);
            }
            req => {
                let Some(k) = self.plan.round_of_request(req) else { return };
                let SState::Await(cur) = self.state else {
                    // A request while in a termination wait: stale (see the
                    // module docs timing argument); ignore.
                    out.push(Action::Note("slave-stale-request", k as u64));
                    return;
                };
                if k != cur {
                    return; // duplicate or out-of-order request
                }
                if k == 0 && self.vote == Vote::No {
                    // Unilateral abort: tell the master, decide locally.
                    out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("no") });
                    self.decide(Decision::Abort, out);
                    return;
                }
                out.push(Action::Send {
                    to: SiteId(0),
                    msg: CommitMsg::Kind(self.plan.rounds[k].reply),
                });
                out.push(Action::Note("slave-round", (k + 1) as u64));
                self.state = SState::Await(k + 1);
                out.push(Action::SetTimer {
                    t_units: self.timing.slave_proto,
                    tag: TimerTag::Proto,
                });
            }
        }
    }

    fn on_ud(&mut self, _original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        if matches!(self.state, SState::Done(_)) {
            return;
        }
        match msg {
            CommitMsg::Probe { .. } => {
                // UD(probe): we are in G2 and hold m — commit everyone in
                // our partition (Sec. 5.2 idea 6).
                if matches!(self.state, SState::Probing) {
                    out.push(Action::Note("slave-ud-probe", self.me as u64));
                    out.push(Action::Broadcast { msg: CommitMsg::Kind("commit") });
                    self.decide(Decision::Commit, out);
                }
            }
            CommitMsg::Kind(kind) => {
                if let Some(k) = self.plan.round_of_reply(kind) {
                    if k < self.plan.decisive {
                        // UD(yes_i): send abort_1-n.
                        out.push(Action::Note("slave-ud-vote", self.me as u64));
                        out.push(Action::Broadcast { msg: CommitMsg::Kind("abort") });
                        self.decide(Decision::Abort, out);
                    } else {
                        // UD(ack_i) (or a later reply): send commit_1-n.
                        out.push(Action::Note("slave-ud-ack", self.me as u64));
                        out.push(Action::Broadcast { msg: CommitMsg::Kind("commit") });
                        self.decide(Decision::Commit, out);
                    }
                }
                // UD of our own commit/abort broadcast: ignore.
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        match (self.state, tag) {
            (SState::Await(0), TimerTag::Proto) => {
                // Never received the transaction: nothing voted, abort
                // unilaterally.
                out.push(Action::Note("slave-timeout-q", self.me as u64));
                self.decide(Decision::Abort, out);
            }
            (SState::Await(k), TimerTag::Proto) if k <= self.plan.decisive => {
                // w_i timeout: reset timer 6T and wait for a commit/abort.
                out.push(Action::Note("slave-timeout-w", self.me as u64));
                self.state = SState::WWaiting;
                out.push(Action::SetTimer { t_units: self.timing.w_wait, tag: TimerTag::WWait });
            }
            (SState::Await(_), TimerTag::Proto) => {
                // p_i timeout: probe the master.
                out.push(Action::Note("slave-timeout-p", self.me as u64));
                self.state = SState::Probing;
                out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Probe { slave: self.me } });
                if self.variant == TerminationVariant::Transient {
                    out.push(Action::SetTimer {
                        t_units: self.timing.p_wait,
                        tag: TimerTag::PWait,
                    });
                }
            }
            (SState::WWaiting, TimerTag::WWait) => {
                // 6T expired without a decision: abort (Fig. 7's bound says
                // any commit would have arrived by now).
                out.push(Action::Note("slave-wwait-abort", self.me as u64));
                self.decide(Decision::Abort, out);
            }
            (SState::Probing, TimerTag::PWait) if self.variant == TerminationVariant::Transient => {
                // Sec. 6: only case 3.2.2.2 exceeds 5T, and there every
                // prepare crossed — commit.
                out.push(Action::Note("slave-pwait-commit", self.me as u64));
                self.decide(Decision::Commit, out);
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<Decision> {
        self.decided
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            SState::Await(0) => "q",
            SState::Await(k) if k <= self.plan.decisive => "w",
            SState::Await(_) => "p",
            SState::WWaiting => "w-waiting",
            SState::Probing => "probing",
            SState::Done(Decision::Commit) => "c",
            SState::Done(Decision::Abort) => "a",
        }
    }

    fn reset(&mut self, vote: Vote) {
        self.vote = vote;
        self.state = SState::Await(0);
        self.decided = None;
    }
}

/// Builds a full boxed cluster (master + `n - 1` slaves) running the
/// termination protocol over `plan`. See
/// [`crate::clusters::termination_cluster_any`] for the enum-dispatched
/// form.
pub fn termination_cluster(
    plan: &PhasePlan,
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<Box<dyn Participant>> {
    use crate::dispatch::AnyParticipant;
    crate::clusters::termination_cluster_any(plan, n, votes, variant)
        .into_iter()
        .map(AnyParticipant::boxed)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts_contain_broadcast(out: &[Action], kind: &str) -> bool {
        out.iter().any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::Kind(k) } if *k == kind))
    }

    #[test]
    fn master_happy_path_3pc() {
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        assert!(acts_contain_broadcast(&out, "xact"));
        assert_eq!(m.state_name(), "w1");

        out.clear();
        m.on_msg(SiteId(1), &CommitMsg::Kind("yes"), &mut out);
        assert!(out.is_empty() || !acts_contain_broadcast(&out, "prepare"));
        m.on_msg(SiteId(2), &CommitMsg::Kind("yes"), &mut out);
        assert!(acts_contain_broadcast(&out, "prepare"));
        assert_eq!(m.state_name(), "p1");

        out.clear();
        m.on_msg(SiteId(1), &CommitMsg::Kind("ack"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("ack"), &mut out);
        assert!(acts_contain_broadcast(&out, "commit"));
        assert_eq!(m.decision(), Some(Decision::Commit));
    }

    #[test]
    fn master_aborts_on_no() {
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        out.clear();
        m.on_msg(SiteId(2), &CommitMsg::Kind("no"), &mut out);
        assert!(acts_contain_broadcast(&out, "abort"));
        assert_eq!(m.decision(), Some(Decision::Abort));
    }

    #[test]
    fn master_w1_timeout_aborts() {
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        out.clear();
        m.on_timer(TimerTag::Proto, &mut out);
        assert!(acts_contain_broadcast(&out, "abort"));
        assert_eq!(m.decision(), Some(Decision::Abort));
    }

    #[test]
    fn master_p1_timeout_commits() {
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        m.on_msg(SiteId(1), &CommitMsg::Kind("yes"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("yes"), &mut out);
        out.clear();
        m.on_timer(TimerTag::Proto, &mut out);
        assert!(acts_contain_broadcast(&out, "commit"));
        assert_eq!(m.decision(), Some(Decision::Commit));
    }

    #[test]
    fn master_collection_aborts_when_sets_match() {
        // UD = {2}; probe from slave 1 only: slaves − UD = {1} = PB → abort.
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        m.on_msg(SiteId(1), &CommitMsg::Kind("yes"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("yes"), &mut out);
        out.clear();
        m.on_ud(SiteId(2), &CommitMsg::Kind("prepare"), &mut out);
        assert_eq!(m.state_name(), "p1-collecting");
        m.on_msg(SiteId(1), &CommitMsg::Probe { slave: 1 }, &mut out);
        out.clear();
        m.on_timer(TimerTag::Collect, &mut out);
        assert!(acts_contain_broadcast(&out, "abort"));
        assert_eq!(m.decision(), Some(Decision::Abort));
    }

    #[test]
    fn master_collection_commits_when_sets_differ() {
        // UD = {2}; no probe from slave 1 (its prepare crossed into G2 and
        // it committed): slaves − UD = {1} ≠ Ø = PB? PB empty → differ →
        // commit. Also the dual: probes from both while UD = {2} → {1} ≠
        // {1,2} → commit.
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 4);
        let mut out = Vec::new();
        m.start(&mut out);
        for s in 1..4 {
            m.on_msg(SiteId(s), &CommitMsg::Kind("yes"), &mut out);
        }
        out.clear();
        m.on_ud(SiteId(3), &CommitMsg::Kind("prepare"), &mut out);
        m.on_msg(SiteId(1), &CommitMsg::Probe { slave: 1 }, &mut out);
        // Slave 2's prepare was delivered across the boundary; it never
        // probes successfully. slaves − UD = {1,2}, PB = {1}.
        out.clear();
        m.on_timer(TimerTag::Collect, &mut out);
        assert!(acts_contain_broadcast(&out, "commit"));
    }

    #[test]
    fn master_ud_xact_aborts() {
        let mut m = TerminationMaster::new(PhasePlan::three_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        out.clear();
        m.on_ud(SiteId(1), &CommitMsg::Kind("xact"), &mut out);
        assert!(acts_contain_broadcast(&out, "abort"));
    }

    #[test]
    fn slave_happy_path_3pc() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        assert_eq!(s.state_name(), "q");
        out.clear();
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Send { to: SiteId(0), msg: CommitMsg::Kind("yes") })));
        assert_eq!(s.state_name(), "w");
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        assert_eq!(s.state_name(), "p");
        s.on_msg(SiteId(0), &CommitMsg::Kind("commit"), &mut out);
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn slave_votes_no() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(2),
            Vote::No,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        out.clear();
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Send { to: SiteId(0), msg: CommitMsg::Kind("no") })));
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn slave_w_timeout_then_6t_abort() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        assert_eq!(s.state_name(), "w-waiting");
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::SetTimer { t_units: 6, tag: TimerTag::WWait })));
        out.clear();
        s.on_timer(TimerTag::WWait, &mut out);
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn slave_w_waiting_accepts_late_commit() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        // Fig. 8's point: a commit from a peer slave is accepted here.
        s.on_msg(SiteId(2), &CommitMsg::Kind("commit"), &mut out);
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn slave_p_timeout_probes_then_ud_probe_commits_and_broadcasts() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(2),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        assert_eq!(s.state_name(), "probing");
        assert!(out.iter().any(|a| matches!(
            a,
            Action::Send { to: SiteId(0), msg: CommitMsg::Probe { slave: 2 } }
        )));
        out.clear();
        s.on_ud(SiteId(0), &CommitMsg::Probe { slave: 2 }, &mut out);
        assert!(acts_contain_broadcast(&out, "commit"));
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn slave_ud_yes_broadcasts_abort() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_ud(SiteId(0), &CommitMsg::Kind("yes"), &mut out);
        assert!(acts_contain_broadcast(&out, "abort"));
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn slave_ud_ack_broadcasts_commit() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        out.clear();
        s.on_ud(SiteId(0), &CommitMsg::Kind("ack"), &mut out);
        assert!(acts_contain_broadcast(&out, "commit"));
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn slave_transient_pwait_commits_statically_waits() {
        for (variant, expect) in [
            (TerminationVariant::Transient, Some(Decision::Commit)),
            (TerminationVariant::Static, None),
        ] {
            let mut s =
                TerminationSlave::new(PhasePlan::three_phase(), SiteId(1), Vote::Yes, variant);
            let mut out = Vec::new();
            s.start(&mut out);
            s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
            s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
            s.on_timer(TimerTag::Proto, &mut out);
            out.clear();
            s.on_timer(TimerTag::PWait, &mut out);
            assert_eq!(s.decision(), expect, "variant {variant:?}");
        }
    }

    #[test]
    fn slave_q_timeout_aborts() {
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn slave_probing_accepts_abort() {
        // The master's collection window can end in abort; a probing G1
        // slave must follow it (Sec. 5.3 pseudocode's "receive an abort").
        let mut s = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        );
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        s.on_msg(SiteId(0), &CommitMsg::Kind("abort"), &mut out);
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn four_phase_plan_master_ud_ready_commits() {
        let mut m = TerminationMaster::new(PhasePlan::four_phase(), 3);
        let mut out = Vec::new();
        m.start(&mut out);
        for s in 1..3 {
            m.on_msg(SiteId(s), &CommitMsg::Kind("yes"), &mut out);
        }
        for s in 1..3 {
            m.on_msg(SiteId(s), &CommitMsg::Kind("ack"), &mut out);
        }
        assert_eq!(m.state_name(), "p1");
        out.clear();
        m.on_ud(SiteId(2), &CommitMsg::Kind("ready"), &mut out);
        assert!(acts_contain_broadcast(&out, "commit"));
        assert_eq!(m.decision(), Some(Decision::Commit));
    }

    #[test]
    fn cluster_builder_counts() {
        let parts = termination_cluster(
            &PhasePlan::three_phase(),
            4,
            &[Vote::Yes; 3],
            TerminationVariant::Transient,
        );
        assert_eq!(parts.len(), 4);
    }

    #[test]
    #[should_panic(expected = "decisive round")]
    fn decisive_zero_rejected() {
        let plan = PhasePlan {
            name: "bad",
            rounds: vec![
                Round { request: "xact", reply: "yes" },
                Round { request: "prepare", reply: "ack" },
            ],
            decisive: 0,
        };
        TerminationMaster::new(plan, 3);
    }
}
