//! Typed execution options.
//!
//! The historical runner API threaded a bare `record_trace: bool` and a
//! positional `Vec<FailureSpec>` through every call site; [`RunOptions`]
//! replaces both with a self-describing builder that the whole stack —
//! [`crate::runner::ClusterRunner`], `ptp_core::Session`, `run_scenario`,
//! `sweep` — shares.

use ptp_simnet::{DegradeWindow, EnvelopeFault, FailureSpec, NetConfig, SimTime, TraceSink};

/// What the simulator should retain about a run's events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record the full [`ptp_simnet::Trace`] — required by the timing
    /// experiments (Figs. 5–7, 9) and the Sec. 6 case classifier.
    Record,
    /// Keep only the per-category [`ptp_simnet::TraceCounters`] (always
    /// maintained): the verdict, outcomes and report are identical to a
    /// recorded run, but no per-event allocation happens. This is the sweep
    /// hot path and the default.
    #[default]
    Counters,
}

impl TraceMode {
    /// True when a full trace will be recorded.
    pub fn records(self) -> bool {
        matches!(self, TraceMode::Record)
    }

    /// The corresponding simulator sink.
    pub(crate) fn sink(self) -> TraceSink {
        match self {
            TraceMode::Record => TraceSink::recording(),
            TraceMode::Counters => TraceSink::Null,
        }
    }
}

/// Typed options for one protocol run.
///
/// The default is the verdict-oriented fast path: counters-only tracing, no
/// injected failures, the caller's horizon. Build variations fluently:
///
/// ```
/// use ptp_protocols::options::{RunOptions, TraceMode};
///
/// let opts = RunOptions::recording().horizon_t(50);
/// assert!(opts.trace.records());
/// assert_eq!(opts.horizon_t, Some(50));
/// assert!(RunOptions::default().trace == TraceMode::Counters);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Trace retention mode.
    pub trace: TraceMode,
    /// Site failures to inject (experiment E13; the paper's protocol assumes
    /// none). At the scenario layer these are *added to* the scenario's own
    /// failure list.
    pub failures: Vec<FailureSpec>,
    /// Envelope-level faults (duplicate / reorder / drop) to arm for the
    /// run. Added to the scenario's own list at the scenario layer.
    pub env_faults: Vec<EnvelopeFault>,
    /// Degraded-network windows to arm for the run. Added to the scenario's
    /// own list at the scenario layer.
    pub degrades: Vec<DegradeWindow>,
    /// Horizon override in units of `T`; `None` keeps the configured
    /// horizon.
    pub horizon_t: Option<u64>,
}

impl RunOptions {
    /// The default options: counters-only tracing, no failures.
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Options with full trace recording.
    pub fn recording() -> RunOptions {
        RunOptions::default().trace(TraceMode::Record)
    }

    /// Sets the trace mode.
    pub fn trace(mut self, trace: TraceMode) -> RunOptions {
        self.trace = trace;
        self
    }

    /// Injects one site failure.
    pub fn fail(mut self, spec: FailureSpec) -> RunOptions {
        self.failures.push(spec);
        self
    }

    /// Replaces the failure list.
    pub fn failures(mut self, failures: Vec<FailureSpec>) -> RunOptions {
        self.failures = failures;
        self
    }

    /// Arms one envelope-level fault.
    pub fn env_fault(mut self, fault: EnvelopeFault) -> RunOptions {
        self.env_faults.push(fault);
        self
    }

    /// Arms one degraded-network window.
    pub fn degrade(mut self, window: DegradeWindow) -> RunOptions {
        self.degrades.push(window);
        self
    }

    /// Overrides the simulation horizon to `horizon_t * T`.
    pub fn horizon_t(mut self, horizon_t: u64) -> RunOptions {
        self.horizon_t = Some(horizon_t);
        self
    }

    /// Applies the horizon override to a network configuration.
    pub fn apply_horizon(&self, mut config: NetConfig) -> NetConfig {
        if let Some(h) = self.horizon_t {
            config.max_time = SimTime(config.t_unit.saturating_mul(h));
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_simnet::SiteId;

    #[test]
    fn default_is_counters_only() {
        let o = RunOptions::default();
        assert_eq!(o.trace, TraceMode::Counters);
        assert!(!o.trace.records());
        assert!(o.failures.is_empty());
        assert_eq!(o.horizon_t, None);
    }

    #[test]
    fn builder_composes() {
        let o = RunOptions::new()
            .trace(TraceMode::Record)
            .fail(FailureSpec::crash(SiteId(1), SimTime(5)))
            .horizon_t(7);
        assert!(o.trace.records());
        assert_eq!(o.failures.len(), 1);
        assert_eq!(o.horizon_t, Some(7));
    }

    #[test]
    fn horizon_override_rewrites_max_time() {
        let cfg = NetConfig { t_unit: 1000, ..NetConfig::default() };
        let out = RunOptions::new().horizon_t(3).apply_horizon(cfg);
        assert_eq!(out.max_time, SimTime(3000));
        let unchanged = RunOptions::new().apply_horizon(cfg);
        assert_eq!(unchanged.max_time, cfg.max_time);
    }
}
