//! Enum dispatch over the concrete participant types.
//!
//! `Box<dyn Participant>` clusters pay one heap allocation per site and a
//! vtable call per event. Every protocol in this workspace is built from
//! four concrete state machines, so a closed enum covers them all:
//! [`AnyParticipant`] stores the participant inline (a `Vec<AnyParticipant>`
//! is one flat allocation) and forwards each trait method through a `match`
//! whose arms are statically dispatched — the sweep hot path never touches
//! a vtable. The `ptp_core::Session` cluster is a
//! [`crate::runner::ClusterRunner`]`<AnyParticipant>`.

use crate::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use crate::interp::FsaParticipant;
use crate::quorum::QuorumSite;
use crate::termination::{TerminationMaster, TerminationSlave};
use ptp_model::Decision;
use ptp_simnet::SiteId;

/// One site of any protocol in the suite, dispatched by enum instead of
/// vtable.
#[allow(clippy::large_enum_variant)] // sized by the largest machine; still one flat Vec
pub enum AnyParticipant {
    /// An interpreted FSA site (2PC, E2PC, 3PC, Lemma 3 augmentations).
    Fsa(FsaParticipant),
    /// The termination-protocol master.
    Master(TerminationMaster),
    /// A termination-protocol slave.
    Slave(TerminationSlave),
    /// A quorum-commit site (Skeen 1982 baseline).
    Quorum(QuorumSite),
}

macro_rules! each {
    ($self:ident, $p:ident => $body:expr) => {
        match $self {
            AnyParticipant::Fsa($p) => $body,
            AnyParticipant::Master($p) => $body,
            AnyParticipant::Slave($p) => $body,
            AnyParticipant::Quorum($p) => $body,
        }
    };
}

impl AnyParticipant {
    /// The inner [`QuorumSite`], if this is a quorum-commit site — lets
    /// the quorum equivalence suite flip [`crate::quorum::QuorumTuning`]
    /// on an assembled cluster.
    pub fn quorum_mut(&mut self) -> Option<&mut QuorumSite> {
        match self {
            AnyParticipant::Quorum(p) => Some(p),
            _ => None,
        }
    }

    /// Re-boxes into the historical trait-object form (for APIs that still
    /// take `Vec<Box<dyn Participant>>`).
    pub fn boxed(self) -> Box<dyn Participant> {
        match self {
            AnyParticipant::Fsa(p) => Box::new(p),
            AnyParticipant::Master(p) => Box::new(p),
            AnyParticipant::Slave(p) => Box::new(p),
            AnyParticipant::Quorum(p) => Box::new(p),
        }
    }
}

impl Participant for AnyParticipant {
    fn start(&mut self, out: &mut Vec<Action>) {
        each!(self, p => p.start(out))
    }
    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        each!(self, p => p.on_msg(from, msg, out))
    }
    fn on_ud(&mut self, original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        each!(self, p => p.on_ud(original_dst, msg, out))
    }
    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        each!(self, p => p.on_timer(tag, out))
    }
    fn decision(&self) -> Option<Decision> {
        each!(self, p => p.decision())
    }
    fn state_name(&self) -> &'static str {
        each!(self, p => p.state_name())
    }
    fn reset(&mut self, vote: Vote) {
        each!(self, p => p.reset(vote))
    }
}

impl From<FsaParticipant> for AnyParticipant {
    fn from(p: FsaParticipant) -> AnyParticipant {
        AnyParticipant::Fsa(p)
    }
}
impl From<TerminationMaster> for AnyParticipant {
    fn from(p: TerminationMaster) -> AnyParticipant {
        AnyParticipant::Master(p)
    }
}
impl From<TerminationSlave> for AnyParticipant {
    fn from(p: TerminationSlave) -> AnyParticipant {
        AnyParticipant::Slave(p)
    }
}
impl From<QuorumSite> for AnyParticipant {
    fn from(p: QuorumSite) -> AnyParticipant {
        AnyParticipant::Quorum(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{PhasePlan, TerminationVariant};

    #[test]
    fn enum_forwards_to_inner_machine() {
        let mut s: AnyParticipant = TerminationSlave::new(
            PhasePlan::three_phase(),
            SiteId(1),
            Vote::Yes,
            TerminationVariant::Transient,
        )
        .into();
        assert_eq!(s.state_name(), "q");
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        assert_eq!(s.state_name(), "w");
        s.reset(Vote::No);
        assert_eq!(s.state_name(), "q");
        assert_eq!(s.decision(), None);
    }

    #[test]
    fn boxed_round_trip_behaves() {
        let m: AnyParticipant = TerminationMaster::new(PhasePlan::three_phase(), 3).into();
        let mut boxed = m.boxed();
        let mut out = Vec::new();
        boxed.start(&mut out);
        assert_eq!(boxed.state_name(), "w1");
    }
}
