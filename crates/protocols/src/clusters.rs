//! Convenience constructors: full clusters (master + slaves) for every
//! protocol in the suite.
//!
//! The `*_cluster_any` constructors return [`Vec<AnyParticipant>`] — one
//! flat allocation, enum-dispatched — and are what
//! [`crate::runner::ClusterRunner`] / `ptp_core::Session` consume. The
//! historical `*_cluster` constructors return boxed trait objects for
//! heterogeneous embeddings ([`crate::runner::run_protocol`],
//! `ptp-livenet`).

use crate::api::{Participant, Vote};
use crate::dispatch::AnyParticipant;
use crate::interp::FsaParticipant;
use crate::termination::{
    PhasePlan, ProtocolTiming, TerminationMaster, TerminationSlave, TerminationVariant,
};
use ptp_model::protocols::{extended_two_phase, three_phase, two_phase};
use ptp_model::rules::derive_rules_augmentation;
use ptp_model::{Augmentation, ProtocolSpec};
use ptp_simnet::SiteId;
use std::sync::Arc;

fn boxed(cluster: Vec<AnyParticipant>) -> Vec<Box<dyn Participant>> {
    cluster.into_iter().map(AnyParticipant::boxed).collect()
}

/// A cluster interpreting `spec` with an optional augmentation.
pub fn fsa_cluster_any(
    spec: ProtocolSpec,
    votes: &[Vote],
    augmentation: Option<Augmentation>,
) -> Vec<AnyParticipant> {
    let n = spec.n();
    assert_eq!(votes.len(), n - 1, "one vote per slave");
    let spec = Arc::new(spec);
    (0..n)
        .map(|site| {
            let vote = if site == 0 { Vote::Yes } else { votes[site - 1] };
            FsaParticipant::new(spec.clone(), site, vote, augmentation.clone()).into()
        })
        .collect()
}

/// Boxed form of [`fsa_cluster_any`].
pub fn fsa_cluster(
    spec: ProtocolSpec,
    votes: &[Vote],
    augmentation: Option<Augmentation>,
) -> Vec<Box<dyn Participant>> {
    boxed(fsa_cluster_any(spec, votes, augmentation))
}

/// Fig. 1: plain 2PC with no timeout/UD transitions — blocks under
/// partition and even under a silent master stop.
pub fn plain_2pc_cluster_any(n: usize, votes: &[Vote]) -> Vec<AnyParticipant> {
    fsa_cluster_any(two_phase(n), votes, None)
}

/// Boxed form of [`plain_2pc_cluster_any`].
pub fn plain_2pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    boxed(plain_2pc_cluster_any(n, votes))
}

/// Fig. 2: extended 2PC. The base protocol is 2PC with a decision-ack
/// phase; the timeout/UD augmentation is derived by Rule (a)/(b) **at
/// `n = 2`** (where Skeen & Stonebraker proved the rules sufficient) and
/// applied per state name at any `n` — exactly the protocol the paper's
/// Sec. 3 observation breaks at `n = 3`.
pub fn extended_2pc_cluster_any(n: usize, votes: &[Vote]) -> Vec<AnyParticipant> {
    let augmentation = derive_rules_augmentation(&extended_two_phase(2)).augmentation;
    fsa_cluster_any(extended_two_phase(n), votes, Some(augmentation))
}

/// Boxed form of [`extended_2pc_cluster_any`].
pub fn extended_2pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    boxed(extended_2pc_cluster_any(n, votes))
}

/// The Sec. 3 "naive" baseline: 3PC augmented with Rule (a)/(b) timeout and
/// UD transitions derived at the *actual* `n` — still not resilient
/// (Lemma 3), as experiments E3/E5 demonstrate.
pub fn naive_augmented_3pc_cluster_any(n: usize, votes: &[Vote]) -> Vec<AnyParticipant> {
    let spec = three_phase(n);
    let augmentation = derive_rules_augmentation(&spec).augmentation;
    fsa_cluster_any(spec, votes, Some(augmentation))
}

/// Boxed form of [`naive_augmented_3pc_cluster_any`].
pub fn naive_augmented_3pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    boxed(naive_augmented_3pc_cluster_any(n, votes))
}

/// Fig. 3: plain 3PC (no termination protocol) — nonblocking for site
/// failures but not partition-resilient.
pub fn plain_3pc_cluster_any(n: usize, votes: &[Vote]) -> Vec<AnyParticipant> {
    fsa_cluster_any(three_phase(n), votes, None)
}

/// Boxed form of [`plain_3pc_cluster_any`].
pub fn plain_3pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    boxed(plain_3pc_cluster_any(n, votes))
}

/// The paper's protocol: modified 3PC (Fig. 8) with the Huang–Li
/// termination protocol (Sec. 5.3), in the chosen variant.
pub fn huang_li_3pc_cluster_any(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<AnyParticipant> {
    termination_cluster_any(&PhasePlan::three_phase(), n, votes, variant)
}

/// Boxed form of [`huang_li_3pc_cluster_any`].
pub fn huang_li_3pc_cluster(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<Box<dyn Participant>> {
    boxed(huang_li_3pc_cluster_any(n, votes, variant))
}

/// Theorem 10 exercise: the four-phase protocol with its generated
/// termination protocol.
pub fn huang_li_4pc_cluster_any(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<AnyParticipant> {
    termination_cluster_any(&PhasePlan::four_phase(), n, votes, variant)
}

/// Boxed form of [`huang_li_4pc_cluster_any`].
pub fn huang_li_4pc_cluster(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<Box<dyn Participant>> {
    boxed(huang_li_4pc_cluster_any(n, votes, variant))
}

/// Builds a full cluster (master + `n - 1` slaves) running the termination
/// protocol over `plan`.
pub fn termination_cluster_any(
    plan: &PhasePlan,
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<AnyParticipant> {
    assert_eq!(votes.len(), n - 1, "one vote per slave");
    let mut parts: Vec<AnyParticipant> = vec![TerminationMaster::new(plan.clone(), n).into()];
    for (i, &vote) in votes.iter().enumerate() {
        parts.push(TerminationSlave::new(plan.clone(), SiteId(i as u16 + 1), vote, variant).into());
    }
    parts
}

/// The paper's protocol with non-default timer constants — used by the
/// timing/ablation experiments (E6 and the `ablations` bench) to show the
/// paper's 2T/3T/5T/6T values are necessary.
pub fn huang_li_3pc_cluster_with_timing_any(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
    timing: ProtocolTiming,
) -> Vec<AnyParticipant> {
    assert_eq!(votes.len(), n - 1);
    let plan = PhasePlan::three_phase();
    let mut parts: Vec<AnyParticipant> =
        vec![TerminationMaster::with_timing(plan.clone(), n, timing).into()];
    for (i, &vote) in votes.iter().enumerate() {
        parts.push(
            TerminationSlave::with_timing(
                plan.clone(),
                SiteId(i as u16 + 1),
                vote,
                variant,
                timing,
            )
            .into(),
        );
    }
    parts
}

/// Boxed form of [`huang_li_3pc_cluster_with_timing_any`].
pub fn huang_li_3pc_cluster_with_timing(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
    timing: ProtocolTiming,
) -> Vec<Box<dyn Participant>> {
    boxed(huang_li_3pc_cluster_with_timing_any(n, votes, variant, timing))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Verdict;
    use crate::runner::run_protocol;
    use ptp_simnet::{DelayModel, NetConfig, PartitionEngine};

    fn run_failure_free(parts: Vec<AnyParticipant>) -> Verdict {
        let run = run_protocol(
            parts,
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(400),
            vec![],
        );
        Verdict::judge(&run.outcomes)
    }

    #[test]
    fn every_cluster_commits_failure_free() {
        let n = 4;
        let votes = [Vote::Yes; 3];
        assert_eq!(run_failure_free(plain_2pc_cluster_any(n, &votes)), Verdict::AllCommit);
        assert_eq!(run_failure_free(extended_2pc_cluster_any(n, &votes)), Verdict::AllCommit);
        assert_eq!(
            run_failure_free(naive_augmented_3pc_cluster_any(n, &votes)),
            Verdict::AllCommit
        );
        assert_eq!(run_failure_free(plain_3pc_cluster_any(n, &votes)), Verdict::AllCommit);
        assert_eq!(
            run_failure_free(huang_li_3pc_cluster_any(n, &votes, TerminationVariant::Transient)),
            Verdict::AllCommit
        );
        assert_eq!(
            run_failure_free(huang_li_4pc_cluster_any(n, &votes, TerminationVariant::Transient)),
            Verdict::AllCommit
        );
    }

    #[test]
    fn every_cluster_aborts_on_a_no_vote() {
        let n = 3;
        let votes = [Vote::Yes, Vote::No];
        assert_eq!(run_failure_free(plain_2pc_cluster_any(n, &votes)), Verdict::AllAbort);
        assert_eq!(run_failure_free(extended_2pc_cluster_any(n, &votes)), Verdict::AllAbort);
        assert_eq!(run_failure_free(plain_3pc_cluster_any(n, &votes)), Verdict::AllAbort);
        assert_eq!(
            run_failure_free(huang_li_3pc_cluster_any(n, &votes, TerminationVariant::Transient)),
            Verdict::AllAbort
        );
        assert_eq!(
            run_failure_free(huang_li_4pc_cluster_any(n, &votes, TerminationVariant::Transient)),
            Verdict::AllAbort
        );
    }

    #[test]
    fn boxed_constructors_delegate() {
        let parts = huang_li_3pc_cluster(4, &[Vote::Yes; 3], TerminationVariant::Transient);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].state_name(), "w1");
        assert_eq!(parts[1].state_name(), "q");
    }
}
