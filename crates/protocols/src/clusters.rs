//! Convenience constructors: full clusters (master + slaves) for every
//! protocol in the suite, ready for [`crate::runner::run_protocol`].

use crate::api::{Participant, Vote};
use crate::interp::FsaParticipant;
use crate::termination::{
    termination_cluster, PhasePlan, ProtocolTiming, TerminationMaster, TerminationSlave,
    TerminationVariant,
};
use ptp_model::protocols::{extended_two_phase, three_phase, two_phase};
use ptp_model::rules::derive_rules_augmentation;
use ptp_model::{Augmentation, ProtocolSpec};
use ptp_simnet::SiteId;
use std::sync::Arc;

/// A cluster interpreting `spec` with an optional augmentation.
pub fn fsa_cluster(
    spec: ProtocolSpec,
    votes: &[Vote],
    augmentation: Option<Augmentation>,
) -> Vec<Box<dyn Participant>> {
    let n = spec.n();
    assert_eq!(votes.len(), n - 1, "one vote per slave");
    let spec = Arc::new(spec);
    (0..n)
        .map(|site| {
            let vote = if site == 0 { Vote::Yes } else { votes[site - 1] };
            Box::new(FsaParticipant::new(spec.clone(), site, vote, augmentation.clone()))
                as Box<dyn Participant>
        })
        .collect()
}

/// Fig. 1: plain 2PC with no timeout/UD transitions — blocks under
/// partition and even under a silent master stop.
pub fn plain_2pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    fsa_cluster(two_phase(n), votes, None)
}

/// Fig. 2: extended 2PC. The base protocol is 2PC with a decision-ack
/// phase; the timeout/UD augmentation is derived by Rule (a)/(b) **at
/// `n = 2`** (where Skeen & Stonebraker proved the rules sufficient) and
/// applied per state name at any `n` — exactly the protocol the paper's
/// Sec. 3 observation breaks at `n = 3`.
pub fn extended_2pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    let augmentation = derive_rules_augmentation(&extended_two_phase(2)).augmentation;
    fsa_cluster(extended_two_phase(n), votes, Some(augmentation))
}

/// The Sec. 3 "naive" baseline: 3PC augmented with Rule (a)/(b) timeout and
/// UD transitions derived at the *actual* `n` — still not resilient
/// (Lemma 3), as experiments E3/E5 demonstrate.
pub fn naive_augmented_3pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    let spec = three_phase(n);
    let augmentation = derive_rules_augmentation(&spec).augmentation;
    fsa_cluster(spec, votes, Some(augmentation))
}

/// Fig. 3: plain 3PC (no termination protocol) — nonblocking for site
/// failures but not partition-resilient.
pub fn plain_3pc_cluster(n: usize, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    fsa_cluster(three_phase(n), votes, None)
}

/// The paper's protocol: modified 3PC (Fig. 8) with the Huang–Li
/// termination protocol (Sec. 5.3), in the chosen variant.
pub fn huang_li_3pc_cluster(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<Box<dyn Participant>> {
    termination_cluster(&PhasePlan::three_phase(), n, votes, variant)
}

/// Theorem 10 exercise: the four-phase protocol with its generated
/// termination protocol.
pub fn huang_li_4pc_cluster(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
) -> Vec<Box<dyn Participant>> {
    termination_cluster(&PhasePlan::four_phase(), n, votes, variant)
}

/// The paper's protocol with non-default timer constants — used by the
/// timing/ablation experiments (E6 and the `ablations` bench) to show the
/// paper's 2T/3T/5T/6T values are necessary.
pub fn huang_li_3pc_cluster_with_timing(
    n: usize,
    votes: &[Vote],
    variant: TerminationVariant,
    timing: ProtocolTiming,
) -> Vec<Box<dyn Participant>> {
    assert_eq!(votes.len(), n - 1);
    let plan = PhasePlan::three_phase();
    let mut parts: Vec<Box<dyn Participant>> =
        vec![Box::new(TerminationMaster::with_timing(plan.clone(), n, timing))];
    for (i, &vote) in votes.iter().enumerate() {
        parts.push(Box::new(TerminationSlave::with_timing(
            plan.clone(),
            SiteId(i as u16 + 1),
            vote,
            variant,
            timing,
        )));
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Verdict;
    use crate::runner::run_protocol;
    use ptp_simnet::{DelayModel, NetConfig, PartitionEngine};

    fn run_failure_free(parts: Vec<Box<dyn Participant>>) -> Verdict {
        let run = run_protocol(
            parts,
            NetConfig::default(),
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(400),
            vec![],
        );
        Verdict::judge(&run.outcomes)
    }

    #[test]
    fn every_cluster_commits_failure_free() {
        let n = 4;
        let votes = [Vote::Yes; 3];
        assert_eq!(run_failure_free(plain_2pc_cluster(n, &votes)), Verdict::AllCommit);
        assert_eq!(run_failure_free(extended_2pc_cluster(n, &votes)), Verdict::AllCommit);
        assert_eq!(run_failure_free(naive_augmented_3pc_cluster(n, &votes)), Verdict::AllCommit);
        assert_eq!(run_failure_free(plain_3pc_cluster(n, &votes)), Verdict::AllCommit);
        assert_eq!(
            run_failure_free(huang_li_3pc_cluster(n, &votes, TerminationVariant::Transient)),
            Verdict::AllCommit
        );
        assert_eq!(
            run_failure_free(huang_li_4pc_cluster(n, &votes, TerminationVariant::Transient)),
            Verdict::AllCommit
        );
    }

    #[test]
    fn every_cluster_aborts_on_a_no_vote() {
        let n = 3;
        let votes = [Vote::Yes, Vote::No];
        assert_eq!(run_failure_free(plain_2pc_cluster(n, &votes)), Verdict::AllAbort);
        assert_eq!(run_failure_free(extended_2pc_cluster(n, &votes)), Verdict::AllAbort);
        assert_eq!(run_failure_free(plain_3pc_cluster(n, &votes)), Verdict::AllAbort);
        assert_eq!(
            run_failure_free(huang_li_3pc_cluster(n, &votes, TerminationVariant::Transient)),
            Verdict::AllAbort
        );
        assert_eq!(
            run_failure_free(huang_li_4pc_cluster(n, &votes, TerminationVariant::Transient)),
            Verdict::AllAbort
        );
    }
}
