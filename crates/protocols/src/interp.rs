//! The FSA interpreter: runs any [`ProtocolSpec`] from `ptp-model` directly
//! on the simulated network, optionally augmented with timeout and
//! undeliverable-message transitions.
//!
//! This is how the repository executes the paper's published figures
//! *literally*: the 2PC of Fig. 1, the extended 2PC of Fig. 2 (base spec +
//! the Rule (a)/(b) augmentation derived at `n = 2`), the 3PC of Fig. 3 with
//! its naive augmentation (the Sec. 3 counterexample), and all 4096
//! augmentations of Lemma 3's enumeration (experiment E5).
//!
//! Semantics:
//! * Incoming messages are pooled; a transition fires as soon as all the
//!   messages it reads are available (the master's "all yes" reads arrive
//!   one at a time).
//! * Entering a non-final state (re-)arms the commit-protocol timeout — 2T
//!   for the master, 3T for slaves (Fig. 5).
//! * On timeout or receipt of an undeliverable message, the augmentation's
//!   decision (if any) is applied as a silent local transition to the
//!   commit/abort state, exactly like the dashed transitions of Fig. 2. If
//!   the augmentation assigns nothing, the site notes that it is blocked
//!   and keeps listening (the paper's blocked site: locks held, waiting for
//!   the failure to be repaired).

use crate::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use crate::timing::{MASTER_PROTO_T, SLAVE_PROTO_T};
use ptp_model::{Augmentation, Decision, Msg, ProtocolSpec, Role, StateKind};
use ptp_simnet::SiteId;
use std::sync::Arc;

/// A site executing a protocol FSA.
pub struct FsaParticipant {
    spec: Arc<ProtocolSpec>,
    site: usize,
    vote: Vote,
    augmentation: Option<Augmentation>,
    state: usize,
    pool: Vec<Msg>,
    decided: Option<Decision>,
    blocked_noted: bool,
}

impl FsaParticipant {
    /// Creates the participant for `site` of `spec`. `augmentation` adds the
    /// dashed timeout/UD transitions; `None` runs the bare protocol (which
    /// blocks under partition, as 2PC famously does).
    pub fn new(
        spec: Arc<ProtocolSpec>,
        site: usize,
        vote: Vote,
        augmentation: Option<Augmentation>,
    ) -> Self {
        assert!(site < spec.n(), "site out of range");
        FsaParticipant {
            spec,
            site,
            vote,
            augmentation,
            state: 0,
            pool: Vec::new(),
            decided: None,
            blocked_noted: false,
        }
    }

    fn role(&self) -> Role {
        self.spec.role_of(self.site)
    }

    fn current_kind(&self) -> StateKind {
        self.spec.sites[self.site].states[self.state].kind
    }

    fn current_name(&self) -> &str {
        &self.spec.sites[self.site].states[self.state].name
    }

    fn proto_timeout_t(&self) -> u64 {
        match self.role() {
            Role::Master => MASTER_PROTO_T,
            Role::Slave => SLAVE_PROTO_T,
        }
    }

    /// Does the pool contain every message `reads` needs?
    fn pool_has_all(&self, reads: &[Msg]) -> bool {
        reads.iter().all(|r| {
            let needed = reads.iter().filter(|x| *x == r).count();
            let have = self.pool.iter().filter(|x| *x == r).count();
            have >= needed
        })
    }

    /// Writes a "no"-kind message?
    fn writes_no(&self, t: &ptp_model::Transition) -> bool {
        t.writes.iter().any(|w| self.spec.kinds[w.kind as usize] == "no")
    }

    /// Fires enabled transitions until quiescent.
    fn advance(&mut self, out: &mut Vec<Action>) {
        loop {
            if self.current_kind().is_final() {
                return;
            }
            let ss = &self.spec.sites[self.site];
            let enabled: Vec<usize> = ss
                .transitions
                .iter()
                .enumerate()
                .filter(|(_, t)| t.from == self.state && self.pool_has_all(&t.reads))
                .map(|(i, _)| i)
                .collect();
            if enabled.is_empty() {
                return;
            }
            // Vote policy picks among alternatives (yes vs no at the slave's
            // initial state); otherwise the first enabled transition fires.
            let chosen = match self.vote {
                Vote::No => enabled
                    .iter()
                    .copied()
                    .find(|i| self.writes_no(&ss.transitions[*i]))
                    .unwrap_or(enabled[0]),
                Vote::Yes => enabled
                    .iter()
                    .copied()
                    .find(|i| !self.writes_no(&ss.transitions[*i]))
                    .unwrap_or(enabled[0]),
            };
            let t = self.spec.sites[self.site].transitions[chosen].clone();
            for r in &t.reads {
                let pos = self.pool.iter().position(|m| m == r).expect("read in pool");
                self.pool.swap_remove(pos);
            }
            for w in &t.writes {
                out.push(Action::Send {
                    to: SiteId(w.dst as u16),
                    msg: CommitMsg::Kind(self.spec.kinds[w.kind as usize]),
                });
            }
            self.enter(t.to, out);
        }
    }

    /// Moves to a state, managing the protocol timer and decisions.
    fn enter(&mut self, state: usize, out: &mut Vec<Action>) {
        self.state = state;
        out.push(Action::Note("enter-state", state as u64));
        match self.current_kind() {
            StateKind::Commit => {
                out.push(Action::CancelTimer { tag: TimerTag::Proto });
                self.decided = Some(Decision::Commit);
                out.push(Action::Decide(Decision::Commit));
            }
            StateKind::Abort => {
                out.push(Action::CancelTimer { tag: TimerTag::Proto });
                self.decided = Some(Decision::Abort);
                out.push(Action::Decide(Decision::Abort));
            }
            _ => {
                out.push(Action::SetTimer {
                    t_units: self.proto_timeout_t(),
                    tag: TimerTag::Proto,
                });
            }
        }
    }

    /// Applies an augmentation decision as a silent transition.
    fn jump_to_decision(&mut self, d: Decision, out: &mut Vec<Action>) {
        let want = match d {
            Decision::Commit => StateKind::Commit,
            Decision::Abort => StateKind::Abort,
        };
        let target = self.spec.sites[self.site]
            .states
            .iter()
            .position(|s| s.kind == want)
            .expect("protocol has commit and abort states");
        self.enter(target, out);
    }
}

impl Participant for FsaParticipant {
    fn start(&mut self, out: &mut Vec<Action>) {
        // Arm the initial-state timeout, then fire any spontaneous
        // transitions (the master's q1 -> w1).
        out.push(Action::SetTimer { t_units: self.proto_timeout_t(), tag: TimerTag::Proto });
        self.advance(out);
    }

    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        if self.current_kind().is_final() {
            return;
        }
        let CommitMsg::Kind(kind) = msg else { return };
        self.pool.push(Msg {
            kind: self.spec.kind_index(kind),
            src: from.0 as u8,
            dst: self.site as u8,
        });
        self.advance(out);
    }

    fn on_ud(&mut self, _original_dst: SiteId, _msg: &CommitMsg, out: &mut Vec<Action>) {
        if self.current_kind().is_final() {
            return;
        }
        out.push(Action::Note("ud-received", self.state as u64));
        let decision =
            self.augmentation.as_ref().and_then(|a| a.ud_for(self.role(), self.current_name()));
        match decision {
            Some(d) => self.jump_to_decision(d, out),
            None => {
                if !self.blocked_noted {
                    self.blocked_noted = true;
                    out.push(Action::Note("blocked", self.state as u64));
                }
            }
        }
    }

    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        if tag != TimerTag::Proto || self.current_kind().is_final() {
            return;
        }
        out.push(Action::Note("proto-timeout", self.state as u64));
        let decision = self
            .augmentation
            .as_ref()
            .and_then(|a| a.timeout_for(self.role(), self.current_name()));
        match decision {
            Some(d) => self.jump_to_decision(d, out),
            None => {
                if !self.blocked_noted {
                    self.blocked_noted = true;
                    out.push(Action::Note("blocked", self.state as u64));
                }
            }
        }
    }

    fn decision(&self) -> Option<Decision> {
        self.decided
    }

    fn state_name(&self) -> &'static str {
        // Interpreted states have dynamic names; expose the kind instead.
        match self.current_kind() {
            StateKind::Initial => "initial",
            StateKind::Intermediate => "intermediate",
            StateKind::Commit => "commit",
            StateKind::Abort => "abort",
        }
    }

    fn reset(&mut self, vote: Vote) {
        self.vote = vote;
        self.state = 0;
        self.pool.clear();
        self.decided = None;
        self.blocked_noted = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_model::protocols::{three_phase, two_phase};

    fn drive_to_quiescence(parts: &mut [FsaParticipant]) -> Vec<Option<Decision>> {
        // Simple synchronous message pump (no delays, no partitions):
        // repeatedly deliver all pending sends until nothing moves.
        let mut outboxes: Vec<Vec<(usize, CommitMsg)>> = vec![Vec::new(); parts.len()];
        let mut actions = Vec::new();
        for p in parts.iter_mut() {
            actions.clear();
            p.start(&mut actions);
            collect_sends(p.site, &actions, &mut outboxes);
        }
        for _round in 0..64 {
            let mut moved = false;
            let pending: Vec<Vec<(usize, CommitMsg)>> =
                std::mem::replace(&mut outboxes, vec![Vec::new(); parts.len()]);
            for (dst, inbox) in pending.into_iter().enumerate() {
                for (src, msg) in inbox {
                    moved = true;
                    actions.clear();
                    parts[dst].on_msg(SiteId(src as u16), &msg, &mut actions);
                    let site = parts[dst].site;
                    collect_sends(site, &actions, &mut outboxes);
                }
            }
            if !moved {
                break;
            }
        }
        parts.iter().map(|p| p.decision()).collect()
    }

    fn collect_sends(src: usize, actions: &[Action], outboxes: &mut [Vec<(usize, CommitMsg)>]) {
        for a in actions {
            if let Action::Send { to, msg } = a {
                outboxes[to.index()].push((src, *msg));
            }
        }
    }

    fn participants(spec: ProtocolSpec, votes: &[Vote]) -> Vec<FsaParticipant> {
        let spec = Arc::new(spec);
        (0..spec.n())
            .map(|site| {
                let vote = if site == 0 { Vote::Yes } else { votes[site - 1] };
                FsaParticipant::new(spec.clone(), site, vote, None)
            })
            .collect()
    }

    #[test]
    fn two_pc_all_yes_commits_without_network() {
        let mut parts = participants(two_phase(3), &[Vote::Yes, Vote::Yes]);
        let decisions = drive_to_quiescence(&mut parts);
        assert!(decisions.iter().all(|d| *d == Some(Decision::Commit)));
    }

    #[test]
    fn two_pc_one_no_aborts() {
        let mut parts = participants(two_phase(3), &[Vote::No, Vote::Yes]);
        let decisions = drive_to_quiescence(&mut parts);
        assert!(decisions.iter().all(|d| *d == Some(Decision::Abort)));
    }

    #[test]
    fn three_pc_all_yes_commits() {
        let mut parts = participants(three_phase(4), &[Vote::Yes; 3]);
        let decisions = drive_to_quiescence(&mut parts);
        assert!(decisions.iter().all(|d| *d == Some(Decision::Commit)));
    }

    #[test]
    fn three_pc_mixed_votes_abort() {
        let mut parts = participants(three_phase(4), &[Vote::Yes, Vote::No, Vote::Yes]);
        let decisions = drive_to_quiescence(&mut parts);
        assert!(decisions.iter().all(|d| *d == Some(Decision::Abort)));
    }

    #[test]
    fn timeout_without_augmentation_blocks() {
        let spec = Arc::new(two_phase(2));
        let mut p = FsaParticipant::new(spec, 1, Vote::Yes, None);
        let mut out = Vec::new();
        p.start(&mut out);
        out.clear();
        // Deliver xact so the slave votes and waits in w.
        p.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        p.on_timer(TimerTag::Proto, &mut out);
        assert!(out.iter().any(|a| matches!(a, Action::Note("blocked", _))));
        assert_eq!(p.decision(), None);
    }

    #[test]
    fn timeout_with_augmentation_decides() {
        use ptp_model::rules::derive_rules_augmentation;
        let spec = Arc::new(two_phase(2));
        let aug = derive_rules_augmentation(&spec).augmentation;
        let mut p = FsaParticipant::new(spec, 1, Vote::Yes, Some(aug));
        let mut out = Vec::new();
        p.start(&mut out);
        p.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        // 2PC at n=2: C(w) contains c1, so Rule (a) sends timeout to commit.
        p.on_timer(TimerTag::Proto, &mut out);
        assert_eq!(p.decision(), Some(Decision::Commit));
        assert!(out.iter().any(|a| matches!(a, Action::Decide(Decision::Commit))));
    }

    #[test]
    fn ud_with_augmentation_decides() {
        use ptp_model::rules::derive_rules_augmentation;
        let spec = Arc::new(two_phase(2));
        let aug = derive_rules_augmentation(&spec).augmentation;
        let mut p = FsaParticipant::new(spec, 1, Vote::Yes, Some(aug));
        let mut out = Vec::new();
        p.start(&mut out);
        p.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        // The slave's yes bounced: Rule (b) says abort (master times out in
        // w1 and aborts).
        p.on_ud(SiteId(0), &CommitMsg::Kind("yes"), &mut out);
        assert_eq!(p.decision(), Some(Decision::Abort));
    }

    #[test]
    fn messages_after_decision_are_ignored() {
        let spec = Arc::new(two_phase(2));
        let mut p = FsaParticipant::new(spec, 1, Vote::No, None);
        let mut out = Vec::new();
        p.start(&mut out);
        p.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        assert_eq!(p.decision(), Some(Decision::Abort));
        out.clear();
        p.on_msg(SiteId(0), &CommitMsg::Kind("commit"), &mut out);
        assert!(out.is_empty());
        assert_eq!(p.decision(), Some(Decision::Abort));
    }

    #[test]
    fn master_reads_arrive_out_of_order() {
        // Master must buffer yes votes until all are present.
        let spec = Arc::new(two_phase(3));
        let mut m = FsaParticipant::new(spec, 0, Vote::Yes, None);
        let mut out = Vec::new();
        m.start(&mut out);
        out.clear();
        m.on_msg(SiteId(2), &CommitMsg::Kind("yes"), &mut out);
        assert_eq!(m.decision(), None, "one yes is not enough");
        m.on_msg(SiteId(1), &CommitMsg::Kind("yes"), &mut out);
        assert_eq!(m.decision(), Some(Decision::Commit));
        // Commit messages went to both slaves.
        let sends: Vec<_> = out
            .iter()
            .filter(|a| matches!(a, Action::Send { msg: CommitMsg::Kind("commit"), .. }))
            .collect();
        assert_eq!(sends.len(), 2);
    }
}
