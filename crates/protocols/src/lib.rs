//! # ptp-protocols — runnable commit protocols and the Huang–Li termination
//! protocol
//!
//! Every protocol the paper discusses, as sans-IO state machines driven by
//! the `ptp-simnet` discrete-event network:
//!
//! * **Interpreted protocols** ([`interp::FsaParticipant`]): execute any
//!   `ptp-model` FSA spec literally — plain 2PC (Fig. 1), extended 2PC
//!   (Fig. 2, with the Rule (a)/(b) augmentation derived mechanically),
//!   3PC (Fig. 3), and each of the 4096 Lemma 3 augmentations.
//! * **The termination protocol** ([`termination`]): the paper's Sec. 5.3
//!   master/slave pseudocode, implemented as Theorem 10's generic
//!   master–slave engine and instantiated for the modified 3PC (Fig. 8) and
//!   a four-phase protocol. Both the Sec. 5 (static) and Sec. 6 (transient)
//!   variants.
//! * **Quorum commit** ([`quorum`]): the Skeen 1982 baseline that blocks in
//!   minority partitions.
//!
//! [`clusters`] builds ready-to-run site vectors; [`runner::run_protocol`]
//! executes them through a scenario; [`outcome::Verdict`] judges atomicity
//! and blocking.
//!
//! ```
//! use ptp_protocols::clusters::huang_li_3pc_cluster;
//! use ptp_protocols::termination::TerminationVariant;
//! use ptp_protocols::api::Vote;
//! use ptp_protocols::outcome::Verdict;
//! use ptp_protocols::runner::run_protocol;
//! use ptp_simnet::{DelayModel, NetConfig, PartitionEngine, PartitionSpec, SimTime, SiteId};
//!
//! // Three sites; the network splits {master, site1} | {site2} mid-commit.
//! let parts = huang_li_3pc_cluster(3, &[Vote::Yes; 2], TerminationVariant::Transient);
//! let partition = PartitionEngine::new(vec![PartitionSpec::simple(
//!     SimTime(2500),
//!     vec![SiteId(0), SiteId(1)],
//!     vec![SiteId(2)],
//! )]);
//! let run = run_protocol(
//!     parts,
//!     NetConfig::default(),
//!     partition,
//!     &DelayModel::Fixed(900),
//!     vec![],
//! );
//! let verdict = Verdict::judge(&run.outcomes);
//! assert!(verdict.is_resilient(), "{verdict:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod clusters;
pub mod interp;
pub mod outcome;
pub mod quorum;
pub mod runner;
pub mod termination;
pub mod timing;

pub use api::{Action, CommitMsg, Participant, TimerTag, Vote};
pub use outcome::{SiteOutcome, Verdict};
pub use runner::{run_protocol, run_protocol_with, ProtocolRun};
pub use termination::{PhasePlan, TerminationMaster, TerminationSlave, TerminationVariant};
