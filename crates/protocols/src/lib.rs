//! # ptp-protocols — runnable commit protocols and the Huang–Li termination
//! protocol
//!
//! Every protocol the paper discusses, as sans-IO state machines driven by
//! the `ptp-simnet` discrete-event network:
//!
//! * **Interpreted protocols** ([`interp::FsaParticipant`]): execute any
//!   `ptp-model` FSA spec literally — plain 2PC (Fig. 1), extended 2PC
//!   (Fig. 2, with the Rule (a)/(b) augmentation derived mechanically),
//!   3PC (Fig. 3), and each of the 4096 Lemma 3 augmentations.
//! * **The termination protocol** ([`termination`]): the paper's Sec. 5.3
//!   master/slave pseudocode, implemented as Theorem 10's generic
//!   master–slave engine and instantiated for the modified 3PC (Fig. 8) and
//!   a four-phase protocol. Both the Sec. 5 (static) and Sec. 6 (transient)
//!   variants.
//! * **Quorum commit** ([`quorum`]): the Skeen 1982 baseline that blocks in
//!   minority partitions.
//!
//! [`clusters`] builds ready-to-run site vectors — the `*_cluster_any`
//! constructors return flat, enum-dispatched [`AnyParticipant`] vectors
//! (see [`dispatch`]); [`runner::ClusterRunner`] is the reusable execution
//! harness (`ptp_core::Session` wraps it); [`options::RunOptions`] types
//! the per-run choices (trace retention, failures, horizon);
//! [`runner::run_protocol`] / [`runner::run_protocol_opts`] are the
//! one-shot conveniences; [`outcome::Verdict`] judges atomicity and
//! blocking.
//!
//! ```
//! use ptp_protocols::clusters::huang_li_3pc_cluster_any;
//! use ptp_protocols::termination::TerminationVariant;
//! use ptp_protocols::api::Vote;
//! use ptp_protocols::outcome::Verdict;
//! use ptp_protocols::runner::ClusterRunner;
//! use ptp_protocols::RunOptions;
//! use ptp_simnet::{DelayModel, NetConfig, SimTime, SiteId};
//!
//! // Three sites, built once; the runner replays them through any number
//! // of partition scenarios, reusing every buffer.
//! let cluster = huang_li_3pc_cluster_any(3, &[Vote::Yes; 2], TerminationVariant::Transient);
//! let mut runner = ClusterRunner::new(cluster);
//! for at in [1500u64, 2500, 3500] {
//!     runner.reset(&[Vote::Yes; 2]);
//!     // The network splits {master, site1} | {site2} at tick `at`.
//!     let groups = runner.partition_mut().reset_single(SimTime(at), None, 2);
//!     groups[0].extend([SiteId(0), SiteId(1)]);
//!     groups[1].push(SiteId(2));
//!     let run = runner.run(NetConfig::default(), &DelayModel::Fixed(900), &RunOptions::new());
//!     let verdict = Verdict::judge(&run.outcomes);
//!     assert!(verdict.is_resilient(), "{verdict:?}");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod clusters;
pub mod dispatch;
pub mod interp;
pub mod options;
pub mod outcome;
pub mod quorum;
pub mod runner;
pub mod termination;
pub mod timing;

pub use api::{Action, CommitMsg, Participant, TimerTag, Vote};
pub use dispatch::AnyParticipant;
pub use options::{RunOptions, TraceMode};
pub use outcome::{SiteOutcome, Verdict};
pub use quorum::{QuorumConfig, QuorumTuning};
pub use runner::{run_protocol, run_protocol_opts, ClusterRunner, ProtocolRun};
pub use termination::{PhasePlan, TerminationMaster, TerminationSlave, TerminationVariant};
