//! A quorum-based commit protocol (after Skeen, "A Quorum-Based Commit
//! Protocol", Berkeley Workshop 1982 — the paper’s reference \[5\]).
//!
//! This is the natural competitor to the Huang–Li termination protocol and
//! experiment E15's baseline. Normal operation is three-phase commit; when a
//! site suspects a partition (timeout or undeliverable message) it runs a
//! quorum termination protocol *within its reachable group*: it collects
//! state reports and
//!
//! * commits if it can see a commit, or at least `Vc` prepared sites;
//! * aborts if it can see an abort, or at least `Va` sites in total;
//! * otherwise **blocks** and retries.
//!
//! With `Vc + Va > n`, at most one of the two partition groups can reach
//! either quorum, so atomicity is preserved — but the minority group blocks
//! until the partition heals. The contrast with the paper's protocol (both
//! groups terminate, Theorem 9) is exactly what E15 measures.
//!
//! ## Hot-path tuning
//!
//! The naive rendition dominated the schedule benchmark: a blocked minority
//! re-armed its collection round every 2T until the horizon, and every round
//! allocated a fresh report map. Profiling (`bench_profile`) attributed the
//! bulk of Quorum's wall time to exactly those state-request/report rounds,
//! so the collection machinery is rewritten behind a [`QuorumTuning`] knob:
//!
//! * **piggyback** — a `state-req` carries the requester's own state class,
//!   and a collecting responder adopts it as a free report when it is
//!   *decisive* (committed/aborted). Decisive adoption is monotone and can
//!   only accelerate the inevitable decision; counting *undecided*
//!   piggybacked classes was tried and rejected — the extra `reachable`
//!   entries let the abort quorum fire in rounds where the timer-resolved
//!   baseline stayed blocked and later committed (the equivalence suite
//!   caught three commit→abort flips, and outright atomicity violations in
//!   combination with early resolution);
//! * **early resolve** — a round resolves the moment a report shows a
//!   *decided* peer instead of sleeping out the 2T collection timer. The
//!   quorum rule adopts a seen decision before anything else, so the early
//!   verdict is the one the timer would have reached. Resolving early on
//!   mere completeness (every request answered or bounced) was tried and
//!   rejected: a blocked resolution then restarts the next round off the
//!   naive 2T grid, and the drifted polls sample multi-episode schedules
//!   at different instants, flipping verdicts;
//! * **precomputed tallies** — reports land in a preallocated per-site
//!   table with running `prepared`/`reachable`/decided tallies, so
//!   resolution is a threshold compare, not a map scan, and rounds
//!   allocate nothing;
//! * **backoff** — the first [`DENSE_RETRIES`] blocked retries re-collect
//!   immediately (the naive cadence, one round per 2T, covering the window
//!   in which any schedule in the sweep grids can still change
//!   connectivity); after that the group re-polls with exponentially
//!   growing spacing (16T, 32T, ... capped at [`RETRY_CAP_T`]) so a
//!   permanently-partitioned minority stops burning simulator events until
//!   the horizon. Because every heal is observed during the dense prefix,
//!   the sparse tail only ever re-confirms an unchanged partition and no
//!   verdict moves.
//!
//! [`QuorumTuning::baseline`] reproduces the naive behaviour exactly —
//! `tests/quorum_rewrite_equivalence.rs` sweeps both tunings across all
//! four schedule families and pins identical verdict counts.
//!
//! This is a deliberately simplified rendition: Skeen's full protocol has
//! explicit prepare-to-commit/prepare-to-abort buffer states and weighted
//! votes; equal weights and state-report collection preserve the behaviour
//! that matters for the comparison (safety via intersecting quorums,
//! blocking minorities). See ARCHITECTURE.md.

use crate::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use crate::timing::{MASTER_PROTO_T, SLAVE_PROTO_T};
use ptp_model::Decision;
use ptp_simnet::SiteId;

/// Quorum sizes. Safety requires `vc + va > n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Total number of sites (master included).
    pub n: usize,
    /// Commit quorum: prepared sites needed to commit during termination.
    pub vc: usize,
    /// Abort quorum: reachable sites needed to abort during termination.
    pub va: usize,
}

impl QuorumConfig {
    /// Majority quorums: `vc = va = ⌊n/2⌋ + 1`.
    pub fn majority(n: usize) -> QuorumConfig {
        QuorumConfig { n, vc: n / 2 + 1, va: n / 2 + 1 }
    }

    fn validate(&self) {
        assert!(self.n >= 2);
        assert!(self.vc >= 1 && self.va >= 1);
        assert!(self.vc + self.va > self.n, "quorums must intersect: vc + va > n");
    }
}

/// Blocked retries that re-collect *immediately*, exactly like the naive
/// protocol, before exponential spacing kicks in. Partition schedules
/// change connectivity early in a run: a site's first blocked round starts
/// within a couple of `T` of the first episode, and every family in the
/// sweep grids (two-episode shapes included, with the grid's heal axis on
/// top) has settled — changes delivered, in-flight bounces returned —
/// within ~10T of it. Keeping the naive 2T cadence through that window
/// means the backoff can only thin out polls of a permanently unchanged
/// partition, which is what makes it verdict-identical to the baseline.
pub const DENSE_RETRIES: u32 = 4;

/// First spaced blocked-retry wait, in units of `T`. The jump from the
/// dense prefix is deliberately steep: by now the partition has outlived
/// [`DENSE_RETRIES`] prompt polls and nothing in the schedule is still
/// moving, so prompt re-polling buys nothing.
const RETRY_START_T: u64 = 16;

/// Blocked-retry wait cap, in units of `T`. Bounds how often a hopeless
/// minority confirms that nothing has changed before the horizon.
pub const RETRY_CAP_T: u64 = 64;

/// Which collection-machinery rewrites are active.
///
/// Every flag is individually verdict-preserving; the equivalence suite
/// checks the full optimized set against [`QuorumTuning::baseline`], which
/// reproduces the pre-rewrite behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumTuning {
    /// Adopt *decisive* state classes piggybacked on incoming
    /// `state-req`s. Undecided classes are deliberately ignored — counting
    /// them changes which quorum fires first (see the module docs).
    pub piggyback: bool,
    /// Resolve a round the moment a report shows a *decided* peer.
    pub early_resolve: bool,
    /// Exponential spacing between blocked retries after a dense
    /// naive-cadence prefix of [`DENSE_RETRIES`] rounds.
    pub backoff: bool,
}

impl QuorumTuning {
    /// The naive protocol: fixed 2T rounds, timer-only resolution,
    /// immediate re-collection while blocked.
    pub fn baseline() -> QuorumTuning {
        QuorumTuning { piggyback: false, early_resolve: false, backoff: false }
    }

    /// All rewrites on — what [`quorum_cluster_any`] builds.
    pub fn optimized() -> QuorumTuning {
        QuorumTuning { piggyback: true, early_resolve: true, backoff: true }
    }
}

impl Default for QuorumTuning {
    fn default() -> Self {
        QuorumTuning::optimized()
    }
}

/// State classes exchanged in quorum termination reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StateClass {
    NotPrepared = 0,
    Prepared = 1,
    Committed = 2,
    Aborted = 3,
}

impl StateClass {
    fn encode(self) -> u8 {
        self as u8
    }
    fn decode(raw: u8) -> StateClass {
        match raw {
            1 => StateClass::Prepared,
            2 => StateClass::Committed,
            3 => StateClass::Aborted,
            _ => StateClass::NotPrepared,
        }
    }
}

/// Collected state reports for the current round, with running tallies.
///
/// Replaces the per-round `BTreeMap<u16, StateClass>`: one preallocated
/// slot per site, rounds distinguished by a stamp (so starting a round is
/// O(1), not a reallocation), and the quorum comparisons read maintained
/// counters instead of rescanning. Duplicate reports from one site replace
/// the earlier one, exactly like the map's insert.
#[derive(Debug, Clone)]
struct ReportTally {
    /// Per-site round stamp; a slot holds a current-round report iff its
    /// stamp equals `round`.
    stamps: Vec<u32>,
    classes: Vec<StateClass>,
    round: u32,
    /// Distinct sites reported this round (self included).
    reachable: usize,
    /// Reports in `Prepared` or `Committed`.
    prepared: usize,
    /// Reports in `Committed`.
    committed: usize,
    /// Reports in `Aborted`.
    aborted: usize,
}

impl ReportTally {
    fn new(n: usize) -> ReportTally {
        ReportTally {
            stamps: vec![0; n],
            classes: vec![StateClass::NotPrepared; n],
            round: 0,
            reachable: 0,
            prepared: 0,
            committed: 0,
            aborted: 0,
        }
    }

    /// Starts a fresh, empty round.
    fn begin_round(&mut self) {
        self.round += 1;
        self.reachable = 0;
        self.prepared = 0;
        self.committed = 0;
        self.aborted = 0;
    }

    /// Clears everything, including the stamp epoch (for participant reset).
    fn reset(&mut self) {
        self.stamps.fill(0);
        self.round = 0;
        self.reachable = 0;
        self.prepared = 0;
        self.committed = 0;
        self.aborted = 0;
    }

    fn tally(&mut self, class: StateClass, delta: isize) {
        let bump = |v: &mut usize| *v = v.wrapping_add_signed(delta);
        match class {
            StateClass::NotPrepared => {}
            StateClass::Prepared => bump(&mut self.prepared),
            StateClass::Committed => {
                bump(&mut self.prepared);
                bump(&mut self.committed);
            }
            StateClass::Aborted => bump(&mut self.aborted),
        }
    }

    /// Records `site`'s report for the current round.
    fn insert(&mut self, site: u16, class: StateClass) {
        let i = site as usize;
        if self.stamps[i] == self.round {
            let old = self.classes[i];
            self.tally(old, -1);
        } else {
            self.stamps[i] = self.round;
            self.reachable += 1;
        }
        self.classes[i] = class;
        self.tally(class, 1);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QPhase {
    /// Slave: awaiting xact. Master: never.
    Initial,
    /// Master: collecting yes votes. Slave: voted yes, awaiting prepare.
    Wait,
    /// Prepared: master sent prepares / slave acked one.
    Prepared,
    Done(Decision),
}

/// One site of the quorum-commit protocol (master if `me == 0`).
pub struct QuorumSite {
    cfg: QuorumConfig,
    tuning: QuorumTuning,
    me: u16,
    vote: Vote,
    phase: QPhase,
    /// Master only: replies collected in the current round.
    replies: usize,
    /// Termination: state reports for the current collection round.
    reports: ReportTally,
    /// A collection round is in flight.
    collecting: bool,
    /// Blocked, waiting out a backoff interval before re-collecting.
    retry_wait: bool,
    /// Blocked resolutions so far (drives the dense→exponential ladder of
    /// the backoff tuning).
    retry_round: u32,
    decided: Option<Decision>,
    blocked_noted: bool,
}

impl QuorumSite {
    /// Creates site `me` of a quorum-commit cluster with the default
    /// (optimized) tuning.
    pub fn new(cfg: QuorumConfig, me: SiteId, vote: Vote) -> Self {
        cfg.validate();
        QuorumSite {
            cfg,
            tuning: QuorumTuning::default(),
            me: me.0,
            vote,
            phase: if me.0 == 0 { QPhase::Wait } else { QPhase::Initial },
            replies: 0,
            reports: ReportTally::new(cfg.n),
            collecting: false,
            retry_wait: false,
            retry_round: 0,
            decided: None,
            blocked_noted: false,
        }
    }

    /// Selects the collection-machinery tuning. Configuration, not run
    /// state: it survives [`Participant::reset`]. The equivalence suite
    /// uses this to pit [`QuorumTuning::baseline`] against the default.
    pub fn set_tuning(&mut self, tuning: QuorumTuning) {
        self.tuning = tuning;
    }

    /// The active tuning.
    pub fn tuning(&self) -> QuorumTuning {
        self.tuning
    }

    fn is_master(&self) -> bool {
        self.me == 0
    }

    fn class(&self) -> StateClass {
        match self.phase {
            QPhase::Initial | QPhase::Wait => StateClass::NotPrepared,
            QPhase::Prepared => StateClass::Prepared,
            QPhase::Done(Decision::Commit) => StateClass::Committed,
            QPhase::Done(Decision::Abort) => StateClass::Aborted,
        }
    }

    fn decide(&mut self, d: Decision, broadcast: bool, out: &mut Vec<Action>) {
        if self.decided.is_some() {
            return;
        }
        self.phase = QPhase::Done(d);
        self.decided = Some(d);
        self.collecting = false;
        self.retry_wait = false;
        out.push(Action::CancelTimer { tag: TimerTag::Proto });
        out.push(Action::CancelTimer { tag: TimerTag::QuorumCollect });
        if broadcast {
            out.push(Action::Broadcast {
                msg: CommitMsg::Kind(match d {
                    Decision::Commit => "commit",
                    Decision::Abort => "abort",
                }),
            });
        }
        out.push(Action::Decide(d));
    }

    /// Enters (or re-enters) the quorum termination protocol.
    fn start_collection(&mut self, out: &mut Vec<Action>) {
        if self.decided.is_some() {
            return;
        }
        self.collecting = true;
        self.retry_wait = false;
        self.reports.begin_round();
        self.reports.insert(self.me, self.class());
        out.push(Action::Note("quorum-collect", self.me as u64));
        out.push(Action::Broadcast { msg: CommitMsg::StateReq { state: self.class().encode() } });
        out.push(Action::CancelTimer { tag: TimerTag::Proto });
        out.push(Action::SetTimer { t_units: 2, tag: TimerTag::QuorumCollect });
    }

    /// Applies the quorum rule over the collected reports.
    fn resolve(&mut self, out: &mut Vec<Action>) {
        if !self.collecting {
            return;
        }
        if self.reports.committed > 0 {
            self.decide(Decision::Commit, true, out);
        } else if self.reports.aborted > 0 {
            self.decide(Decision::Abort, true, out);
        } else if self.reports.prepared >= self.cfg.vc {
            out.push(Action::Note("quorum-commit", self.reports.prepared as u64));
            self.decide(Decision::Commit, true, out);
        } else if self.reports.reachable >= self.cfg.va {
            out.push(Action::Note("quorum-abort", self.reports.reachable as u64));
            self.decide(Decision::Abort, true, out);
        } else {
            // Neither quorum reachable: block and retry (the defining
            // behaviour of quorum termination in the minority group).
            if !self.blocked_noted {
                self.blocked_noted = true;
                out.push(Action::Note("quorum-blocked", self.reports.reachable as u64));
            }
            let round = self.retry_round;
            self.retry_round = self.retry_round.saturating_add(1);
            if self.tuning.backoff && round >= DENSE_RETRIES {
                // The partition has outlived the dense prefix: sleep out an
                // exponentially growing interval before the next poll
                // instead of hammering the (unchanged) partition.
                self.collecting = false;
                self.retry_wait = true;
                let exp = (round - DENSE_RETRIES).min(2);
                let wait = (RETRY_START_T << exp).min(RETRY_CAP_T);
                out.push(Action::SetTimer { t_units: wait, tag: TimerTag::QuorumCollect });
            } else {
                // Naive cadence: re-collect immediately, one round per 2T.
                self.start_collection(out);
            }
        }
    }

    /// Folds one state report into the current round, if one is in flight.
    fn absorb(&mut self, site: u16, class: StateClass, out: &mut Vec<Action>) {
        if !self.collecting {
            return;
        }
        self.reports.insert(site, class);
        if self.tuning.early_resolve && matches!(class, StateClass::Committed | StateClass::Aborted)
        {
            // A decided peer settles the round outright — the quorum rule
            // adopts a seen decision before anything else, so resolving now
            // reaches the same verdict the collection timer would, just
            // without sleeping out the rest of the window. (Resolving early
            // on mere *completeness* — every request answered or bounced —
            // was tried and rejected: a blocked resolution then restarts
            // the next round off the naive 2T grid, and the drifted polls
            // sample multi-episode schedules differently, flipping
            // verdicts.)
            self.resolve(out);
        }
    }
}

impl Participant for QuorumSite {
    fn start(&mut self, out: &mut Vec<Action>) {
        if self.is_master() {
            out.push(Action::Broadcast { msg: CommitMsg::Kind("xact") });
            out.push(Action::SetTimer { t_units: MASTER_PROTO_T, tag: TimerTag::Proto });
        } else {
            out.push(Action::SetTimer { t_units: SLAVE_PROTO_T, tag: TimerTag::Proto });
        }
    }

    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        match msg {
            CommitMsg::StateReq { state } => {
                // Always answer state requests, even after deciding — that
                // is how decisions propagate back after a heal.
                out.push(Action::Send {
                    to: from,
                    msg: CommitMsg::StateRep { state: self.class().encode() },
                });
                if self.tuning.piggyback {
                    // Only a *decisive* class may join the tally from
                    // request traffic: adopting a peer's decision is
                    // monotone, but counting undecided classes shifts which
                    // quorum fires first relative to the timer-resolved
                    // baseline — the equivalence suite caught commit↔abort
                    // flips (and, with early resolution, outright atomicity
                    // violations) when every piggybacked class was counted.
                    let class = StateClass::decode(*state);
                    if matches!(class, StateClass::Committed | StateClass::Aborted) {
                        self.absorb(from.0, class, out);
                    }
                }
                return;
            }
            CommitMsg::StateRep { state } => {
                self.absorb(from.0, StateClass::decode(*state), out);
                return;
            }
            _ => {}
        }
        if self.decided.is_some() {
            return;
        }
        let CommitMsg::Kind(kind) = msg else { return };
        match (*kind, self.phase, self.is_master()) {
            ("commit", _, _) => self.decide(Decision::Commit, false, out),
            ("abort", _, _) => self.decide(Decision::Abort, false, out),
            ("no", QPhase::Wait, true) => self.decide(Decision::Abort, true, out),
            ("yes", QPhase::Wait, true) => {
                self.replies += 1;
                if self.replies == self.cfg.n - 1 {
                    self.replies = 0;
                    self.phase = QPhase::Prepared;
                    out.push(Action::Broadcast { msg: CommitMsg::Kind("prepare") });
                    out.push(Action::SetTimer { t_units: MASTER_PROTO_T, tag: TimerTag::Proto });
                }
            }
            ("ack", QPhase::Prepared, true) => {
                self.replies += 1;
                if self.replies == self.cfg.n - 1 {
                    self.decide(Decision::Commit, true, out);
                }
            }
            ("xact", QPhase::Initial, false) => match self.vote {
                Vote::Yes => {
                    self.phase = QPhase::Wait;
                    out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("yes") });
                    out.push(Action::SetTimer { t_units: SLAVE_PROTO_T, tag: TimerTag::Proto });
                }
                Vote::No => {
                    out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("no") });
                    self.decide(Decision::Abort, false, out);
                }
            },
            ("prepare", QPhase::Wait, false) => {
                self.phase = QPhase::Prepared;
                out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("ack") });
                out.push(Action::SetTimer { t_units: SLAVE_PROTO_T, tag: TimerTag::Proto });
            }
            _ => {}
        }
    }

    fn on_ud(&mut self, _original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        match msg {
            // Any bounced protocol message means a partition: run quorum
            // termination (unless it is already running or backing off).
            CommitMsg::Kind(_) if !self.collecting && !self.retry_wait => {
                self.start_collection(out);
            }
            // One of our own state requests bounced: the collection timer
            // resolves the round either way, so nothing to do.
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        match tag {
            TimerTag::Proto if self.decided.is_none() && !self.collecting && !self.retry_wait => {
                self.start_collection(out);
            }
            TimerTag::QuorumCollect => {
                if self.retry_wait {
                    // Backoff interval over: poll the group again.
                    self.retry_wait = false;
                    self.start_collection(out);
                } else {
                    self.resolve(out);
                }
            }
            _ => {}
        }
    }

    fn decision(&self) -> Option<Decision> {
        self.decided
    }

    fn state_name(&self) -> &'static str {
        match self.phase {
            QPhase::Initial => "q",
            QPhase::Wait => "w",
            QPhase::Prepared => "p",
            QPhase::Done(Decision::Commit) => "c",
            QPhase::Done(Decision::Abort) => "a",
        }
    }

    fn reset(&mut self, vote: Vote) {
        self.vote = if self.is_master() { Vote::Yes } else { vote };
        self.phase = if self.is_master() { QPhase::Wait } else { QPhase::Initial };
        self.replies = 0;
        self.reports.reset();
        self.collecting = false;
        self.retry_wait = false;
        self.retry_round = 0;
        self.decided = None;
        self.blocked_noted = false;
    }
}

/// Builds an enum-dispatched quorum-commit cluster of `n` sites.
pub fn quorum_cluster_any(cfg: QuorumConfig, votes: &[Vote]) -> Vec<crate::AnyParticipant> {
    assert_eq!(votes.len(), cfg.n - 1);
    let mut parts: Vec<crate::AnyParticipant> =
        vec![QuorumSite::new(cfg, SiteId(0), Vote::Yes).into()];
    for (i, &v) in votes.iter().enumerate() {
        parts.push(QuorumSite::new(cfg, SiteId(i as u16 + 1), v).into());
    }
    parts
}

/// Boxed form of [`quorum_cluster_any`].
pub fn quorum_cluster(cfg: QuorumConfig, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    quorum_cluster_any(cfg, votes).into_iter().map(crate::AnyParticipant::boxed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn majority_config() {
        let c = QuorumConfig::majority(5);
        assert_eq!((c.vc, c.va), (3, 3));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "quorums must intersect")]
    fn non_intersecting_quorums_rejected() {
        QuorumConfig { n: 5, vc: 2, va: 2 }.validate();
    }

    #[test]
    fn happy_path_commits() {
        let cfg = QuorumConfig::majority(3);
        let mut m = QuorumSite::new(cfg, SiteId(0), Vote::Yes);
        let mut out = Vec::new();
        m.start(&mut out);
        m.on_msg(SiteId(1), &CommitMsg::Kind("yes"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("yes"), &mut out);
        assert_eq!(m.state_name(), "p");
        m.on_msg(SiteId(1), &CommitMsg::Kind("ack"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("ack"), &mut out);
        assert_eq!(m.decision(), Some(Decision::Commit));
    }

    #[test]
    fn state_reports_always_answered() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        out.clear();
        s.on_msg(SiteId(2), &CommitMsg::StateReq { state: 0 }, &mut out);
        assert!(matches!(
            out[0],
            Action::Send { to: SiteId(2), msg: CommitMsg::StateRep { state: 0 } }
        ));
    }

    #[test]
    fn collection_commits_with_commit_quorum() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out); // suspect partition
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq { .. } })));
        // One more prepared site (the master) makes Vc = 2.
        s.on_msg(SiteId(0), &CommitMsg::StateRep { state: 1 }, &mut out);
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn minority_blocks_then_backs_off() {
        let cfg = QuorumConfig::majority(5);
        let mut s = QuorumSite::new(cfg, SiteId(4), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        // Nobody ever answers: 1 < va=3 and 0 prepared < vc=3 -> blocked.
        // The first DENSE_RETRIES blocked resolutions re-collect
        // immediately, exactly like the naive protocol.
        for _ in 0..DENSE_RETRIES {
            s.on_timer(TimerTag::QuorumCollect, &mut out);
            assert_eq!(s.decision(), None);
            assert!(out
                .iter()
                .any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq { .. } })));
            out.clear();
        }
        // The partition outlived the dense prefix: the next blocked
        // resolution sleeps instead of re-broadcasting.
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), None);
        assert!(!out
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq { .. } })));
        assert!(out.iter().any(|a| matches!(
            a,
            Action::SetTimer { t_units: RETRY_START_T, tag: TimerTag::QuorumCollect }
        )));
        // The wait elapses: now the next round's requests go out, and the
        // following blocked resolution waits twice as long.
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq { .. } })));
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::SetTimer { t_units: 32, tag: TimerTag::QuorumCollect })));
    }

    #[test]
    fn baseline_minority_blocks_and_retries_immediately() {
        let cfg = QuorumConfig::majority(5);
        let mut s = QuorumSite::new(cfg, SiteId(4), Vote::Yes);
        s.set_tuning(QuorumTuning::baseline());
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        // The naive protocol re-broadcasts back-to-back while blocked.
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), None);
        assert!(out.iter().any(|a| matches!(a, Action::Note("quorum-blocked", _))));
        assert!(out
            .iter()
            .any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq { .. } })));
    }

    #[test]
    fn abort_quorum_aborts_unprepared_group() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        s.on_msg(SiteId(2), &CommitMsg::StateRep { state: 0 }, &mut out);
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        // Two reachable unprepared sites >= va=2 -> abort.
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn adopts_observed_decision() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_timer(TimerTag::Proto, &mut out);
        s.on_msg(SiteId(2), &CommitMsg::StateRep { state: 2 }, &mut out);
        // A committed peer settles the round immediately (early resolve) —
        // no need to wait for the collection timer.
        assert_eq!(s.decision(), Some(Decision::Commit));
        let mut out = Vec::new();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn round_completeness_does_not_short_circuit() {
        // n=3 slave collecting: one reply + one bounce accounts for every
        // request, but the round still waits out the collection timer —
        // resolving blocked-or-undecided rounds early drifts the poll
        // cadence off the naive 2T grid and flips verdicts on
        // multi-episode schedules (see the module docs).
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        s.on_msg(SiteId(2), &CommitMsg::StateRep { state: 0 }, &mut out);
        s.on_ud(SiteId(0), &CommitMsg::StateReq { state: 0 }, &mut out);
        assert_eq!(s.decision(), None, "completeness alone must not resolve");
        // Two reachable (self + site 2) >= va=2 -> abort, at the timer.
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn piggybacked_decisive_class_is_adopted() {
        // A collecting site that *receives* a state-req carrying a decisive
        // class adopts the decision without a round trip of its own.
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        s.on_msg(
            SiteId(2),
            &CommitMsg::StateReq { state: StateClass::Committed.encode() },
            &mut out,
        );
        // The request is still answered, and the committed class settled
        // the round on the spot (early resolution on a decisive report).
        assert!(matches!(out[0], Action::Send { to: SiteId(2), msg: CommitMsg::StateRep { .. } }));
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn piggybacked_undecided_class_is_ignored() {
        // An *undecided* piggybacked class must not enter the tally: the
        // extra `reachable` entry would let the abort quorum fire in rounds
        // where the timer-resolved baseline stayed blocked.
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        // Site 2 is collecting too and sends us its request: prepared. If
        // the class were counted, self + site 2 would reach Vc=2 at the
        // timer; instead the round stays one report short and blocks.
        s.on_msg(
            SiteId(2),
            &CommitMsg::StateReq { state: StateClass::Prepared.encode() },
            &mut out,
        );
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), None);
        assert!(out.iter().any(|a| matches!(a, Action::Note("quorum-blocked", _))));
    }

    #[test]
    fn tuning_survives_reset() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        s.set_tuning(QuorumTuning::baseline());
        s.reset(Vote::No);
        assert_eq!(s.tuning(), QuorumTuning::baseline());
    }

    #[test]
    fn report_tally_matches_map_semantics() {
        let mut t = ReportTally::new(4);
        t.begin_round();
        t.insert(0, StateClass::Prepared);
        t.insert(1, StateClass::NotPrepared);
        assert_eq!((t.reachable, t.prepared), (2, 1));
        // Re-reporting replaces, exactly like a map insert.
        t.insert(0, StateClass::Committed);
        assert_eq!((t.reachable, t.prepared, t.committed), (2, 1, 1));
        t.insert(0, StateClass::Aborted);
        assert_eq!((t.reachable, t.prepared, t.committed, t.aborted), (2, 0, 0, 1));
        // A new round empties the tallies without touching allocations.
        t.begin_round();
        assert_eq!((t.reachable, t.prepared, t.committed, t.aborted), (0, 0, 0, 0));
        t.insert(2, StateClass::Prepared);
        assert_eq!((t.reachable, t.prepared), (1, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        #[test]
        fn state_class_decode_encode_roundtrip(raw in 0u8..=255) {
            let class = StateClass::decode(raw);
            // Canonical encodings round-trip exactly; everything else
            // collapses onto NotPrepared (encoding 0).
            if raw <= 3 {
                prop_assert_eq!(class.encode(), raw);
            } else {
                prop_assert_eq!(class, StateClass::NotPrepared);
                prop_assert_eq!(class.encode(), 0);
            }
            // decode is a retraction: encode(decode(x)) decodes to the
            // same class again.
            prop_assert_eq!(StateClass::decode(class.encode()), class);
        }
    }
}
