//! A quorum-based commit protocol (after Skeen, "A Quorum-Based Commit
//! Protocol", Berkeley Workshop 1982 — the paper’s reference \[5\]).
//!
//! This is the natural competitor to the Huang–Li termination protocol and
//! experiment E15's baseline. Normal operation is three-phase commit; when a
//! site suspects a partition (timeout or undeliverable message) it runs a
//! quorum termination protocol *within its reachable group*: it collects
//! state reports and
//!
//! * commits if it can see a commit, or at least `Vc` prepared sites;
//! * aborts if it can see an abort, or at least `Va` sites in total;
//! * otherwise **blocks** and retries.
//!
//! With `Vc + Va > n`, at most one of the two partition groups can reach
//! either quorum, so atomicity is preserved — but the minority group blocks
//! until the partition heals. The contrast with the paper's protocol (both
//! groups terminate, Theorem 9) is exactly what E15 measures.
//!
//! This is a deliberately simplified rendition: Skeen's full protocol has
//! explicit prepare-to-commit/prepare-to-abort buffer states and weighted
//! votes; equal weights and state-report collection preserve the behaviour
//! that matters for the comparison (safety via intersecting quorums,
//! blocking minorities). See ARCHITECTURE.md.

use crate::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use crate::timing::{MASTER_PROTO_T, SLAVE_PROTO_T};
use ptp_model::Decision;
use ptp_simnet::SiteId;
use std::collections::BTreeMap;

/// Quorum sizes. Safety requires `vc + va > n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Total number of sites (master included).
    pub n: usize,
    /// Commit quorum: prepared sites needed to commit during termination.
    pub vc: usize,
    /// Abort quorum: reachable sites needed to abort during termination.
    pub va: usize,
}

impl QuorumConfig {
    /// Majority quorums: `vc = va = ⌊n/2⌋ + 1`.
    pub fn majority(n: usize) -> QuorumConfig {
        QuorumConfig { n, vc: n / 2 + 1, va: n / 2 + 1 }
    }

    fn validate(&self) {
        assert!(self.n >= 2);
        assert!(self.vc >= 1 && self.va >= 1);
        assert!(self.vc + self.va > self.n, "quorums must intersect: vc + va > n");
    }
}

/// State classes exchanged in quorum termination reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StateClass {
    NotPrepared = 0,
    Prepared = 1,
    Committed = 2,
    Aborted = 3,
}

impl StateClass {
    fn encode(self) -> u8 {
        self as u8
    }
    fn decode(raw: u8) -> StateClass {
        match raw {
            1 => StateClass::Prepared,
            2 => StateClass::Committed,
            3 => StateClass::Aborted,
            _ => StateClass::NotPrepared,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QPhase {
    /// Slave: awaiting xact. Master: never.
    Initial,
    /// Master: collecting yes votes. Slave: voted yes, awaiting prepare.
    Wait,
    /// Prepared: master sent prepares / slave acked one.
    Prepared,
    Done(Decision),
}

/// One site of the quorum-commit protocol (master if `me == 0`).
pub struct QuorumSite {
    cfg: QuorumConfig,
    me: u16,
    vote: Vote,
    phase: QPhase,
    /// Master only: replies collected in the current round.
    replies: usize,
    /// Termination: collected state reports (self included), when active.
    reports: Option<BTreeMap<u16, StateClass>>,
    decided: Option<Decision>,
    blocked_noted: bool,
}

impl QuorumSite {
    /// Creates site `me` of a quorum-commit cluster.
    pub fn new(cfg: QuorumConfig, me: SiteId, vote: Vote) -> Self {
        cfg.validate();
        QuorumSite {
            cfg,
            me: me.0,
            vote,
            phase: if me.0 == 0 { QPhase::Wait } else { QPhase::Initial },
            replies: 0,
            reports: None,
            decided: None,
            blocked_noted: false,
        }
    }

    fn is_master(&self) -> bool {
        self.me == 0
    }

    fn class(&self) -> StateClass {
        match self.phase {
            QPhase::Initial | QPhase::Wait => StateClass::NotPrepared,
            QPhase::Prepared => StateClass::Prepared,
            QPhase::Done(Decision::Commit) => StateClass::Committed,
            QPhase::Done(Decision::Abort) => StateClass::Aborted,
        }
    }

    fn decide(&mut self, d: Decision, broadcast: bool, out: &mut Vec<Action>) {
        if self.decided.is_some() {
            return;
        }
        self.phase = QPhase::Done(d);
        self.decided = Some(d);
        self.reports = None;
        out.push(Action::CancelTimer { tag: TimerTag::Proto });
        out.push(Action::CancelTimer { tag: TimerTag::QuorumCollect });
        if broadcast {
            out.push(Action::Broadcast {
                msg: CommitMsg::Kind(match d {
                    Decision::Commit => "commit",
                    Decision::Abort => "abort",
                }),
            });
        }
        out.push(Action::Decide(d));
    }

    /// Enters (or re-enters) the quorum termination protocol.
    fn start_collection(&mut self, out: &mut Vec<Action>) {
        if self.decided.is_some() {
            return;
        }
        let mut reports = BTreeMap::new();
        reports.insert(self.me, self.class());
        self.reports = Some(reports);
        out.push(Action::Note("quorum-collect", self.me as u64));
        out.push(Action::Broadcast { msg: CommitMsg::StateReq });
        out.push(Action::CancelTimer { tag: TimerTag::Proto });
        out.push(Action::SetTimer { t_units: 2, tag: TimerTag::QuorumCollect });
    }

    /// Applies the quorum rule over the collected reports.
    fn resolve(&mut self, out: &mut Vec<Action>) {
        let Some(reports) = &self.reports else { return };
        let committed = reports.values().any(|c| *c == StateClass::Committed);
        let aborted = reports.values().any(|c| *c == StateClass::Aborted);
        let prepared = reports
            .values()
            .filter(|c| matches!(c, StateClass::Prepared | StateClass::Committed))
            .count();
        let reachable = reports.len();

        if committed {
            self.decide(Decision::Commit, true, out);
        } else if aborted {
            self.decide(Decision::Abort, true, out);
        } else if prepared >= self.cfg.vc {
            out.push(Action::Note("quorum-commit", prepared as u64));
            self.decide(Decision::Commit, true, out);
        } else if reachable >= self.cfg.va {
            out.push(Action::Note("quorum-abort", reachable as u64));
            self.decide(Decision::Abort, true, out);
        } else {
            // Neither quorum reachable: block and retry (the defining
            // behaviour of quorum termination in the minority group).
            if !self.blocked_noted {
                self.blocked_noted = true;
                out.push(Action::Note("quorum-blocked", reachable as u64));
            }
            self.start_collection(out);
        }
    }
}

impl Participant for QuorumSite {
    fn start(&mut self, out: &mut Vec<Action>) {
        if self.is_master() {
            out.push(Action::Broadcast { msg: CommitMsg::Kind("xact") });
            out.push(Action::SetTimer { t_units: MASTER_PROTO_T, tag: TimerTag::Proto });
        } else {
            out.push(Action::SetTimer { t_units: SLAVE_PROTO_T, tag: TimerTag::Proto });
        }
    }

    fn on_msg(&mut self, from: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        match msg {
            CommitMsg::StateReq => {
                // Always answer state requests, even after deciding — that
                // is how decisions propagate back after a heal.
                out.push(Action::Send {
                    to: from,
                    msg: CommitMsg::StateRep { state: self.class().encode() },
                });
                return;
            }
            CommitMsg::StateRep { state } => {
                if let Some(reports) = &mut self.reports {
                    reports.insert(from.0, StateClass::decode(*state));
                }
                return;
            }
            _ => {}
        }
        if self.decided.is_some() {
            return;
        }
        let CommitMsg::Kind(kind) = msg else { return };
        match (*kind, self.phase, self.is_master()) {
            ("commit", _, _) => self.decide(Decision::Commit, false, out),
            ("abort", _, _) => self.decide(Decision::Abort, false, out),
            ("no", QPhase::Wait, true) => self.decide(Decision::Abort, true, out),
            ("yes", QPhase::Wait, true) => {
                self.replies += 1;
                if self.replies == self.cfg.n - 1 {
                    self.replies = 0;
                    self.phase = QPhase::Prepared;
                    out.push(Action::Broadcast { msg: CommitMsg::Kind("prepare") });
                    out.push(Action::SetTimer { t_units: MASTER_PROTO_T, tag: TimerTag::Proto });
                }
            }
            ("ack", QPhase::Prepared, true) => {
                self.replies += 1;
                if self.replies == self.cfg.n - 1 {
                    self.decide(Decision::Commit, true, out);
                }
            }
            ("xact", QPhase::Initial, false) => match self.vote {
                Vote::Yes => {
                    self.phase = QPhase::Wait;
                    out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("yes") });
                    out.push(Action::SetTimer { t_units: SLAVE_PROTO_T, tag: TimerTag::Proto });
                }
                Vote::No => {
                    out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("no") });
                    self.decide(Decision::Abort, false, out);
                }
            },
            ("prepare", QPhase::Wait, false) => {
                self.phase = QPhase::Prepared;
                out.push(Action::Send { to: SiteId(0), msg: CommitMsg::Kind("ack") });
                out.push(Action::SetTimer { t_units: SLAVE_PROTO_T, tag: TimerTag::Proto });
            }
            _ => {}
        }
    }

    fn on_ud(&mut self, _original_dst: SiteId, msg: &CommitMsg, out: &mut Vec<Action>) {
        // Any bounced protocol message means a partition: run quorum
        // termination. Bounced termination traffic is handled by the
        // collection timer.
        if matches!(msg, CommitMsg::Kind(_)) && self.reports.is_none() {
            self.start_collection(out);
        }
    }

    fn on_timer(&mut self, tag: TimerTag, out: &mut Vec<Action>) {
        match tag {
            TimerTag::Proto if self.decided.is_none() && self.reports.is_none() => {
                self.start_collection(out);
            }
            TimerTag::QuorumCollect => self.resolve(out),
            _ => {}
        }
    }

    fn decision(&self) -> Option<Decision> {
        self.decided
    }

    fn state_name(&self) -> &'static str {
        match self.phase {
            QPhase::Initial => "q",
            QPhase::Wait => "w",
            QPhase::Prepared => "p",
            QPhase::Done(Decision::Commit) => "c",
            QPhase::Done(Decision::Abort) => "a",
        }
    }

    fn reset(&mut self, vote: Vote) {
        self.vote = if self.is_master() { Vote::Yes } else { vote };
        self.phase = if self.is_master() { QPhase::Wait } else { QPhase::Initial };
        self.replies = 0;
        self.reports = None;
        self.decided = None;
        self.blocked_noted = false;
    }
}

/// Builds an enum-dispatched quorum-commit cluster of `n` sites.
pub fn quorum_cluster_any(cfg: QuorumConfig, votes: &[Vote]) -> Vec<crate::AnyParticipant> {
    assert_eq!(votes.len(), cfg.n - 1);
    let mut parts: Vec<crate::AnyParticipant> =
        vec![QuorumSite::new(cfg, SiteId(0), Vote::Yes).into()];
    for (i, &v) in votes.iter().enumerate() {
        parts.push(QuorumSite::new(cfg, SiteId(i as u16 + 1), v).into());
    }
    parts
}

/// Boxed form of [`quorum_cluster_any`].
pub fn quorum_cluster(cfg: QuorumConfig, votes: &[Vote]) -> Vec<Box<dyn Participant>> {
    quorum_cluster_any(cfg, votes).into_iter().map(crate::AnyParticipant::boxed).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_config() {
        let c = QuorumConfig::majority(5);
        assert_eq!((c.vc, c.va), (3, 3));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "quorums must intersect")]
    fn non_intersecting_quorums_rejected() {
        QuorumConfig { n: 5, vc: 2, va: 2 }.validate();
    }

    #[test]
    fn happy_path_commits() {
        let cfg = QuorumConfig::majority(3);
        let mut m = QuorumSite::new(cfg, SiteId(0), Vote::Yes);
        let mut out = Vec::new();
        m.start(&mut out);
        m.on_msg(SiteId(1), &CommitMsg::Kind("yes"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("yes"), &mut out);
        assert_eq!(m.state_name(), "p");
        m.on_msg(SiteId(1), &CommitMsg::Kind("ack"), &mut out);
        m.on_msg(SiteId(2), &CommitMsg::Kind("ack"), &mut out);
        assert_eq!(m.decision(), Some(Decision::Commit));
    }

    #[test]
    fn state_reports_always_answered() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        out.clear();
        s.on_msg(SiteId(2), &CommitMsg::StateReq, &mut out);
        assert!(matches!(
            out[0],
            Action::Send { to: SiteId(2), msg: CommitMsg::StateRep { state: 0 } }
        ));
    }

    #[test]
    fn collection_commits_with_commit_quorum() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("prepare"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out); // suspect partition
        assert!(out.iter().any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq })));
        // One more prepared site (the master) makes Vc = 2.
        s.on_msg(SiteId(0), &CommitMsg::StateRep { state: 1 }, &mut out);
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), Some(Decision::Commit));
    }

    #[test]
    fn minority_blocks_and_retries() {
        let cfg = QuorumConfig::majority(5);
        let mut s = QuorumSite::new(cfg, SiteId(4), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        out.clear();
        // Nobody answered: 1 < va=3 and 0 prepared < vc=3 -> blocked, retry.
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), None);
        assert!(out.iter().any(|a| matches!(a, Action::Note("quorum-blocked", _))));
        assert!(out.iter().any(|a| matches!(a, Action::Broadcast { msg: CommitMsg::StateReq })));
    }

    #[test]
    fn abort_quorum_aborts_unprepared_group() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        out.clear();
        s.on_timer(TimerTag::Proto, &mut out);
        s.on_msg(SiteId(2), &CommitMsg::StateRep { state: 0 }, &mut out);
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        // Two reachable unprepared sites >= va=2 -> abort.
        assert_eq!(s.decision(), Some(Decision::Abort));
    }

    #[test]
    fn adopts_observed_decision() {
        let cfg = QuorumConfig::majority(3);
        let mut s = QuorumSite::new(cfg, SiteId(1), Vote::Yes);
        let mut out = Vec::new();
        s.start(&mut out);
        s.on_msg(SiteId(0), &CommitMsg::Kind("xact"), &mut out);
        s.on_timer(TimerTag::Proto, &mut out);
        s.on_msg(SiteId(2), &CommitMsg::StateRep { state: 2 }, &mut out);
        out.clear();
        s.on_timer(TimerTag::QuorumCollect, &mut out);
        assert_eq!(s.decision(), Some(Decision::Commit));
    }
}
