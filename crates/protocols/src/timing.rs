//! The paper's timing constants, in units of `T` (the longest end-to-end
//! network propagation delay).
//!
//! | Constant | Value | Paper source |
//! |---|---|---|
//! | [`MASTER_PROTO_T`] | 2T | Fig. 5: "length of timeout interval for the commit protocol at the master site = 2T" |
//! | [`SLAVE_PROTO_T`] | 3T | Fig. 5: "... at slave sites = 3T" |
//! | [`MASTER_COLLECT_T`] | 5T | Fig. 6: longest time for the master to receive a probe after an undeliverable prepare |
//! | [`SLAVE_W_WAIT_T`] | 6T | Fig. 7: longest time for a slave to receive a commit after timing out in `w` |
//! | [`SLAVE_P_WAIT_T`] | 5T | Fig. 9 / Sec. 6: longest time for a slave to receive UD(probe), commit or abort after timing out in `p` |
//!
//! Timers are armed on local state entry. The paper's diagrams measure from
//! phase start at the master, which is never later than state entry, so the
//! published values remain sound upper bounds under our arming convention;
//! the timing experiments (E6–E9) measure how tight they are.

/// Commit-protocol timeout at the master: `2T`.
pub const MASTER_PROTO_T: u64 = 2;

/// Commit-protocol timeout at slaves: `3T`.
pub const SLAVE_PROTO_T: u64 = 3;

/// The master's probe-collection window after the first undeliverable
/// prepare: `5T`.
pub const MASTER_COLLECT_T: u64 = 5;

/// A slave's wait for a commit/abort after timing out in `w`: `6T`.
pub const SLAVE_W_WAIT_T: u64 = 6;

/// A slave's wait after timing out in `p` before unilaterally committing
/// (transient-partitioning variant, Sec. 6): `5T`.
pub const SLAVE_P_WAIT_T: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_figures() {
        assert_eq!(MASTER_PROTO_T, 2);
        assert_eq!(SLAVE_PROTO_T, 3);
        assert_eq!(MASTER_COLLECT_T, 5);
        assert_eq!(SLAVE_W_WAIT_T, 6);
        assert_eq!(SLAVE_P_WAIT_T, 5);
    }

    #[test]
    fn slave_timeout_covers_master_round_trip() {
        // Fig. 5's reasoning: the slave's timeout must cover xact delivery
        // (T), the master's collection of all yes votes (T), and the
        // prepare's delivery (T) — measured from the master's send at 0,
        // while the slave arms at xact receipt (>= 0).
        let slack = SLAVE_PROTO_T - MASTER_PROTO_T;
        assert_eq!(slack, 1, "slave waits one extra hop beyond the master");
    }
}
