//! A minimal, dependency-free stand-in for the [Criterion] statistical
//! benchmark harness, exposing exactly the API subset this workspace's
//! benches use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, throughput annotations).
//!
//! The build environment for this repository has no network access, so the
//! real `criterion` crate cannot be fetched; this shim keeps the bench
//! sources identical to what they would be against upstream Criterion while
//! still producing useful wall-clock numbers:
//!
//! * every benchmark runs a short warm-up, then timed batches until a
//!   sampling budget is spent;
//! * the median per-iteration time is reported with its spread
//!   (min/max/stddev across samples), plus elements/sec when a
//!   [`Throughput`] was declared;
//! * `cargo bench -- <filter>` runs only benchmarks whose id contains the
//!   filter substring (same CLI shape as Criterion).
//!
//! [Criterion]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], Criterion-style.
pub use std::hint::black_box;

/// Declared throughput of one benchmark, used to derive rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Trait unifying the `&str` / `String` / [`BenchmarkId`] inputs accepted by
/// the `bench_function`-family methods.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured per-iteration samples, in nanoseconds.
    samples: Vec<f64>,
    /// Total wall-clock budget for sampling one benchmark.
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the sampling budget is
    /// spent, and records per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also primes allocator/caches) and a
        // calibration call to size batches.
        black_box(routine());
        let calibrate = Instant::now();
        black_box(routine());
        let once = calibrate.elapsed().max(Duration::from_nanos(1));

        // Aim for ~40 samples inside the budget; batch iterations so that
        // very fast routines still get meaningful per-sample durations.
        let per_sample = self.budget / 40;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let started = Instant::now();
        while started.elapsed() < self.budget || self.samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let mid = samples.len() / 2;
    if samples.is_empty() {
        0.0
    } else if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Spread statistics over per-iteration samples: `(min, max, stddev)`.
///
/// Real Criterion reports a confidence interval; this shim reports the
/// sample extremes plus the population standard deviation, which is enough
/// to spot noisy benchmarks before trusting a median-vs-median comparison.
fn spread(samples: &[f64]) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
        sum += s;
    }
    let mean = sum / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    (min, max, var.sqrt())
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The harness: owns the CLI filter and the per-benchmark time budget.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` forwards everything after `--`; cargo
        // itself appends `--bench`. Ignore flags, keep the first free arg.
        let filter =
            std::env::args().skip(1).find(|a| !a.starts_with('-')).filter(|a| !a.is_empty());
        let budget = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(300));
        Criterion { filter, budget }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), throughput: None }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Criterion {
        self.run_one(id.into_id(), None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), budget: self.budget };
        f(&mut bencher);
        let (min, max, stddev) = spread(&bencher.samples);
        let med = median(&mut bencher.samples);
        let rate = match throughput {
            Some(Throughput::Elements(n)) if med > 0.0 => {
                format!("  thrpt: {:.0} elem/s", n as f64 * 1e9 / med)
            }
            Some(Throughput::Bytes(n)) if med > 0.0 => {
                format!("  thrpt: {:.1} MiB/s", n as f64 * 1e9 / med / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!(
            "{id:<48} time: {:<12} [{} .. {}] σ {:<10} ({} samples){rate}",
            format_ns(med),
            format_ns(min),
            format_ns(max),
            format_ns(stddev),
            bencher.samples.len()
        );
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the throughput of subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.parent.run_one(full, throughput, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }

    #[test]
    fn spread_reports_min_max_stddev() {
        let (min, max, sd) = spread(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(min, 2.0);
        assert_eq!(max, 9.0);
        assert!((sd - 2.0).abs() < 1e-9, "population stddev of the classic example is 2, got {sd}");
        assert_eq!(spread(&[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher { samples: Vec::new(), budget: Duration::from_millis(5) };
        b.iter(|| 1 + 1);
        assert!(b.samples.len() >= 5);
    }
}
