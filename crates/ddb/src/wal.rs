//! Write-ahead logging with simulated stable storage.
//!
//! The paper's Sec. 2 describes the single-site recovery discipline this
//! module implements: "If a commit decision is made, a commit log which
//! contains the current state of the transaction (e.g. the update
//! information) will be stored in stable storage ... If failures occur at
//! any time before the commit log is stored, then immediately upon recovery
//! the site will abort the transaction. If failures occur after the commit
//! log is stored but before the updates are finished, all the updates will
//! be applied again when the site recovers. Because update operations are
//! idempotent ... the above scheme ensures the atomicity of the
//! transaction."
//!
//! Stable storage is simulated: records become durable only after
//! [`Wal::flush`]; a crash ([`Wal::crash`]) discards everything beyond the
//! flushed watermark, exactly like losing the OS page cache.

use crate::value::{TxnId, WriteOp};
use std::collections::BTreeMap;

/// A log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Transaction began at this site with the given write set (the "update
    /// information" the paper's commit log carries).
    Begin {
        /// The transaction.
        txn: TxnId,
        /// Its local write set.
        writes: Vec<WriteOp>,
    },
    /// The commit decision is durable. Redo must apply the writes.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// All writes are applied to the database; redo is no longer needed.
    Applied {
        /// The transaction.
        txn: TxnId,
    },
    /// The transaction aborted; its staged writes are void.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
}

impl Record {
    fn txn(&self) -> TxnId {
        match self {
            Record::Begin { txn, .. }
            | Record::Commit { txn }
            | Record::Applied { txn }
            | Record::Abort { txn } => *txn,
        }
    }
}

/// What recovery decides for one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Commit record durable, apply missing: redo these writes (idempotent).
    Redo(Vec<WriteOp>),
    /// No durable commit record: the transaction is presumed aborted.
    Discard,
    /// Fully applied or aborted before the crash; nothing to do.
    Complete,
}

/// The write-ahead log of one site.
///
/// `PartialEq` compares records *and* the durable watermark, so equality is
/// full stable-storage equivalence — what the recovery-idempotency and
/// sharded-equivalence suites pin.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Wal {
    records: Vec<Record>,
    /// Records `< flushed` are on stable storage.
    flushed: usize,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Appends a record (volatile until [`Wal::flush`]).
    pub fn append(&mut self, rec: Record) {
        self.records.push(rec);
    }

    /// Forces everything appended so far to stable storage. Returns the
    /// number of newly durable records.
    pub fn flush(&mut self) -> usize {
        let newly = self.records.len() - self.flushed;
        self.flushed = self.records.len();
        newly
    }

    /// Appends and immediately flushes — the "force write" used for commit
    /// decisions.
    pub fn append_durable(&mut self, rec: Record) {
        self.append(rec);
        self.flush();
    }

    /// Simulates a crash: all volatile records vanish.
    pub fn crash(&mut self) {
        self.records.truncate(self.flushed);
    }

    /// All durable records (what recovery sees).
    pub fn durable(&self) -> &[Record] {
        &self.records[..self.flushed]
    }

    /// Records appended but not yet flushed — what a group-commit batcher
    /// inspects to decide whether a window flush has work to do.
    pub fn unflushed(&self) -> usize {
        self.records.len() - self.flushed
    }

    /// The durable watermark: records `< watermark()` are on stable
    /// storage. Group commit acks a transaction once its commit record's
    /// index falls below this.
    pub fn watermark(&self) -> usize {
        self.flushed
    }

    /// Total records including volatile ones (for tests).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was ever logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Scans the durable log and decides, per transaction, what recovery
    /// must do (the paper's Sec. 2 discipline).
    pub fn recovery_plan(&self) -> BTreeMap<TxnId, RecoveryAction> {
        #[derive(Default)]
        struct St {
            writes: Vec<WriteOp>,
            committed: bool,
            applied: bool,
            aborted: bool,
        }
        let mut per: BTreeMap<TxnId, St> = BTreeMap::new();
        for rec in self.durable() {
            let st = per.entry(rec.txn()).or_default();
            match rec {
                Record::Begin { writes, .. } => st.writes = writes.clone(),
                Record::Commit { .. } => st.committed = true,
                Record::Applied { .. } => st.applied = true,
                Record::Abort { .. } => st.aborted = true,
            }
        }
        per.into_iter()
            .map(|(txn, st)| {
                let action = if st.applied || st.aborted {
                    RecoveryAction::Complete
                } else if st.committed {
                    RecoveryAction::Redo(st.writes)
                } else {
                    RecoveryAction::Discard
                };
                (txn, action)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Key, Value};

    fn w(key: &str, v: u64) -> WriteOp {
        WriteOp { key: Key::from(key), value: Value::from_u64(v) }
    }

    #[test]
    fn unflushed_records_lost_on_crash() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![w("a", 1)] });
        wal.crash();
        assert!(wal.is_empty());
        assert!(wal.recovery_plan().is_empty());
    }

    #[test]
    fn flushed_records_survive_crash() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![w("a", 1)] });
        wal.flush();
        wal.append(Record::Commit { txn: TxnId(1) });
        wal.crash(); // commit record was volatile
        assert_eq!(wal.durable().len(), 1);
        assert_eq!(wal.recovery_plan()[&TxnId(1)], RecoveryAction::Discard);
    }

    #[test]
    fn committed_unapplied_is_redone() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(7), writes: vec![w("a", 1), w("b", 2)] });
        wal.append_durable(Record::Commit { txn: TxnId(7) });
        wal.crash();
        match &wal.recovery_plan()[&TxnId(7)] {
            RecoveryAction::Redo(ws) => assert_eq!(ws.len(), 2),
            other => panic!("expected redo, got {other:?}"),
        }
    }

    #[test]
    fn applied_transaction_is_complete() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(7), writes: vec![w("a", 1)] });
        wal.append(Record::Commit { txn: TxnId(7) });
        wal.append_durable(Record::Applied { txn: TxnId(7) });
        assert_eq!(wal.recovery_plan()[&TxnId(7)], RecoveryAction::Complete);
    }

    #[test]
    fn aborted_transaction_is_complete() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(3), writes: vec![w("a", 1)] });
        wal.append_durable(Record::Abort { txn: TxnId(3) });
        assert_eq!(wal.recovery_plan()[&TxnId(3)], RecoveryAction::Complete);
    }

    #[test]
    fn flush_counts_new_records() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![] });
        wal.append(Record::Commit { txn: TxnId(1) });
        assert_eq!(wal.flush(), 2);
        assert_eq!(wal.flush(), 0);
    }

    #[test]
    fn unflushed_and_watermark_track_group_commit_state() {
        let mut wal = Wal::new();
        assert_eq!(wal.unflushed(), 0);
        assert_eq!(wal.watermark(), 0);
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![] });
        wal.append(Record::Commit { txn: TxnId(1) });
        assert_eq!(wal.unflushed(), 2);
        assert_eq!(wal.watermark(), 0);
        wal.flush();
        assert_eq!(wal.unflushed(), 0);
        assert_eq!(wal.watermark(), 2);
        wal.append(Record::Applied { txn: TxnId(1) });
        assert_eq!(wal.unflushed(), 1);
        wal.crash(); // volatile tail vanishes; watermark holds
        assert_eq!(wal.unflushed(), 0);
        assert_eq!(wal.watermark(), 2);
    }

    #[test]
    fn multiple_transactions_plan_independently() {
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![w("a", 1)] });
        wal.append(Record::Begin { txn: TxnId(2), writes: vec![w("b", 2)] });
        wal.append(Record::Commit { txn: TxnId(1) });
        wal.flush();
        let plan = wal.recovery_plan();
        assert!(matches!(plan[&TxnId(1)], RecoveryAction::Redo(_)));
        assert_eq!(plan[&TxnId(2)], RecoveryAction::Discard);
    }
}
