//! A tiny refcounted byte buffer.
//!
//! Offline stand-in for the `bytes` crate's `Bytes`: an `Arc<[u8]>` with the
//! constructors [`value`](crate::value) needs. Cloning bumps a refcount;
//! no slicing views are needed here, so none are provided.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Bytes backed by static data (copied once; the `bytes` crate avoids
    /// the copy, but the API shape is what matters here).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Bytes copied out of a slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(&*Bytes::from_static(b"abc"), b"abc");
        assert_eq!(&*Bytes::copy_from_slice(b"xy"), b"xy");
        assert_eq!(&*Bytes::from(vec![1u8, 2]), &[1, 2][..]);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(b"shared");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 6);
        assert!(!b.is_empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::copy_from_slice(b"a") < Bytes::copy_from_slice(b"b"));
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::copy_from_slice(b"a\n")), "b\"a\\n\"");
    }
}
