//! # ptp-ddb — a distributed database substrate for the commit protocols
//!
//! The paper's subject is transaction atomicity in a *distributed database
//! system*; this crate supplies the database so the protocols are exercised
//! the way the paper's introduction motivates: transactions acquire locks,
//! stage writes through a write-ahead log, and a blocked commit protocol
//! visibly "renders those data inaccessible to other transactions"
//! (Sec. 2).
//!
//! * [`storage`] — per-site versioned key-value store with staged write
//!   sets and idempotent apply.
//! * [`wal`] — write-ahead log over simulated stable storage, implementing
//!   the paper's Sec. 2 commit-log discipline.
//! * [`recovery`] — crash recovery by log replay (redo committed, discard
//!   uncommitted).
//! * [`locks`] — strict two-phase locking with FIFO queues.
//! * [`site`] — the site actor: storage + WAL + locks + one embedded
//!   commit-protocol participant per transaction.
//! * [`cluster`] — the cluster driver: seeds data, submits a workload at
//!   the master, runs the simulated network, returns metrics and final
//!   states.
//!
//! ```
//! use ptp_ddb::cluster::{CommitProtocol, DbCluster};
//! use ptp_ddb::site::TxnSpec;
//! use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
//! use std::collections::BTreeMap;
//!
//! let mut writes = BTreeMap::new();
//! writes.insert(1u16, vec![WriteOp { key: Key::from("k"), value: Value::from_u64(7) }]);
//! let run = DbCluster::new(3, CommitProtocol::HuangLi)
//!     .submit(0, TxnSpec { id: TxnId(1), writes })
//!     .run();
//! assert!(run.metrics.atomicity_violations().is_empty());
//! assert_eq!(run.storages[1].get(&Key::from("k")).unwrap().as_u64(), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod cluster;
pub mod locks;
pub mod recovery;
pub mod site;
pub mod storage;
pub mod value;
pub mod wal;

pub use cluster::{CommitProtocol, DbCluster, DbRun};
pub use site::{
    DbMsg, LockHold, Metrics, ParticipantBuilder, ParticipantFactory, ParticipantPool, ReadPath,
    ReadRecord, ReadSpec, SiteNode, SyncPayload, TxnSpec,
};
pub use storage::Storage;
pub use value::{Key, TxnId, Value, WriteOp};
pub use wal::{Record, RecoveryAction, Wal};
