//! The distributed-database cluster driver.
//!
//! Builds a [`SiteNode`] per site, submits a client workload at the master,
//! runs the simulation, and returns the metrics plus every site's final
//! storage and WAL — the harness behind experiment E14 and the banking
//! example.

use crate::site::{
    DbMsg, Metrics, ParticipantBuilder, ParticipantFactory, ReadSpec, SiteNode, TxnSpec,
};
use crate::storage::Storage;
use crate::value::{Key, TxnId, Value};
use ptp_protocols::api::Vote;
use ptp_protocols::interp::FsaParticipant;
use ptp_protocols::quorum::{QuorumConfig, QuorumSite};
use ptp_protocols::termination::{
    PhasePlan, TerminationMaster, TerminationSlave, TerminationVariant,
};
use ptp_simnet::{
    Actor, DelayModel, NetConfig, PartitionEngine, RunReport, SimTime, Simulation, SiteId, Trace,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

/// Which commit protocol the cluster's transactions run.
///
/// # Examples
///
/// ```
/// use ptp_ddb::cluster::CommitProtocol;
/// use ptp_simnet::SiteId;
///
/// assert_eq!(CommitProtocol::HuangLi.name(), "HL-3PC");
///
/// // The builder is group-size generic: the same handle mints a master
/// // (index 0) for a 3-site group and a slave for a 5-site one, which is
/// // how `ptp-shard` runs one protocol at several replica-group sizes.
/// let builder = CommitProtocol::HuangLi.participant_builder();
/// let _master = builder(SiteId(0), 3);
/// let _slave = builder(SiteId(2), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitProtocol {
    /// Plain two-phase commit (Fig. 1): blocks under partitions — the
    /// baseline whose lock-hold times E14 measures.
    TwoPhase,
    /// Modified 3PC + the Huang–Li termination protocol (transient
    /// variant): terminates on both sides of a simple partition.
    HuangLi,
    /// Quorum commit: terminates only where a quorum is reachable.
    QuorumMajority,
}

impl CommitProtocol {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CommitProtocol::TwoPhase => "2PC",
            CommitProtocol::HuangLi => "HL-3PC",
            CommitProtocol::QuorumMajority => "Quorum",
        }
    }

    /// The [`ParticipantBuilder`] for this protocol: `(site, n)` yields the
    /// participant for virtual site `site` of an `n`-site protocol group
    /// (`site == SiteId(0)` is the group's master). The builder is fully
    /// group-size generic — one handle serves every replica-group size a
    /// sharded cluster runs, caching derived per-size protocol specs — which
    /// is what lets `ptp-shard` pool participants per `(site, group size)`
    /// through the same [`ParticipantFactory`] machinery as [`DbCluster`].
    pub fn participant_builder(self) -> ParticipantBuilder {
        match self {
            CommitProtocol::TwoPhase => {
                // One FSA spec per distinct group size, built on first use:
                // a flat cluster only ever asks for its own n, so this is
                // exactly the old one-spec-per-cluster behaviour there.
                let specs: RefCell<BTreeMap<usize, Arc<ptp_model::ProtocolSpec>>> =
                    RefCell::new(BTreeMap::new());
                Rc::new(move |site: SiteId, n: usize| {
                    let spec = specs
                        .borrow_mut()
                        .entry(n)
                        .or_insert_with(|| Arc::new(ptp_model::protocols::two_phase(n)))
                        .clone();
                    FsaParticipant::new(spec, site.index(), Vote::Yes, None).into()
                })
            }
            CommitProtocol::HuangLi => Rc::new(move |site: SiteId, n: usize| {
                if site == SiteId(0) {
                    TerminationMaster::new(PhasePlan::three_phase(), n).into()
                } else {
                    TerminationSlave::new(
                        PhasePlan::three_phase(),
                        site,
                        Vote::Yes,
                        TerminationVariant::Transient,
                    )
                    .into()
                }
            }),
            CommitProtocol::QuorumMajority => Rc::new(move |site: SiteId, n: usize| {
                QuorumSite::new(QuorumConfig::majority(n), site, Vote::Yes).into()
            }),
        }
    }
}

/// A cluster specification.
///
/// # Examples
///
/// ```
/// use ptp_ddb::cluster::{CommitProtocol, DbCluster};
/// use ptp_ddb::site::TxnSpec;
/// use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
/// use std::collections::BTreeMap;
///
/// let mut writes = BTreeMap::new();
/// writes.insert(1u16, vec![WriteOp { key: Key::from("k"), value: Value::from_u64(7) }]);
/// let run = DbCluster::new(3, CommitProtocol::HuangLi)
///     .seed(1, Key::from("k"), Value::from_u64(0))
///     .submit(0, TxnSpec { id: TxnId(1), writes })
///     .run();
/// assert!(run.metrics.atomicity_violations().is_empty());
/// assert_eq!(run.storages[1].get(&Key::from("k")).unwrap().as_u64(), Some(7));
/// // The WAL of every site comes back too: site 1 force-wrote the commit.
/// assert!(run.wals[1].durable().iter().any(|r| matches!(
///     r,
///     ptp_ddb::wal::Record::Commit { txn } if *txn == TxnId(1)
/// )));
/// ```
pub struct DbCluster {
    /// Number of sites.
    pub n: usize,
    /// The commit protocol.
    pub protocol: CommitProtocol,
    /// Initial committed data: `(site, key, value)`.
    pub seed: Vec<(u16, Key, Value)>,
    /// Client workload: `(submit tick, spec)`, submitted at the master.
    pub workload: Vec<(u64, TxnSpec)>,
    /// Read-only workload: `(submit tick, spec)`, served at the master
    /// under shared locks without a commit round.
    pub read_workload: Vec<(u64, ReadSpec)>,
    /// Network partition schedule.
    pub partition: PartitionEngine,
    /// Message delays.
    pub delay: DelayModel,
    /// Network configuration.
    pub config: NetConfig,
    /// Site failures to inject (crash / crash-recover).
    pub failures: Vec<ptp_simnet::FailureSpec>,
    /// Envelope-level faults (duplicate / reorder / drop) to arm.
    pub env_faults: Vec<ptp_simnet::EnvelopeFault>,
    /// Degraded-network delay windows to arm.
    pub degrades: Vec<ptp_simnet::DegradeWindow>,
    /// Recycle protocol participants through per-site free-lists (the
    /// default). `false` constructs one participant per transaction — the
    /// pre-pool behaviour, kept as the equivalence/bench baseline.
    pub reuse_participants: bool,
}

/// Everything a cluster run produces.
pub struct DbRun {
    /// Decisions, submissions, lock-hold intervals.
    pub metrics: Metrics,
    /// Full network trace.
    pub trace: Trace,
    /// Simulator report.
    pub report: RunReport,
    /// Final committed storage per site.
    pub storages: Vec<Storage>,
    /// Final write-ahead log per site (durable + volatile records).
    pub wals: Vec<crate::wal::Wal>,
    /// Transactions still undecided per site (blocked) at the end.
    pub blocked: Vec<Vec<TxnId>>,
    /// Protocol participants constructed across all sites.
    pub participants_constructed: usize,
    /// Pool acquisitions served off the free-lists across all sites.
    pub participants_reused: usize,
}

impl DbCluster {
    /// A fresh cluster with no seed data and no workload.
    pub fn new(n: usize, protocol: CommitProtocol) -> DbCluster {
        DbCluster {
            n,
            protocol,
            seed: Vec::new(),
            workload: Vec::new(),
            read_workload: Vec::new(),
            partition: PartitionEngine::always_connected(),
            delay: DelayModel::Fixed(700),
            config: NetConfig::default(),
            failures: Vec::new(),
            env_faults: Vec::new(),
            degrades: Vec::new(),
            reuse_participants: true,
        }
    }

    /// Constructs one participant per transaction instead of pooling —
    /// the equivalence/bench baseline.
    pub fn construct_per_txn(mut self) -> DbCluster {
        self.reuse_participants = false;
        self
    }

    /// Seeds a key at a site.
    pub fn seed(mut self, site: u16, key: Key, value: Value) -> DbCluster {
        self.seed.push((site, key, value));
        self
    }

    /// Adds a transaction submitted at tick `at`.
    pub fn submit(mut self, at: u64, spec: TxnSpec) -> DbCluster {
        self.workload.push((at, spec));
        self
    }

    /// Adds a read-only transaction submitted at tick `at`. Read ids must
    /// be disjoint from write-transaction ids.
    pub fn submit_read(mut self, at: u64, spec: ReadSpec) -> DbCluster {
        self.read_workload.push((at, spec));
        self
    }

    /// Sets the partition schedule.
    pub fn partition(mut self, partition: PartitionEngine) -> DbCluster {
        self.partition = partition;
        self
    }

    /// Sets the delay model.
    pub fn delay(mut self, delay: DelayModel) -> DbCluster {
        self.delay = delay;
        self
    }

    /// Injects a site failure (crash or crash-recover). On recovery the
    /// site replays its durable WAL: committed-unapplied transactions are
    /// redone, everything else is presumed aborted (Sec. 2).
    pub fn fail(mut self, spec: ptp_simnet::FailureSpec) -> DbCluster {
        self.failures.push(spec);
        self
    }

    /// Arms an envelope-level fault (duplicate / reorder / drop) matched
    /// against the multiplexed `DbMsg` traffic by wire-kind and endpoints.
    pub fn env_fault(mut self, fault: ptp_simnet::EnvelopeFault) -> DbCluster {
        self.env_faults.push(fault);
        self
    }

    /// Arms a degraded-network delay window.
    pub fn degrade(mut self, window: ptp_simnet::DegradeWindow) -> DbCluster {
        self.degrades.push(window);
        self
    }

    /// Runs the cluster to quiescence (or the horizon).
    pub fn run(self) -> DbRun {
        let metrics = Rc::new(RefCell::new(Metrics::default()));
        let builder = self.protocol.participant_builder();
        let factory = if self.reuse_participants {
            ParticipantFactory::pooled(builder)
        } else {
            ParticipantFactory::construct_per_txn(builder)
        };

        let mut seeds: BTreeMap<u16, Storage> = BTreeMap::new();
        for (site, key, value) in self.seed {
            seeds.entry(site).or_default().seed(key, value);
        }

        let actors: Vec<Box<dyn Actor<DbMsg>>> = (0..self.n as u16)
            .map(|i| {
                let workload = if i == 0 { self.workload.clone() } else { Vec::new() };
                let reads = if i == 0 { self.read_workload.clone() } else { Vec::new() };
                Box::new(
                    SiteNode::new(
                        SiteId(i),
                        self.n,
                        &factory,
                        metrics.clone(),
                        workload,
                        seeds.remove(&i).unwrap_or_default(),
                    )
                    .with_reads(reads),
                ) as Box<dyn Actor<DbMsg>>
            })
            .collect();

        let mut sim =
            Simulation::new(self.config, actors, self.partition, &self.delay, self.failures);
        if !self.env_faults.is_empty() {
            sim.set_envelope_faults(&self.env_faults);
        }
        if !self.degrades.is_empty() {
            sim.set_degrades(&self.degrades);
        }
        let (actors, trace, report) = sim.run();

        let mut storages = Vec::with_capacity(self.n);
        let mut wals = Vec::with_capacity(self.n);
        let mut blocked = Vec::with_capacity(self.n);
        let mut participants_constructed = 0;
        let mut participants_reused = 0;
        for actor in &actors {
            let node = actor
                .as_any()
                .and_then(|a| a.downcast_ref::<SiteNode>())
                .expect("cluster actors are SiteNodes");
            storages.push(node.storage().clone());
            wals.push(node.wal().clone());
            blocked.push(node.active_txns());
            participants_constructed += node.pool().constructed();
            participants_reused += node.pool().reused();
        }
        drop(actors);
        let metrics = Rc::try_unwrap(metrics).expect("metrics uniquely owned").into_inner();
        DbRun {
            metrics,
            trace,
            report,
            storages,
            wals,
            blocked,
            participants_constructed,
            participants_reused,
        }
    }
}

/// Convenience: the horizon instant of a run's config (for
/// [`Metrics::hold_durations`]).
pub fn horizon(config: &NetConfig) -> SimTime {
    config.max_time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::WriteOp;
    use ptp_simnet::{PartitionSpec, SimTime};

    fn transfer_spec(id: u32, amount: u64) -> TxnSpec {
        let mut writes = BTreeMap::new();
        writes.insert(
            1u16,
            vec![WriteOp { key: Key::from("acct-a"), value: Value::from_u64(100 - amount) }],
        );
        writes.insert(
            2u16,
            vec![WriteOp { key: Key::from("acct-b"), value: Value::from_u64(amount) }],
        );
        TxnSpec { id: TxnId(id), writes }
    }

    fn seeded(n: usize, protocol: CommitProtocol) -> DbCluster {
        DbCluster::new(n, protocol).seed(1, Key::from("acct-a"), Value::from_u64(100)).seed(
            2,
            Key::from("acct-b"),
            Value::from_u64(0),
        )
    }

    #[test]
    fn failure_free_transfer_commits_everywhere() {
        for protocol in
            [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority]
        {
            let run = seeded(3, protocol).submit(0, transfer_spec(1, 30)).run();
            assert!(run.metrics.atomicity_violations().is_empty());
            assert_eq!(
                run.storages[1].get(&Key::from("acct-a")).unwrap().as_u64(),
                Some(70),
                "{}",
                protocol.name()
            );
            assert_eq!(run.storages[2].get(&Key::from("acct-b")).unwrap().as_u64(), Some(30));
            assert!(run.blocked.iter().all(|b| b.is_empty()));
        }
    }

    #[test]
    fn duplicated_xact_envelopes_leave_the_workload_clean() {
        // The PR-3 duplicate-delivery class, reproduced through the armed
        // envelope-fault path instead of a hand-scripted driver (see
        // `site::tests::duplicate_xact_for_parked_txn_is_ignored`): the
        // network duplicates every xact send; parked and fresh transactions
        // alike must absorb the replays without double-acquiring locks.
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .submit(10_000, transfer_spec(2, 55))
            .env_fault(ptp_simnet::EnvelopeFault::duplicate(
                ptp_simnet::EnvelopeMatch::kind("xact"),
                ptp_simnet::SimDuration(350),
            ))
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        assert!(run.blocked.iter().all(|b| b.is_empty()), "{:?}", run.blocked);
        // The last committed transfer's values survive on both shards.
        assert_eq!(run.storages[1].get(&Key::from("acct-a")).unwrap().as_u64(), Some(45));
        assert_eq!(run.storages[2].get(&Key::from("acct-b")).unwrap().as_u64(), Some(55));
    }

    #[test]
    fn degraded_windows_only_slow_the_run() {
        let slow = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .degrade(ptp_simnet::DegradeWindow::new(SimTime(0), Some(SimTime(20_000)), 900, 1000))
            .run();
        assert!(slow.metrics.atomicity_violations().is_empty());
        assert_eq!(slow.storages[1].get(&Key::from("acct-a")).unwrap().as_u64(), Some(70));
        assert!(slow.blocked.iter().all(|b| b.is_empty()));
    }

    #[test]
    fn two_pc_blocks_and_holds_locks_under_partition() {
        // Cut slave 2 off right after it votes: with 2PC it can never learn
        // the decision and holds its lock to the horizon.
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(1500),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )]);
        let run = seeded(3, CommitProtocol::TwoPhase)
            .submit(0, transfer_spec(1, 30))
            .partition(partition)
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        assert!(!run.blocked[2].is_empty(), "site 2 must block");
        let holds = run.metrics.hold_durations(SimTime(200_000));
        assert!(
            holds.iter().any(|(_, site, _, still)| *site == SiteId(2) && *still),
            "site 2 still holds locks: {holds:?}"
        );
    }

    #[test]
    fn huang_li_terminates_and_releases_under_partition() {
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(1500),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )]);
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .partition(partition)
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        assert!(run.blocked.iter().all(|b| b.is_empty()), "nobody blocks: {:?}", run.blocked);
        let holds = run.metrics.hold_durations(SimTime(200_000));
        assert!(holds.iter().all(|(_, _, _, still)| !still), "all locks released");
    }

    #[test]
    fn conflicting_transactions_serialize_on_a_fast_network() {
        // Two transfers touching the same keys, submitted 100 ticks apart.
        // With 200-tick delays the first finishes well inside the second's
        // 2T master timeout, so the second waits for the locks and then
        // commits.
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .submit(100, transfer_spec(2, 60))
            .delay(DelayModel::Fixed(200))
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        // The second transfer's values win.
        assert_eq!(run.storages[1].get(&Key::from("acct-a")).unwrap().as_u64(), Some(40));
        assert_eq!(run.storages[2].get(&Key::from("acct-b")).unwrap().as_u64(), Some(60));
        // Its lock wait is visible in the trace.
        assert!(run
            .trace
            .events()
            .iter()
            .any(|e| matches!(e, ptp_simnet::TraceEvent::Note { label: "lock-wait", .. })));
    }

    #[test]
    fn lock_wait_beyond_master_timeout_aborts_the_waiter() {
        // With 700-tick delays the first transfer holds its locks past the
        // second's 2T master timeout: the second aborts (timeout-based
        // deadlock/overload resolution), the first commits.
        use ptp_model::Decision;
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .submit(100, transfer_spec(2, 60))
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        let d1: Vec<Decision> =
            run.metrics.decisions[&TxnId(1)].values().map(|(d, _)| *d).collect();
        let d2: Vec<Decision> =
            run.metrics.decisions[&TxnId(2)].values().map(|(d, _)| *d).collect();
        assert!(d1.iter().all(|d| *d == Decision::Commit), "{d1:?}");
        assert!(d2.iter().all(|d| *d == Decision::Abort), "{d2:?}");
        // First transfer's values survive.
        assert_eq!(run.storages[1].get(&Key::from("acct-a")).unwrap().as_u64(), Some(70));
    }

    #[test]
    fn crashed_slave_recovers_and_discards_uncommitted() {
        // Slave 2 crashes right after staging (voted, undecided) and comes
        // back later: recovery presumes the transaction aborted; the rest
        // of the cluster aborted on timeout long before — consistent.
        use ptp_simnet::FailureSpec;
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .fail(FailureSpec::crash_recover(SiteId(2), SimTime(1200), SimTime(20_000)))
            .run();
        assert!(run.trace.first_note(SiteId(2), "recovered").is_some(), "recovery hook must run");
        assert!(run.blocked[2].is_empty(), "no active transactions after recovery");
        // Its account was never touched: the transaction was presumed
        // aborted during recovery.
        assert_eq!(run.storages[2].get(&Key::from("acct-b")).unwrap().as_u64(), Some(0));
        assert!(run.metrics.atomicity_violations().is_empty());
    }

    #[test]
    fn crash_closes_in_flight_lock_holds_at_crash_time() {
        // Slave 2 crashes at 1200 with txn 1 staged (locks held, protocol in
        // flight). Its hold interval must close at the crash instant — not
        // run to the horizon, which would inflate E14's blocked-lock
        // numbers.
        use ptp_simnet::FailureSpec;
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .fail(FailureSpec::crash_recover(SiteId(2), SimTime(1200), SimTime(20_000)))
            .run();
        let site2: Vec<_> = run.metrics.lock_holds.iter().filter(|h| h.site == SiteId(2)).collect();
        assert!(!site2.is_empty(), "slave 2 acquired locks before the crash");
        for hold in site2 {
            assert_eq!(hold.to, Some(SimTime(1200)), "hold must close at the crash: {hold:?}");
        }
        assert!(run.metrics.hold_durations(SimTime(200_000)).iter().all(|(_, _, _, still)| !still));
    }

    #[test]
    fn permanent_crash_also_closes_lock_holds() {
        // No recovery ever happens, so only the crash hook can close the
        // interval.
        use ptp_simnet::FailureSpec;
        let run = seeded(3, CommitProtocol::HuangLi)
            .submit(0, transfer_spec(1, 30))
            .fail(FailureSpec::crash(SiteId(2), SimTime(1200)))
            .run();
        for hold in run.metrics.lock_holds.iter().filter(|h| h.site == SiteId(2)) {
            assert_eq!(hold.to, Some(SimTime(1200)), "{hold:?}");
        }
    }

    #[test]
    fn pooled_cluster_constructs_once_per_site_for_sequential_txns() {
        // Ten non-overlapping transactions: each site needs exactly one
        // participant, reused nine times.
        let mut cluster = seeded(3, CommitProtocol::HuangLi);
        for i in 0..10u32 {
            cluster = cluster.submit(i as u64 * 8000, transfer_spec(i + 1, 1));
        }
        let run = cluster.run();
        assert!(run.metrics.atomicity_violations().is_empty());
        assert_eq!(run.participants_constructed, 3);
        assert_eq!(run.participants_reused, 27);

        let mut per_txn = seeded(3, CommitProtocol::HuangLi).construct_per_txn();
        for i in 0..10u32 {
            per_txn = per_txn.submit(i as u64 * 8000, transfer_spec(i + 1, 1));
        }
        let baseline = per_txn.run();
        assert_eq!(baseline.participants_constructed, 30);
        assert_eq!(baseline.participants_reused, 0);
        assert_eq!(run.metrics, baseline.metrics, "pooling must be behaviour-neutral");
    }

    #[test]
    fn consistency_check_passes_under_partition_sweep() {
        // A handful of partition instants; the HL cluster must never
        // mix decisions.
        for at in [500u64, 1000, 1500, 2000, 2500, 3000, 4000] {
            let partition = PartitionEngine::new(vec![PartitionSpec::simple(
                SimTime(at),
                vec![SiteId(0), SiteId(1)],
                vec![SiteId(2)],
            )]);
            let run = seeded(3, CommitProtocol::HuangLi)
                .submit(0, transfer_spec(1, 30))
                .partition(partition)
                .run();
            assert!(
                run.metrics.atomicity_violations().is_empty(),
                "violation at partition time {at}"
            );
            assert!(run.blocked.iter().all(|b| b.is_empty()), "blocked at {at}");
        }
    }
}
