//! Strict two-phase locking.
//!
//! The paper's motivation for nonblocking commit (Sec. 2): "the locks
//! acquired by the blocked transaction cannot be relinquished, rendering
//! those data inaccessible to other transactions." This lock manager is
//! what makes that cost measurable in experiment E14: every lock is held
//! from acquisition until the owning transaction's commit protocol
//! terminates.
//!
//! Shared/exclusive locks with FIFO wait queues. Deadlocks are broken by
//! the transaction layer's timeouts (a waiter that never gets its locks
//! never votes, the commit protocol times out, and the abort releases
//! everything).

use crate::value::{Key, TxnId};
use std::collections::{BTreeMap, VecDeque};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) — compatible with other shared locks.
    Shared,
    /// Exclusive (write).
    Exclusive,
}

/// Result of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockGrant {
    /// Granted immediately.
    Granted,
    /// Queued behind conflicting holders.
    Waiting,
}

#[derive(Debug, Clone)]
struct LockEntry {
    holders: Vec<(TxnId, LockMode)>,
    queue: VecDeque<(TxnId, LockMode)>,
}

/// A per-site lock table.
#[derive(Debug, Default, Clone)]
pub struct LockTable {
    locks: BTreeMap<Key, LockEntry>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Requests a lock. Re-requests by a holder are granted (no upgrade
    /// support: requesting exclusive while holding shared conflicts like
    /// any other request unless the txn is the sole holder).
    pub fn acquire(&mut self, txn: TxnId, key: Key, mode: LockMode) -> LockGrant {
        let entry = self
            .locks
            .entry(key)
            .or_insert_with(|| LockEntry { holders: Vec::new(), queue: VecDeque::new() });

        if let Some(pos) = entry.holders.iter().position(|(t, _)| *t == txn) {
            let held = entry.holders[pos].1;
            match (held, mode) {
                (LockMode::Exclusive, _) | (_, LockMode::Shared) => return LockGrant::Granted,
                (LockMode::Shared, LockMode::Exclusive) => {
                    if entry.holders.len() == 1 {
                        entry.holders[pos].1 = LockMode::Exclusive;
                        return LockGrant::Granted;
                    }
                    entry.queue.push_back((txn, mode));
                    return LockGrant::Waiting;
                }
            }
        }

        let compatible = entry.queue.is_empty()
            && match mode {
                LockMode::Shared => entry.holders.iter().all(|(_, m)| *m == LockMode::Shared),
                LockMode::Exclusive => entry.holders.is_empty(),
            };
        if compatible {
            entry.holders.push((txn, mode));
            LockGrant::Granted
        } else {
            entry.queue.push_back((txn, mode));
            LockGrant::Waiting
        }
    }

    /// Releases every lock (and queued request) of `txn`. Returns the
    /// transactions that acquired locks as a result — the site layer
    /// re-checks whether they can now proceed.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<TxnId> {
        let mut promoted = Vec::new();
        let mut empty_keys = Vec::new();
        for (key, entry) in self.locks.iter_mut() {
            entry.holders.retain(|(t, _)| *t != txn);
            entry.queue.retain(|(t, _)| *t != txn);
            // Promote from the queue head while compatible. The requester's
            // own shared hold never conflicts with its queued exclusive
            // upgrade — counting it would strand the upgrade forever.
            while let Some(&(next, mode)) = entry.queue.front() {
                let ok = match mode {
                    LockMode::Shared => entry.holders.iter().all(|(_, m)| *m == LockMode::Shared),
                    LockMode::Exclusive => entry.holders.iter().all(|(t, _)| *t == next),
                };
                if !ok {
                    break;
                }
                entry.queue.pop_front();
                match entry.holders.iter().position(|(t, _)| *t == next) {
                    Some(pos) => entry.holders[pos].1 = mode, // upgrade in place
                    None => entry.holders.push((next, mode)),
                }
                promoted.push(next);
            }
            if entry.holders.is_empty() && entry.queue.is_empty() {
                empty_keys.push(key.clone());
            }
        }
        for k in empty_keys {
            self.locks.remove(&k);
        }
        promoted.sort_by_key(|t| t.0);
        promoted.dedup();
        promoted
    }

    /// Does `txn` hold a lock on `key` (in at least the given mode)?
    pub fn holds(&self, txn: TxnId, key: &Key, mode: LockMode) -> bool {
        self.locks.get(key).is_some_and(|e| {
            e.holders
                .iter()
                .any(|(t, m)| *t == txn && (*m == LockMode::Exclusive || mode == LockMode::Shared))
        })
    }

    /// Is the key currently locked by anyone?
    pub fn is_locked(&self, key: &Key) -> bool {
        self.locks.get(key).is_some_and(|e| !e.holders.is_empty())
    }

    /// Number of transactions waiting across all keys.
    pub fn waiting_count(&self) -> usize {
        self.locks.values().map(|e| e.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn exclusive_conflicts_queue() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Exclusive), LockGrant::Granted);
        assert_eq!(lt.acquire(TxnId(2), k("a"), LockMode::Exclusive), LockGrant::Waiting);
        assert_eq!(lt.waiting_count(), 1);
        let promoted = lt.release_all(TxnId(1));
        assert_eq!(promoted, vec![TxnId(2)]);
        assert!(lt.holds(TxnId(2), &k("a"), LockMode::Exclusive));
    }

    #[test]
    fn shared_locks_coexist() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Shared), LockGrant::Granted);
        assert_eq!(lt.acquire(TxnId(2), k("a"), LockMode::Shared), LockGrant::Granted);
        assert_eq!(lt.acquire(TxnId(3), k("a"), LockMode::Exclusive), LockGrant::Waiting);
    }

    #[test]
    fn exclusive_blocks_shared_and_fifo_applies() {
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Exclusive);
        assert_eq!(lt.acquire(TxnId(2), k("a"), LockMode::Shared), LockGrant::Waiting);
        assert_eq!(lt.acquire(TxnId(3), k("a"), LockMode::Shared), LockGrant::Waiting);
        let promoted = lt.release_all(TxnId(1));
        // Both shared waiters promote together.
        assert_eq!(promoted, vec![TxnId(2), TxnId(3)]);
    }

    #[test]
    fn reacquire_held_lock_is_granted() {
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Exclusive);
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Exclusive), LockGrant::Granted);
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Shared), LockGrant::Granted);
    }

    #[test]
    fn sole_holder_upgrades() {
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Shared);
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Exclusive), LockGrant::Granted);
        assert!(lt.holds(TxnId(1), &k("a"), LockMode::Exclusive));
    }

    #[test]
    fn upgrade_with_other_readers_waits() {
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Shared);
        lt.acquire(TxnId(2), k("a"), LockMode::Shared);
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Exclusive), LockGrant::Waiting);
    }

    #[test]
    fn queued_upgrade_promotes_when_other_reader_leaves() {
        // txn 1 holds Shared and queues an Exclusive upgrade behind txn 2's
        // Shared hold. When txn 2 releases, the promotion check must not
        // count txn 1's own shared hold as a conflicting holder.
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Shared);
        lt.acquire(TxnId(2), k("a"), LockMode::Shared);
        assert_eq!(lt.acquire(TxnId(1), k("a"), LockMode::Exclusive), LockGrant::Waiting);
        let promoted = lt.release_all(TxnId(2));
        assert_eq!(promoted, vec![TxnId(1)]);
        assert!(lt.holds(TxnId(1), &k("a"), LockMode::Exclusive));
        assert_eq!(lt.waiting_count(), 0);
        // The upgrade replaced the shared hold — releasing once frees the key.
        lt.release_all(TxnId(1));
        assert!(!lt.is_locked(&k("a")));
    }

    #[test]
    fn queued_upgrade_still_waits_for_later_readers_behind_it() {
        // FIFO discipline: txn 1's queued upgrade is at the head, so a
        // shared request queued after it must wait until the upgrade runs.
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Shared);
        lt.acquire(TxnId(2), k("a"), LockMode::Shared);
        lt.acquire(TxnId(1), k("a"), LockMode::Exclusive);
        lt.acquire(TxnId(3), k("a"), LockMode::Shared);
        let promoted = lt.release_all(TxnId(2));
        // Only the upgrade promotes; txn 3 stays queued behind the now
        // exclusive txn 1.
        assert_eq!(promoted, vec![TxnId(1)]);
        assert_eq!(lt.waiting_count(), 1);
        assert_eq!(lt.release_all(TxnId(1)), vec![TxnId(3)]);
    }

    #[test]
    fn release_clears_queued_requests_too() {
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Exclusive);
        lt.acquire(TxnId(2), k("a"), LockMode::Exclusive);
        lt.release_all(TxnId(2)); // give up while waiting
        assert_eq!(lt.waiting_count(), 0);
        let promoted = lt.release_all(TxnId(1));
        assert!(promoted.is_empty());
        assert!(!lt.is_locked(&k("a")));
    }

    #[test]
    fn queue_preserves_fifo_order_for_exclusives() {
        let mut lt = LockTable::new();
        lt.acquire(TxnId(1), k("a"), LockMode::Exclusive);
        lt.acquire(TxnId(2), k("a"), LockMode::Exclusive);
        lt.acquire(TxnId(3), k("a"), LockMode::Exclusive);
        assert_eq!(lt.release_all(TxnId(1)), vec![TxnId(2)]);
        assert_eq!(lt.release_all(TxnId(2)), vec![TxnId(3)]);
    }

    #[test]
    fn locked_predicate() {
        let mut lt = LockTable::new();
        assert!(!lt.is_locked(&k("a")));
        lt.acquire(TxnId(1), k("a"), LockMode::Shared);
        assert!(lt.is_locked(&k("a")));
    }
}
