//! A database site: storage engine + WAL + lock manager + one embedded
//! commit-protocol participant per in-flight distributed transaction.
//!
//! The site is a `ptp-simnet` actor speaking [`DbMsg`] — the commit
//! protocol's messages wrapped with a transaction id (and, on `xact`, the
//! destination site's write set, which is how the paper's "Xact" message
//! carries "the transaction"). Site 0 is the master for every transaction
//! (the paper's model); the cluster driver schedules client submissions
//! there.
//!
//! Lifecycle of a transaction at a slave:
//! 1. `xact` arrives with the local write set → acquire exclusive locks
//!    (strict 2PL). If a lock is busy, the xact parks in the lock queue —
//!    the commit protocol for it has not started, so the master's 2T
//!    timeout will eventually abort the transaction (timeout-based deadlock
//!    and overload resolution).
//! 2. Locks granted → `Begin` WAL record, writes staged, the protocol
//!    participant is created and fed the xact (it votes).
//! 3. The participant's `Decide(Commit)` → durable `Commit` record → apply
//!    writes → `Applied` record → release locks. `Decide(Abort)` → durable
//!    `Abort` record → discard → release locks.
//!
//! Every lock-hold interval is reported to the cluster metrics — the data
//! behind experiment E14's availability comparison.

use crate::locks::{LockGrant, LockMode, LockTable};
use crate::storage::Storage;
use crate::value::{Key, TxnId, Value, WriteOp};
use crate::wal::{Record, Wal};
use ptp_model::Decision;
use ptp_protocols::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use ptp_protocols::AnyParticipant;
use ptp_simnet::{Actor, Ctx, Envelope, Payload, SimTime, SiteId, TimerHandle};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// The wire format of the distributed database: commit-protocol messages
/// multiplexed by transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbMsg {
    /// Which transaction this belongs to.
    pub txn: TxnId,
    /// The commit-protocol message.
    pub inner: CommitMsg,
    /// On `xact` only: the destination site's write set. Anti-entropy
    /// `sync-resp` reuses the field for its key/value delta.
    pub writes: Option<Vec<WriteOp>>,
    /// Anti-entropy payload (`sync-req`/`sync-resp` only). Boxed so the
    /// common protocol messages don't pay for its size.
    pub sync: Option<Box<SyncPayload>>,
}

impl Payload for DbMsg {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

/// Anti-entropy exchange body. A stranded replica sends its per-key version
/// stamps plus its undecided/decided transaction ids (`sync-req`); the
/// master answers with the decisions the replica is missing and a
/// version-stamped key/value delta (`sync-resp`, delta in [`DbMsg::writes`],
/// stamps aligned index-wise in `versions`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyncPayload {
    /// Per-key version stamps (replica's view in a request, the master's
    /// authoritative stamps for the delta in a response).
    pub versions: Vec<(Key, u64)>,
    /// Request only: transactions the replica has in flight (undecided).
    pub pending: Vec<TxnId>,
    /// Request only: transactions the replica already finished, so the
    /// master does not repeat decisions the replica has.
    pub known: Vec<TxnId>,
    /// Response only: the `(txn, decision)` pairs the replica is missing.
    pub decisions: Vec<(TxnId, Decision)>,
}

/// A read-only transaction: a set of keys snapshotted together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadSpec {
    /// Globally unique id (disjoint from write-transaction ids).
    pub id: TxnId,
    /// Keys to read.
    pub keys: Vec<Key>,
}

/// Which path served a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPath {
    /// Master-lease fast path: lease valid and keys unlocked — served
    /// straight from committed storage with zero lock-table work.
    Lease,
    /// Shared locks acquired locally at the master; no protocol round.
    LockLocal,
    /// Cross-shard read through a top-level commit-protocol instance.
    Protocol,
}

/// One served read, reported to metrics by the serving site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// The read transaction.
    pub id: TxnId,
    /// The serving site.
    pub site: SiteId,
    /// When the values were snapshotted.
    pub at: SimTime,
    /// Which path served it.
    pub path: ReadPath,
    /// The observed values (`None` = key absent).
    pub values: Vec<(Key, Option<Value>)>,
}

/// Builder producing a fresh protocol participant for a site.
/// (`site == SiteId(0)` must yield a master, anything else a slave.)
///
/// Participants are produced as enum-dispatched [`AnyParticipant`]s, so the
/// per-transaction slot stores the state machine inline — no boxing per
/// in-flight transaction.
pub type ParticipantBuilder = Rc<dyn Fn(SiteId, usize) -> AnyParticipant>;

/// A shared pool handle: the builder plus the reuse policy, cloned to every
/// site of a cluster. Each site derives its own [`ParticipantPool`] from it
/// ([`ParticipantFactory::pool`]), because participants carry their site
/// identity and cannot migrate between sites.
#[derive(Clone)]
pub struct ParticipantFactory {
    builder: ParticipantBuilder,
    reuse: bool,
}

impl ParticipantFactory {
    /// A factory whose pools keep finished participants on a free-list and
    /// `reset` them for the next transaction (the default).
    pub fn pooled(builder: ParticipantBuilder) -> ParticipantFactory {
        ParticipantFactory { builder, reuse: true }
    }

    /// A factory whose pools construct a fresh participant for every
    /// transaction — the pre-pool behaviour, kept as the equivalence
    /// baseline for tests and the `bench_ddb --compare` mode.
    pub fn construct_per_txn(builder: ParticipantBuilder) -> ParticipantFactory {
        ParticipantFactory { builder, reuse: false }
    }

    /// The per-site pool for `me` in a cluster of `n`.
    pub fn pool(&self, me: SiteId, n: usize) -> ParticipantPool {
        ParticipantPool {
            builder: self.builder.clone(),
            me,
            n,
            arena: Vec::new(),
            free: Vec::new(),
            reuse: self.reuse,
            constructed: 0,
            reused: 0,
        }
    }
}

/// A per-site arena of protocol participants with a free-list of slots.
///
/// Participants live in a stable arena and are addressed by index, so a
/// transaction's state machine is never moved after construction: `acquire`
/// pops a free slot and [`Participant::reset`]s it *in place* instead of
/// constructing per transaction, and `release` just parks the index. (An
/// earlier free-list design moved the participant value in and out of the
/// pool; two 192-byte enum moves per transaction cost more than some
/// protocols' entire allocation-free constructors.) Reuse is provably
/// behaviour-neutral — `reset` restores the freshly-constructed state (the
/// PR 2 session-reuse guarantee), and the pooled-vs-per-txn property test
/// pins cluster [`Metrics`] to be field-identical either way.
pub struct ParticipantPool {
    builder: ParticipantBuilder,
    me: SiteId,
    n: usize,
    arena: Vec<AnyParticipant>,
    free: Vec<u32>,
    reuse: bool,
    constructed: usize,
    reused: usize,
}

impl ParticipantPool {
    /// The slot of a participant ready to run one transaction: a freed slot
    /// recycled (or, for a [`ParticipantFactory::construct_per_txn`] pool,
    /// rebuilt) in place when one is available, a freshly built arena entry
    /// otherwise. Whatever the path, the participant ends up in its
    /// freshly-reset state voting `vote` — never the vote the builder baked
    /// in.
    pub fn acquire(&mut self, vote: Vote) -> usize {
        let idx = match self.free.pop() {
            Some(idx) => {
                let idx = idx as usize;
                if self.reuse {
                    self.reused += 1;
                } else {
                    self.constructed += 1;
                    self.arena[idx] = (self.builder)(self.me, self.n);
                }
                idx
            }
            None => {
                self.constructed += 1;
                self.arena.push((self.builder)(self.me, self.n));
                self.arena.len() - 1
            }
        };
        self.arena[idx].reset(vote);
        idx
    }

    /// Parks a finished (or crash-wiped) slot for the next transaction.
    pub fn release(&mut self, slot: usize) {
        self.free.push(slot as u32);
    }

    /// The participant in `slot`.
    pub fn get_mut(&mut self, slot: usize) -> &mut AnyParticipant {
        &mut self.arena[slot]
    }

    /// Slots currently parked on the free-list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Total participants constructed since the pool was built.
    pub fn constructed(&self) -> usize {
        self.constructed
    }

    /// Total acquisitions served by resetting a freed slot in place.
    pub fn reused(&self) -> usize {
        self.reused
    }
}

/// A transaction the cluster driver submits at the master.
#[derive(Debug, Clone)]
pub struct TxnSpec {
    /// Globally unique id.
    pub id: TxnId,
    /// Write set per site index.
    pub writes: BTreeMap<u16, Vec<WriteOp>>,
}

/// One lock-hold interval, reported to metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockHold {
    /// The holding site.
    pub site: SiteId,
    /// The holding transaction.
    pub txn: TxnId,
    /// When the locks were acquired.
    pub from: SimTime,
    /// When they were released (`None` = still held at simulation end — a
    /// blocked transaction).
    pub to: Option<SimTime>,
}

/// Shared run metrics, written by all sites.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Per transaction, per site: decision and its instant.
    pub decisions: BTreeMap<TxnId, BTreeMap<u16, (Decision, SimTime)>>,
    /// Submission instants (master side).
    pub submitted: BTreeMap<TxnId, SimTime>,
    /// All lock-hold intervals.
    pub lock_holds: Vec<LockHold>,
    /// Served read-only transactions (write metrics above stay untouched by
    /// reads — the read-equivalence suite pins that).
    pub reads: Vec<ReadRecord>,
    /// Read submission instants (serving-master side).
    pub reads_submitted: BTreeMap<TxnId, SimTime>,
    /// Reads whose protocol round aborted (cross-shard reads only).
    pub read_aborts: BTreeMap<TxnId, SimTime>,
}

impl Metrics {
    /// Did any two sites decide a transaction differently?
    pub fn atomicity_violations(&self) -> Vec<TxnId> {
        self.decisions
            .iter()
            .filter(|(_, per_site)| {
                let mut kinds = per_site.values().map(|(d, _)| *d);
                let first = kinds.next();
                first.is_some_and(|f| kinds.any(|d| d != f))
            })
            .map(|(t, _)| *t)
            .collect()
    }

    /// Lock-hold duration for each interval, with `horizon` standing in for
    /// still-held locks. Returns `(txn, site, ticks, still_held)` tuples.
    pub fn hold_durations(&self, horizon: SimTime) -> Vec<(TxnId, SiteId, u64, bool)> {
        self.lock_holds
            .iter()
            .map(|h| {
                let end = h.to.unwrap_or(horizon);
                (h.txn, h.site, end.ticks().saturating_sub(h.from.ticks()), h.to.is_none())
            })
            .collect()
    }
}

/// Per-transaction state at one site. The participant itself lives in the
/// site's [`ParticipantPool`] arena; this holds its slot index.
struct TxnSlot {
    participant: usize,
    timers: HashMap<TimerTag, TimerHandle>,
    hold_index: Option<usize>,
}

/// An in-flight xact waiting for locks.
struct ParkedXact {
    from: SiteId,
    writes: Vec<WriteOp>,
}

/// A database site actor.
pub struct SiteNode {
    me: SiteId,
    n: usize,
    pool: ParticipantPool,
    storage: Storage,
    wal: Wal,
    locks: LockTable,
    metrics: Rc<RefCell<Metrics>>,
    slots: BTreeMap<TxnId, TxnSlot>,
    parked: BTreeMap<TxnId, ParkedXact>,
    finished: BTreeMap<TxnId, Decision>,
    /// Master only: the workload to submit, as (tick, spec).
    workload: Vec<(u64, TxnSpec)>,
    /// Index into `workload` by transaction id, so per-message lookups
    /// (xact write sets, client submissions) cost O(log T) instead of a
    /// linear scan of the whole workload.
    workload_index: HashMap<TxnId, usize>,
    /// Master only: read-only transactions to submit, as (tick, spec).
    read_workload: Vec<(u64, ReadSpec)>,
    /// Index into `read_workload` by transaction id.
    read_index: HashMap<TxnId, usize>,
    /// Reads waiting for shared locks, by txn → remaining key set.
    parked_reads: BTreeMap<TxnId, Vec<Key>>,
}

/// Timer-tag encoding: protocol timers are `(txn + 1) << 8 | tag`; client
/// submission timers are `(txn + 1) << 8 | 0xfe` (writes) / `0xfd` (reads).
const CLIENT_TAG: u64 = 0xfe;

/// Client read-submission timer tag (see [`CLIENT_TAG`]).
const READ_TAG: u64 = 0xfd;

impl SiteNode {
    /// Creates a site. Only the master (`me == 0`) uses `workload`.
    pub fn new(
        me: SiteId,
        n: usize,
        factory: &ParticipantFactory,
        metrics: Rc<RefCell<Metrics>>,
        workload: Vec<(u64, TxnSpec)>,
        storage: Storage,
    ) -> SiteNode {
        assert!(me.index() < n);
        assert!(me == SiteId(0) || workload.is_empty(), "only the master submits");
        let workload_index =
            workload.iter().enumerate().map(|(i, (_, spec))| (spec.id, i)).collect();
        SiteNode {
            me,
            n,
            pool: factory.pool(me, n),
            storage,
            wal: Wal::new(),
            locks: LockTable::new(),
            metrics,
            slots: BTreeMap::new(),
            parked: BTreeMap::new(),
            finished: BTreeMap::new(),
            workload,
            workload_index,
            read_workload: Vec::new(),
            read_index: HashMap::new(),
            parked_reads: BTreeMap::new(),
        }
    }

    /// Installs the master's read-only workload (builder form so the write
    /// path's constructor signature stays put).
    pub fn with_reads(mut self, reads: Vec<(u64, ReadSpec)>) -> SiteNode {
        assert!(self.me == SiteId(0) || reads.is_empty(), "only the master submits reads");
        self.read_index = reads.iter().enumerate().map(|(i, (_, spec))| (spec.id, i)).collect();
        self.read_workload = reads;
        self
    }

    /// Read access to the committed store (post-run inspection).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Read access to the WAL (post-run inspection).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Still-active (undecided) transactions at this site.
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.slots.keys().copied().collect()
    }

    /// This site's participant pool (post-run reuse inspection).
    pub fn pool(&self) -> &ParticipantPool {
        &self.pool
    }

    fn apply_actions(&mut self, txn: TxnId, actions: Vec<Action>, ctx: &mut Ctx<'_, DbMsg>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let writes = self.xact_writes_for(txn, &msg, to);
                    ctx.send(to, DbMsg { txn, inner: msg, writes, sync: None });
                }
                Action::Broadcast { msg } => {
                    for dst in (0..self.n as u16).map(SiteId) {
                        if dst != self.me {
                            let writes = self.xact_writes_for(txn, &msg, dst);
                            ctx.send(dst, DbMsg { txn, inner: msg, writes, sync: None });
                        }
                    }
                }
                Action::SetTimer { t_units, tag } => {
                    let raw = ((txn.0 as u64 + 1) << 8) | tag.encode();
                    let handle = ctx.set_timer(ctx.t(t_units), raw);
                    if let Some(slot) = self.slots.get_mut(&txn) {
                        if let Some(old) = slot.timers.insert(tag, handle) {
                            ctx.cancel_timer(old);
                        }
                    }
                }
                Action::CancelTimer { tag } => {
                    if let Some(slot) = self.slots.get_mut(&txn) {
                        if let Some(old) = slot.timers.remove(&tag) {
                            ctx.cancel_timer(old);
                        }
                    }
                }
                Action::Decide(decision) => self.finish(txn, decision, ctx),
                Action::Note(label, detail) => ctx.note(label, detail),
            }
        }
    }

    /// The master attaches each destination's write set to its xact.
    fn xact_writes_for(&self, txn: TxnId, msg: &CommitMsg, dst: SiteId) -> Option<Vec<WriteOp>> {
        if self.me != SiteId(0) || !matches!(msg, CommitMsg::Kind("xact")) {
            return None;
        }
        self.workload_index.get(&txn).and_then(|&i| self.workload[i].1.writes.get(&dst.0).cloned())
    }

    /// Terminates a transaction locally: WAL, storage, locks, metrics.
    fn finish(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(mut slot) = self.slots.remove(&txn) else { return };
        for (_, handle) in slot.timers.drain() {
            ctx.cancel_timer(handle);
        }
        match decision {
            Decision::Commit => {
                // Force the commit record, apply, then mark applied. (The
                // write set may be empty: a site can participate in a
                // transaction without local writes.)
                self.wal.append_durable(Record::Commit { txn });
                self.storage.apply(txn);
                self.wal.append_durable(Record::Applied { txn });
            }
            Decision::Abort => {
                self.wal.append_durable(Record::Abort { txn });
                self.storage.discard(txn);
            }
        }
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (decision, now));
            if let Some(idx) = slot.hold_index {
                m.lock_holds[idx].to = Some(now);
            }
        }
        self.pool.release(slot.participant);
        self.finished.insert(txn, decision);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// Attempts to start a parked xact (or serve a parked read) whose locks
    /// may now be available.
    fn try_unpark(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        if let Some(keys) = self.parked_reads.get(&txn) {
            let all_held = keys.iter().all(|k| self.locks.holds(txn, k, LockMode::Shared));
            if all_held {
                let keys = self.parked_reads.remove(&txn).expect("checked");
                self.serve_read(txn, &keys, ReadPath::LockLocal, ctx);
                self.release_read(txn, ctx);
            }
            return;
        }
        let Some(parked) = self.parked.remove(&txn) else { return };
        // Its queued requests were just granted by release_all; verify.
        let all_held =
            parked.writes.iter().all(|w| self.locks.holds(txn, &w.key, LockMode::Exclusive));
        if all_held {
            self.begin_local(txn, parked.from, parked.writes, ctx);
        } else {
            self.parked.insert(txn, parked);
        }
    }

    /// Locks are held: stage the writes, create the participant, feed it the
    /// xact.
    fn begin_local(
        &mut self,
        txn: TxnId,
        from: SiteId,
        writes: Vec<WriteOp>,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        self.wal.flush();
        self.storage.stage(txn, writes);

        let hold_index = {
            let mut m = self.metrics.borrow_mut();
            m.lock_holds.push(LockHold { site: self.me, txn, from: ctx.now(), to: None });
            Some(m.lock_holds.len() - 1)
        };

        let slot = self.pool.acquire(Vote::Yes);
        let mut out = Vec::new();
        let participant = self.pool.get_mut(slot);
        participant.start(&mut out);
        if self.me != SiteId(0) {
            participant.on_msg(from, &CommitMsg::Kind("xact"), &mut out);
        }
        self.slots.insert(txn, TxnSlot { participant: slot, timers: HashMap::new(), hold_index });
        self.apply_actions(txn, out, ctx);
    }

    /// A brand-new xact arrived (or the master submits one): acquire locks
    /// or park.
    fn admit_xact(
        &mut self,
        txn: TxnId,
        from: SiteId,
        writes: Vec<WriteOp>,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            // Duplicate delivery. The `parked` guard matters: re-admitting a
            // parked transaction would enqueue duplicate wait-queue entries
            // in the lock table and overwrite its ParkedXact.
            return;
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.begin_local(txn, from, writes, ctx);
        } else {
            ctx.note("lock-wait", txn.0 as u64);
            self.parked.insert(txn, ParkedXact { from, writes });
        }
    }

    /// Admits a read-only transaction: acquire shared locks on every key and
    /// serve immediately, or park until writers drain. Reads never touch the
    /// WAL, storage, or lock-hold metrics.
    fn admit_read(&mut self, txn: TxnId, keys: Vec<Key>, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn) || self.parked_reads.contains_key(&txn) {
            return;
        }
        let mut all = true;
        for key in &keys {
            if self.locks.acquire(txn, key.clone(), LockMode::Shared) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.serve_read(txn, &keys, ReadPath::LockLocal, ctx);
            self.release_read(txn, ctx);
        } else {
            ctx.note("read-wait", txn.0 as u64);
            self.parked_reads.insert(txn, keys);
        }
    }

    /// Snapshots `keys` from committed storage and reports the read.
    fn serve_read(&mut self, txn: TxnId, keys: &[Key], path: ReadPath, ctx: &mut Ctx<'_, DbMsg>) {
        let values = keys.iter().map(|k| (k.clone(), self.storage.get(k).cloned())).collect();
        self.metrics.borrow_mut().reads.push(ReadRecord {
            id: txn,
            site: self.me,
            at: ctx.now(),
            path,
            values,
        });
        ctx.note("read-served", txn.0 as u64);
        self.finished.insert(txn, Decision::Commit);
    }

    /// Drops a read's shared locks and restarts whatever that promoted.
    fn release_read(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }
}

impl Actor<DbMsg> for SiteNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        let submissions: Vec<(u64, TxnId)> =
            self.workload.iter().map(|(at, spec)| (*at, spec.id)).collect();
        for (at, txn) in submissions {
            let raw = ((txn.0 as u64 + 1) << 8) | CLIENT_TAG;
            ctx.set_timer(ptp_simnet::SimDuration(at), raw);
        }
        let reads: Vec<(u64, TxnId)> =
            self.read_workload.iter().map(|(at, spec)| (*at, spec.id)).collect();
        for (at, txn) in reads {
            let raw = ((txn.0 as u64 + 1) << 8) | READ_TAG;
            ctx.set_timer(ptp_simnet::SimDuration(at), raw);
        }
    }

    fn on_message(&mut self, env: Envelope<DbMsg>, ctx: &mut Ctx<'_, DbMsg>) {
        let DbMsg { txn, inner, writes, .. } = env.payload;
        if matches!(inner, CommitMsg::Kind("xact")) {
            let writes = writes.unwrap_or_default();
            self.admit_xact(txn, env.src, writes, ctx);
            return;
        }
        if let Some(slot) = self.slots.get(&txn) {
            let mut out = Vec::new();
            self.pool.get_mut(slot.participant).on_msg(env.src, &inner, &mut out);
            self.apply_actions(txn, out, ctx);
        } else if self.parked.contains_key(&txn) {
            // Decision for a transaction still waiting on locks: honor it —
            // it can only be an abort (the master gave up on us) or a peer
            // commit (impossible while we never voted; note it).
            if matches!(inner, CommitMsg::Kind("abort")) {
                self.parked.remove(&txn);
                let promoted = self.locks.release_all(txn);
                self.finished.insert(txn, Decision::Abort);
                let now = ctx.now();
                self.metrics
                    .borrow_mut()
                    .decisions
                    .entry(txn)
                    .or_default()
                    .insert(self.me.0, (Decision::Abort, now));
                ctx.note("parked-abort", txn.0 as u64);
                // A parked txn can hold granted locks (it parks if *any*
                // request waits) with other waiters queued behind them;
                // restart whatever its release promoted, as finish() does.
                for t in promoted {
                    self.try_unpark(t, ctx);
                }
            }
        }
    }

    fn on_undeliverable(&mut self, env: Envelope<DbMsg>, ctx: &mut Ctx<'_, DbMsg>) {
        let DbMsg { txn, inner, .. } = env.payload;
        if let Some(slot) = self.slots.get(&txn) {
            let mut out = Vec::new();
            self.pool.get_mut(slot.participant).on_ud(env.dst, &inner, &mut out);
            self.apply_actions(txn, out, ctx);
        }
    }

    fn on_timer(&mut self, raw: u64, ctx: &mut Ctx<'_, DbMsg>) {
        let txn = TxnId((raw >> 8).saturating_sub(1) as u32);
        let low = raw & 0xff;
        if low == CLIENT_TAG {
            // Client submission at the master.
            let Some((_, spec)) = self.workload_index.get(&txn).map(|&i| self.workload[i].clone())
            else {
                return;
            };
            self.metrics.borrow_mut().submitted.insert(spec.id, ctx.now());
            ctx.note("txn-submitted", spec.id.0 as u64);
            let local = spec.writes.get(&0).cloned().unwrap_or_default();
            self.admit_xact(spec.id, self.me, local, ctx);
            return;
        }
        if low == READ_TAG {
            // Client read submission at the master.
            let Some(spec) = self.read_index.get(&txn).map(|&i| self.read_workload[i].1.clone())
            else {
                return;
            };
            self.metrics.borrow_mut().reads_submitted.insert(spec.id, ctx.now());
            ctx.note("read-submitted", spec.id.0 as u64);
            self.admit_read(spec.id, spec.keys, ctx);
            return;
        }
        let Some(tag) = TimerTag::decode(low) else { return };
        if let Some(slot) = self.slots.get_mut(&txn) {
            slot.timers.remove(&tag);
            let participant = slot.participant;
            let mut out = Vec::new();
            self.pool.get_mut(participant).on_timer(tag, &mut out);
            self.apply_actions(txn, out, ctx);
        }
    }

    /// The crash wipes this site's volatile state, so its in-flight
    /// lock-hold intervals end *now* — leaving them open would bill a
    /// crashed site's locks to the full horizon and corrupt E14's
    /// blocked-lock accounting. Pure metrics bookkeeping; the state itself
    /// is torn down in [`SiteNode::on_recover`].
    fn on_crash(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        let now = ctx.now();
        let mut m = self.metrics.borrow_mut();
        for slot in self.slots.values() {
            if let Some(idx) = slot.hold_index {
                if m.lock_holds[idx].to.is_none() {
                    m.lock_holds[idx].to = Some(now);
                }
            }
        }
    }

    /// Crash recovery (Sec. 2's single-site discipline): volatile state —
    /// staged writes, unflushed log records, in-flight protocol
    /// participants, lock table — is gone; the durable log decides what to
    /// redo and what to presume aborted.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        for (_, slot) in std::mem::take(&mut self.slots) {
            self.pool.release(slot.participant);
        }
        self.parked.clear();
        self.parked_reads.clear();
        self.locks = LockTable::new();
        self.storage.crash();
        self.wal.crash();
        let summary = crate::recovery::recover(&mut self.storage, &mut self.wal);
        for txn in &summary.redone {
            let now = ctx.now();
            self.metrics
                .borrow_mut()
                .decisions
                .entry(*txn)
                .or_default()
                .insert(self.me.0, (Decision::Commit, now));
            self.finished.insert(*txn, Decision::Commit);
        }
        for txn in &summary.discarded {
            self.finished.insert(*txn, Decision::Abort);
        }
        ctx.note("recovered", (summary.redone.len() + summary.discarded.len()) as u64);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Key, Value};
    use ptp_protocols::termination::{PhasePlan, TerminationSlave, TerminationVariant};
    use ptp_simnet::{DelayModel, NetConfig, PartitionEngine, Simulation, TraceEvent};

    fn slave_factory() -> ParticipantFactory {
        ParticipantFactory::pooled(Rc::new(|site, _n| {
            TerminationSlave::new(
                PhasePlan::three_phase(),
                site,
                Vote::Yes,
                TerminationVariant::Transient,
            )
            .into()
        }))
    }

    fn xact(txn: u32, key: &str) -> DbMsg {
        DbMsg {
            txn: TxnId(txn),
            inner: CommitMsg::Kind("xact"),
            writes: Some(vec![WriteOp { key: Key::from(key), value: Value::from_u64(1) }]),
            sync: None,
        }
    }

    /// Master stand-in at site 0: fires a scripted burst of xacts at the
    /// slave and ignores everything the slave's protocol sends back.
    struct ScriptedMaster(Vec<DbMsg>);

    impl Actor<DbMsg> for ScriptedMaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
            for msg in self.0.drain(..) {
                ctx.send(SiteId(1), msg);
            }
        }
        fn on_message(&mut self, _env: Envelope<DbMsg>, _ctx: &mut Ctx<'_, DbMsg>) {}
    }

    #[test]
    fn duplicate_xact_for_parked_txn_is_ignored() {
        // txn 1 takes the lock on "k"; txn 2 parks behind it; the duplicate
        // xact for parked txn 2 must not re-acquire (which would enqueue a
        // second wait-queue entry and overwrite the ParkedXact).
        let metrics = Rc::new(RefCell::new(Metrics::default()));
        let slave = SiteNode::new(
            SiteId(1),
            2,
            &slave_factory(),
            metrics.clone(),
            Vec::new(),
            Storage::new(),
        );
        let driver = ScriptedMaster(vec![xact(1, "k"), xact(2, "k"), xact(2, "k")]);
        let actors: Vec<Box<dyn Actor<DbMsg>>> = vec![Box::new(driver), Box::new(slave)];
        let sim = Simulation::new(
            NetConfig::default(),
            actors,
            PartitionEngine::always_connected(),
            &DelayModel::Fixed(100),
            vec![],
        );
        let (actors, trace, _) = sim.run();

        let lock_waits = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Note { label: "lock-wait", detail: 2, .. }))
            .count();
        assert_eq!(lock_waits, 1, "the duplicate xact re-parked txn 2");

        let node = actors[1].as_any().and_then(|a| a.downcast_ref::<SiteNode>()).unwrap();
        assert_eq!(node.locks.waiting_count(), 0, "stale wait-queue entries remain");
        assert!(node.parked.is_empty());
        assert!(node.slots.is_empty());
        // Both transactions terminated (abandoned by the silent master, so
        // both abort) — and txn 2 reused txn 1's pooled participant.
        assert_eq!(node.finished.len(), 2);
        assert_eq!(node.pool.constructed(), 1);
        assert_eq!(node.pool.reused(), 1);
    }

    #[test]
    fn parked_abort_promotes_waiters_queued_behind_its_granted_locks() {
        // txn 1 takes k1. txn 2 wants [k1, k2]: k2 is granted, k1 waits, so
        // it parks *holding* k2. txn 3 wants k2 and queues behind txn 2.
        // The master then aborts parked txn 2: releasing its locks promotes
        // txn 3, which must actually start (regression: the promoted list
        // was dropped, stranding txn 3 in `parked` forever).
        use ptp_simnet::ScheduleBuilder;
        let metrics = Rc::new(RefCell::new(Metrics::default()));
        let slave = SiteNode::new(
            SiteId(1),
            2,
            &slave_factory(),
            metrics.clone(),
            Vec::new(),
            Storage::new(),
        );
        let two = DbMsg {
            txn: TxnId(2),
            inner: CommitMsg::Kind("xact"),
            writes: Some(vec![
                WriteOp { key: Key::from("k1"), value: Value::from_u64(2) },
                WriteOp { key: Key::from("k2"), value: Value::from_u64(2) },
            ]),
            sync: None,
        };
        let abort_two =
            DbMsg { txn: TxnId(2), inner: CommitMsg::Kind("abort"), writes: None, sync: None };
        let driver = ScriptedMaster(vec![xact(1, "k1"), two, xact(3, "k2"), abort_two]);
        let actors: Vec<Box<dyn Actor<DbMsg>>> = vec![Box::new(driver), Box::new(slave)];
        // Deliver in script order: msg i arrives at (i + 1) * 100.
        let delay = ScheduleBuilder::with_default(100)
            .outbound(1, 200)
            .outbound(2, 300)
            .outbound(3, 400)
            .build();
        let sim = Simulation::new(
            NetConfig::default(),
            actors,
            PartitionEngine::always_connected(),
            &delay,
            vec![],
        );
        let (actors, trace, _) = sim.run();

        let node = actors[1].as_any().and_then(|a| a.downcast_ref::<SiteNode>()).unwrap();
        assert!(
            trace.first_note(SiteId(1), "parked-abort").is_some(),
            "txn 2 must be aborted while parked"
        );
        assert!(node.parked.is_empty(), "txn 3 stranded in parked: promotion dropped");
        // txn 3 began (WAL Begin) once txn 2's release promoted it, and —
        // abandoned by the silent master — terminated via its own timeout.
        assert!(
            node.wal
                .durable()
                .iter()
                .any(|r| matches!(r, Record::Begin { txn, .. } if *txn == TxnId(3))),
            "txn 3 never began"
        );
        assert_eq!(node.finished.get(&TxnId(2)), Some(&Decision::Abort));
        assert!(node.finished.contains_key(&TxnId(3)), "txn 3 must terminate");
        assert_eq!(node.locks.waiting_count(), 0);
    }

    #[test]
    fn pool_resets_released_slots_in_place() {
        let mut pool = slave_factory().pool(SiteId(1), 2);
        let slot = pool.acquire(Vote::Yes);
        assert_eq!((pool.constructed(), pool.reused(), pool.idle()), (1, 0, 0));
        pool.release(slot);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.acquire(Vote::Yes), slot, "freed slot is recycled");
        assert_eq!((pool.constructed(), pool.reused(), pool.idle()), (1, 1, 0));
    }

    #[test]
    fn per_txn_pool_rebuilds_instead_of_resetting() {
        let factory = ParticipantFactory::construct_per_txn(Rc::new(|site, _n| {
            TerminationSlave::new(
                PhasePlan::three_phase(),
                site,
                Vote::Yes,
                TerminationVariant::Transient,
            )
            .into()
        }));
        let mut pool = factory.pool(SiteId(1), 2);
        let slot = pool.acquire(Vote::Yes);
        pool.release(slot);
        assert_eq!(pool.acquire(Vote::Yes), slot, "the arena slot is still recycled");
        assert_eq!((pool.constructed(), pool.reused()), (2, 0), "but its machine is rebuilt");
    }

    #[test]
    fn db_msg_kind_delegates() {
        let m =
            DbMsg { txn: TxnId(1), inner: CommitMsg::Kind("prepare"), writes: None, sync: None };
        assert_eq!(m.kind(), "prepare");
    }

    #[test]
    fn metrics_detect_violations() {
        let mut m = Metrics::default();
        m.decisions.entry(TxnId(1)).or_default().insert(0, (Decision::Commit, SimTime(5)));
        m.decisions.entry(TxnId(1)).or_default().insert(1, (Decision::Abort, SimTime(6)));
        assert_eq!(m.atomicity_violations(), vec![TxnId(1)]);
    }

    #[test]
    fn metrics_hold_durations_account_for_blocked() {
        let mut m = Metrics::default();
        m.lock_holds.push(LockHold {
            site: SiteId(1),
            txn: TxnId(1),
            from: SimTime(100),
            to: Some(SimTime(600)),
        });
        m.lock_holds.push(LockHold {
            site: SiteId(2),
            txn: TxnId(1),
            from: SimTime(100),
            to: None,
        });
        let d = m.hold_durations(SimTime(10_000));
        assert_eq!(d[0], (TxnId(1), SiteId(1), 500, false));
        assert_eq!(d[1], (TxnId(1), SiteId(2), 9_900, true));
    }

    #[test]
    fn txn_spec_carries_per_site_writes() {
        let mut writes = BTreeMap::new();
        writes.insert(1u16, vec![WriteOp { key: Key::from("a"), value: Value::from_u64(1) }]);
        let spec = TxnSpec { id: TxnId(9), writes };
        assert_eq!(spec.writes[&1].len(), 1);
    }
}
