//! The per-site storage engine: committed state plus per-transaction
//! staging, with idempotent apply (the property the paper's Sec. 2 recovery
//! argument leans on).

use crate::value::{Key, TxnId, Value, WriteOp};
use std::collections::BTreeMap;

/// One site's key-value store.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Storage {
    committed: BTreeMap<Key, Value>,
    staged: BTreeMap<TxnId, Vec<WriteOp>>,
}

impl Storage {
    /// An empty store.
    pub fn new() -> Storage {
        Storage::default()
    }

    /// Seeds initial committed state (cluster setup).
    pub fn seed(&mut self, key: Key, value: Value) {
        self.committed.insert(key, value);
    }

    /// Reads committed state.
    pub fn get(&self, key: &Key) -> Option<&Value> {
        self.committed.get(key)
    }

    /// Stages a transaction's local write set (pre-commit; invisible to
    /// readers).
    pub fn stage(&mut self, txn: TxnId, writes: Vec<WriteOp>) {
        self.staged.insert(txn, writes);
    }

    /// The staged write set of a transaction, if any.
    pub fn staged_writes(&self, txn: TxnId) -> Option<&[WriteOp]> {
        self.staged.get(&txn).map(Vec::as_slice)
    }

    /// Applies a transaction's staged writes to committed state. Returns the
    /// write count. Idempotent: applying twice leaves the same state.
    pub fn apply(&mut self, txn: TxnId) -> usize {
        let Some(writes) = self.staged.remove(&txn) else { return 0 };
        let n = writes.len();
        for w in writes {
            self.committed.insert(w.key, w.value);
        }
        n
    }

    /// Applies an explicit write set (recovery redo). Idempotent.
    pub fn apply_writes(&mut self, writes: &[WriteOp]) {
        for w in writes {
            self.committed.insert(w.key.clone(), w.value.clone());
        }
    }

    /// Discards a transaction's staged writes (abort).
    pub fn discard(&mut self, txn: TxnId) -> bool {
        self.staged.remove(&txn).is_some()
    }

    /// Simulates a crash: all staged (volatile) state vanishes; committed
    /// state survives (it is "on disk").
    pub fn crash(&mut self) {
        self.staged.clear();
    }

    /// Number of committed keys.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// True if no committed keys exist.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Iterates over committed state.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.committed.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(key: &str, v: u64) -> WriteOp {
        WriteOp { key: Key::from(key), value: Value::from_u64(v) }
    }

    #[test]
    fn staged_writes_invisible_until_applied() {
        let mut s = Storage::new();
        s.seed(Key::from("a"), Value::from_u64(1));
        s.stage(TxnId(1), vec![w("a", 99)]);
        assert_eq!(s.get(&Key::from("a")).unwrap().as_u64(), Some(1));
        s.apply(TxnId(1));
        assert_eq!(s.get(&Key::from("a")).unwrap().as_u64(), Some(99));
    }

    #[test]
    fn apply_is_idempotent() {
        let mut s = Storage::new();
        s.stage(TxnId(1), vec![w("a", 5)]);
        assert_eq!(s.apply(TxnId(1)), 1);
        assert_eq!(s.apply(TxnId(1)), 0, "second apply is a no-op");
        assert_eq!(s.get(&Key::from("a")).unwrap().as_u64(), Some(5));
        // Redo via explicit writes is also idempotent.
        s.apply_writes(&[w("a", 5)]);
        assert_eq!(s.get(&Key::from("a")).unwrap().as_u64(), Some(5));
    }

    #[test]
    fn discard_drops_staged() {
        let mut s = Storage::new();
        s.stage(TxnId(2), vec![w("b", 7)]);
        assert!(s.discard(TxnId(2)));
        assert!(!s.discard(TxnId(2)));
        assert_eq!(s.get(&Key::from("b")), None);
    }

    #[test]
    fn crash_loses_staged_keeps_committed() {
        let mut s = Storage::new();
        s.seed(Key::from("a"), Value::from_u64(1));
        s.stage(TxnId(1), vec![w("b", 2)]);
        s.crash();
        assert_eq!(s.get(&Key::from("a")).unwrap().as_u64(), Some(1));
        assert_eq!(s.staged_writes(TxnId(1)), None);
    }

    #[test]
    fn iter_sees_committed_only() {
        let mut s = Storage::new();
        s.seed(Key::from("a"), Value::from_u64(1));
        s.stage(TxnId(1), vec![w("b", 2)]);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.len(), 1);
    }
}
