//! Keys, values, and transaction identifiers.

use crate::bytes::Bytes;
use core::fmt;

/// A database key. Cheap to clone (refcounted bytes).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub Bytes);

impl Key {
    /// Key from anything byte-like.
    pub fn from_static(s: &'static str) -> Key {
        Key(Bytes::from_static(s.as_bytes()))
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<String> for Key {
    fn from(s: String) -> Key {
        Key(Bytes::from(s.into_bytes()))
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) => write!(f, "{s}"),
            Err(_) => write!(f, "{:02x?}", &self.0[..]),
        }
    }
}

/// A database value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value(pub Bytes);

impl Value {
    /// Value from a 64-bit integer (the banking example stores balances).
    pub fn from_u64(v: u64) -> Value {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Interprets the value as a 64-bit integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        self.0.as_ref().try_into().ok().map(u64::from_be_bytes)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

/// A globally unique transaction identifier (assigned by the cluster
/// driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// One write of a distributed transaction, targeted at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOp {
    /// The key to write.
    pub key: Key,
    /// The new value.
    pub value: Value,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        assert_eq!(Value::from_u64(123_456).as_u64(), Some(123_456));
    }

    #[test]
    fn non_u64_value() {
        assert_eq!(Value::from("hello").as_u64(), None);
    }

    #[test]
    fn key_display() {
        assert_eq!(Key::from("account-1").to_string(), "account-1");
    }

    #[test]
    fn keys_order() {
        assert!(Key::from("a") < Key::from("b"));
    }
}
