//! Crash recovery: replay the WAL's recovery plan against the storage
//! engine — the paper's Sec. 2 single-site discipline.

use crate::storage::Storage;
use crate::value::TxnId;
use crate::wal::{Record, RecoveryAction, Wal};

/// What recovery did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Transactions whose writes were redone (commit record durable).
    pub redone: Vec<TxnId>,
    /// Transactions presumed aborted (no durable commit record).
    pub discarded: Vec<TxnId>,
}

/// Recovers a crashed site: volatile state is assumed already lost
/// ([`Storage::crash`] / [`Wal::crash`]); this replays the durable log.
///
/// Idempotent: recovering twice leaves identical state, because redo writes
/// are idempotent and completed transactions are marked `Applied`.
pub fn recover(storage: &mut Storage, wal: &mut Wal) -> RecoverySummary {
    let mut summary = RecoverySummary::default();
    for (txn, action) in wal.recovery_plan() {
        match action {
            RecoveryAction::Redo(writes) => {
                storage.apply_writes(&writes);
                wal.append_durable(Record::Applied { txn });
                summary.redone.push(txn);
            }
            RecoveryAction::Discard => {
                storage.discard(txn);
                wal.append_durable(Record::Abort { txn });
                summary.discarded.push(txn);
            }
            RecoveryAction::Complete => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Key, Value, WriteOp};

    fn w(key: &str, v: u64) -> WriteOp {
        WriteOp { key: Key::from(key), value: Value::from_u64(v) }
    }

    #[test]
    fn committed_unapplied_writes_are_redone() {
        let mut storage = Storage::new();
        let mut wal = Wal::new();
        storage.seed(Key::from("a"), Value::from_u64(1));

        wal.append(Record::Begin { txn: TxnId(1), writes: vec![w("a", 42)] });
        storage.stage(TxnId(1), vec![w("a", 42)]);
        wal.append_durable(Record::Commit { txn: TxnId(1) });
        // Crash before apply.
        storage.crash();
        wal.crash();

        let summary = recover(&mut storage, &mut wal);
        assert_eq!(summary.redone, vec![TxnId(1)]);
        assert_eq!(storage.get(&Key::from("a")).unwrap().as_u64(), Some(42));
    }

    #[test]
    fn uncommitted_transaction_is_discarded() {
        let mut storage = Storage::new();
        let mut wal = Wal::new();
        storage.seed(Key::from("a"), Value::from_u64(1));

        wal.append(Record::Begin { txn: TxnId(2), writes: vec![w("a", 99)] });
        wal.flush();
        storage.stage(TxnId(2), vec![w("a", 99)]);
        storage.crash();
        wal.crash();

        let summary = recover(&mut storage, &mut wal);
        assert_eq!(summary.discarded, vec![TxnId(2)]);
        assert_eq!(storage.get(&Key::from("a")).unwrap().as_u64(), Some(1));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut storage = Storage::new();
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![w("x", 7)] });
        wal.append_durable(Record::Commit { txn: TxnId(1) });
        storage.crash();
        wal.crash();

        let first = recover(&mut storage, &mut wal);
        assert_eq!(first.redone, vec![TxnId(1)]);
        let second = recover(&mut storage, &mut wal);
        assert!(second.redone.is_empty());
        assert!(second.discarded.is_empty());
        assert_eq!(storage.get(&Key::from("x")).unwrap().as_u64(), Some(7));
    }

    #[test]
    fn mixed_plan_handles_each_transaction() {
        let mut storage = Storage::new();
        let mut wal = Wal::new();
        wal.append(Record::Begin { txn: TxnId(1), writes: vec![w("a", 10)] });
        wal.append(Record::Begin { txn: TxnId(2), writes: vec![w("b", 20)] });
        wal.append(Record::Commit { txn: TxnId(1) });
        wal.flush();
        storage.crash();
        wal.crash();

        let summary = recover(&mut storage, &mut wal);
        assert_eq!(summary.redone, vec![TxnId(1)]);
        assert_eq!(summary.discarded, vec![TxnId(2)]);
        assert_eq!(storage.get(&Key::from("a")).unwrap().as_u64(), Some(10));
        assert_eq!(storage.get(&Key::from("b")), None);
    }
}
