//! Mechanical derivation of Skeen & Stonebraker's Rule (a) and Rule (b)
//! (Sec. 2): the timeout and undeliverable-message transitions that make
//! protocols resilient to *two-site* simple partitioning with return of
//! messages.
//!
//! Rule (a): if `C(s)` contains a commit state, `s`'s timeout transition
//! goes to commit; else to abort.
//!
//! Rule (b): if some `t ∈ S(s)` has a timeout transition to commit (abort),
//! then on receipt of an undeliverable message in `s`, go to commit (abort).
//!
//! The derivation here is computed from the reachability analysis, not
//! hard-coded — so the paper's Sec. 3 story can be replayed mechanically:
//! derive the rules at `n = 2` (where they are provably sufficient), apply
//! the augmentation at `n ≥ 3`, and watch atomicity break (experiments E2,
//! E3, E5).

use crate::concurrency::{sender_set, ConcurrencySets};
use crate::fsa::{Augmentation, Decision, ProtocolSpec, Role};
use crate::global::GlobalGraph;

/// A Rule (b) ambiguity: the sender set of a state contains senders whose
/// timeout transitions disagree. None of the protocols in this crate
/// produce one, but the derivation reports them rather than guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleConflict {
    /// The state whose UD transition is ambiguous.
    pub state: (Role, String),
    /// The disagreeing senders and their timeout decisions.
    pub senders: Vec<(String, Decision)>,
}

/// Output of the rule derivation.
#[derive(Debug, Clone)]
pub struct RuleDerivation {
    /// The derived timeout/UD transitions, keyed by role and state name
    /// (slaves are symmetric; the derivation asserts it).
    pub augmentation: Augmentation,
    /// Any Rule (b) ambiguities encountered.
    pub conflicts: Vec<RuleConflict>,
}

/// Derives Rule (a) + Rule (b) augmentation for `spec`.
///
/// # Panics
/// Panics if the slave automata are not symmetric (all protocols here are
/// master–slave with interchangeable slaves).
pub fn derive_rules_augmentation(spec: &ProtocolSpec) -> RuleDerivation {
    let graph = GlobalGraph::explore(spec);
    let csets = ConcurrencySets::compute(spec, &graph);

    let mut aug = Augmentation::default();
    let mut conflicts = Vec::new();

    // Rule (a): timeout transitions, collapsed to (role, state name).
    for s in spec.all_states() {
        if spec.state_kind(s).is_final() {
            continue;
        }
        let decision =
            if csets.contains_commit(spec, s) { Decision::Commit } else { Decision::Abort };
        let key = (spec.role_of(s.site), spec.state_name(s).to_owned());
        if let Some(prev) = aug.timeout.insert(key.clone(), decision) {
            assert_eq!(prev, decision, "slave automata are not symmetric at state {key:?}");
        }
    }

    // Rule (b): UD transitions from the timeout decisions of sender sets.
    for s in spec.all_states() {
        if spec.state_kind(s).is_final() {
            continue;
        }
        let senders = sender_set(spec, s);
        let mut decisions: Vec<(String, Decision)> = Vec::new();
        for t in &senders {
            let key = (spec.role_of(t.site), spec.state_name(*t).to_owned());
            if let Some(d) = aug.timeout.get(&key) {
                decisions.push((spec.state_name(*t).to_owned(), *d));
            }
        }
        decisions.sort();
        decisions.dedup();
        let key = (spec.role_of(s.site), spec.state_name(s).to_owned());
        match decisions.as_slice() {
            [] => {} // nothing receivable here; no UD transition
            ds if ds.iter().all(|(_, d)| *d == ds[0].1) => {
                let prev = aug.ud.insert(key.clone(), ds[0].1);
                if let Some(p) = prev {
                    assert_eq!(p, ds[0].1, "asymmetric UD derivation at {key:?}");
                }
            }
            ds => conflicts.push(RuleConflict { state: key, senders: ds.to_vec() }),
        }
    }

    RuleDerivation { augmentation: aug, conflicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{extended_two_phase, three_phase, two_phase};

    #[test]
    fn e2pc_two_site_derivation_matches_paper() {
        // Derived at n=2 (where the rules are necessary and sufficient):
        //   master: timeout w1 -> abort, p1 -> commit; UD w1/p1 -> abort.
        //   slave:  timeout q -> abort, w -> abort; UD w -> abort.
        let d = derive_rules_augmentation(&extended_two_phase(2));
        assert!(d.conflicts.is_empty(), "{:?}", d.conflicts);
        let a = &d.augmentation;
        assert_eq!(a.timeout_for(Role::Master, "w1"), Some(Decision::Abort));
        assert_eq!(a.timeout_for(Role::Master, "p1"), Some(Decision::Commit));
        assert_eq!(a.timeout_for(Role::Slave, "q"), Some(Decision::Abort));
        assert_eq!(a.timeout_for(Role::Slave, "w"), Some(Decision::Abort));
        assert_eq!(a.ud_for(Role::Master, "w1"), Some(Decision::Abort));
        assert_eq!(a.ud_for(Role::Master, "p1"), Some(Decision::Abort));
        assert_eq!(a.ud_for(Role::Slave, "w"), Some(Decision::Abort));
    }

    #[test]
    fn plain_2pc_two_site_slave_w_times_out_to_commit() {
        // Without the ack phase, C(w_slave) contains c1 at n=2, so Rule (a)
        // sends the slave's timeout to commit — the historically familiar
        // "presume commit after yes" of the optimistic two-site protocol.
        let d = derive_rules_augmentation(&two_phase(2));
        assert_eq!(d.augmentation.timeout_for(Role::Slave, "w"), Some(Decision::Commit));
        assert_eq!(d.augmentation.timeout_for(Role::Master, "w1"), Some(Decision::Abort));
    }

    #[test]
    fn naive_3pc_derivation_matches_sec3_observation() {
        // The paper: "the timeout transition from w3 should go to the abort
        // state and the timeout transition from p2 should go to the commit
        // state" (for n=3).
        let d = derive_rules_augmentation(&three_phase(3));
        assert!(d.conflicts.is_empty());
        let a = &d.augmentation;
        assert_eq!(a.timeout_for(Role::Slave, "w"), Some(Decision::Abort));
        assert_eq!(a.timeout_for(Role::Slave, "p"), Some(Decision::Commit));
        // Master p1 has no commit concurrent -> abort on timeout.
        assert_eq!(a.timeout_for(Role::Master, "p1"), Some(Decision::Abort));
        // Rule (b): slave p reads commit sent from p1; timeout(p1)=abort.
        assert_eq!(a.ud_for(Role::Slave, "p"), Some(Decision::Abort));
    }

    #[test]
    fn no_ud_for_states_that_receive_nothing() {
        let d = derive_rules_augmentation(&three_phase(3));
        // q1's transition is spontaneous: no sender set, no UD transition.
        assert_eq!(d.augmentation.ud_for(Role::Master, "q1"), None);
    }

    #[test]
    fn final_states_get_no_assignments() {
        let d = derive_rules_augmentation(&three_phase(3));
        assert_eq!(d.augmentation.timeout_for(Role::Master, "c1"), None);
        assert_eq!(d.augmentation.timeout_for(Role::Slave, "a"), None);
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = derive_rules_augmentation(&three_phase(3));
        let b = derive_rules_augmentation(&three_phase(3));
        assert_eq!(a.augmentation, b.augmentation);
    }

    #[test]
    fn slave_symmetry_holds_for_larger_n() {
        // Would panic inside if slaves disagreed.
        let d = derive_rules_augmentation(&three_phase(5));
        assert!(d.conflicts.is_empty());
    }
}
