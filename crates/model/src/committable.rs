//! Committable-state classification (Sec. 3, after Skeen's SIGMOD'81
//! definition): "A local state is called committable if occupancy of that
//! state by any site implies that all sites have voted yes on committing the
//! transaction. Otherwise, it is called noncommittable."

use crate::fsa::{ProtocolSpec, SiteSpec, StateRef};
use crate::global::GlobalGraph;
use std::collections::{BTreeMap, VecDeque};

/// Per-state "yes-implied" flags for one site: `true` for states that can
/// only be reached after the site voted yes (every path from the initial
/// state crosses a `votes_yes` transition).
pub fn yes_implied(site: &SiteSpec) -> Vec<bool> {
    // A state is NOT yes-implied iff it is reachable using only non-voting
    // transitions.
    let mut reachable_without_vote = vec![false; site.states.len()];
    reachable_without_vote[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(s) = queue.pop_front() {
        for t in site.transitions.iter().filter(|t| t.from == s && !t.votes_yes) {
            if !reachable_without_vote[t.to] {
                reachable_without_vote[t.to] = true;
                queue.push_back(t.to);
            }
        }
    }
    reachable_without_vote.iter().map(|r| !r).collect()
}

/// Committable classification for every local state of every site.
#[derive(Debug, Clone)]
pub struct Committability {
    table: BTreeMap<StateRef, bool>,
}

impl Committability {
    /// Classifies every state by scanning all reachable global states: a
    /// state is committable iff *every* reachable global state containing it
    /// has all sites in yes-implied local states.
    pub fn compute(spec: &ProtocolSpec, graph: &GlobalGraph) -> Self {
        let yes: Vec<Vec<bool>> = spec.sites.iter().map(yes_implied).collect();
        let mut table: BTreeMap<StateRef, bool> = BTreeMap::new();
        // Unreachable states default to committable=true vacuously; reachable
        // ones get falsified by witnesses below.
        for s in spec.all_states() {
            table.insert(s, true);
        }
        for g in &graph.states {
            let all_voted = g.locals.iter().enumerate().all(|(site, &l)| yes[site][l as usize]);
            if !all_voted {
                for (site, &l) in g.locals.iter().enumerate() {
                    table.insert(StateRef { site, state: l as usize }, false);
                }
            }
        }
        Committability { table }
    }

    /// Is `s` committable?
    pub fn is_committable(&self, s: StateRef) -> bool {
        *self.table.get(&s).unwrap_or(&false)
    }

    /// All committable states.
    pub fn committable_states(&self) -> impl Iterator<Item = StateRef> + '_ {
        self.table.iter().filter(|(_, &c)| c).map(|(s, _)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{three_phase, two_phase};

    fn classify(spec: &ProtocolSpec) -> Committability {
        Committability::compute(spec, &GlobalGraph::explore(spec))
    }

    #[test]
    fn yes_implied_for_3pc_slave() {
        let spec = three_phase(3);
        let flags = yes_implied(&spec.sites[1]);
        let idx = |name: &str| spec.sites[1].state_index(name);
        assert!(!flags[idx("q")]);
        assert!(flags[idx("w")], "w is only reachable by voting yes");
        assert!(flags[idx("p")]);
        assert!(flags[idx("c")]);
        assert!(!flags[idx("a")], "a is reachable by voting no");
    }

    #[test]
    fn yes_implied_for_3pc_master() {
        let spec = three_phase(3);
        let flags = yes_implied(&spec.sites[0]);
        let idx = |name: &str| spec.sites[0].state_index(name);
        assert!(!flags[idx("q1")]);
        assert!(!flags[idx("w1")], "master has not voted before collecting yes");
        assert!(flags[idx("p1")]);
        assert!(flags[idx("c1")]);
    }

    #[test]
    fn three_pc_prepared_states_are_committable() {
        // The paper: committable states in 3PC are exactly p1, p_i, c1, c_i.
        let spec = three_phase(3);
        let cl = classify(&spec);
        assert!(cl.is_committable(spec.state_ref(0, "p1")));
        assert!(cl.is_committable(spec.state_ref(0, "c1")));
        assert!(cl.is_committable(spec.state_ref(1, "p")));
        assert!(cl.is_committable(spec.state_ref(1, "c")));
    }

    #[test]
    fn three_pc_wait_states_are_noncommittable() {
        let spec = three_phase(3);
        let cl = classify(&spec);
        assert!(!cl.is_committable(spec.state_ref(0, "q1")));
        assert!(!cl.is_committable(spec.state_ref(0, "w1")));
        assert!(!cl.is_committable(spec.state_ref(1, "q")));
        assert!(!cl.is_committable(spec.state_ref(1, "w")));
        assert!(!cl.is_committable(spec.state_ref(1, "a")));
    }

    #[test]
    fn two_pc_commit_states_are_committable_wait_not() {
        // The paper (Sec. 3): 2PC's slave w is noncommittable yet has c1 in
        // its concurrency set — the blocking diagnosis.
        let spec = two_phase(3);
        let cl = classify(&spec);
        assert!(cl.is_committable(spec.state_ref(0, "c1")));
        assert!(cl.is_committable(spec.state_ref(1, "c")));
        assert!(!cl.is_committable(spec.state_ref(1, "w")));
    }

    #[test]
    fn committable_count_3pc() {
        let spec = three_phase(3);
        let cl = classify(&spec);
        // p1, c1 on the master; p, c on each of the two slaves = 6.
        assert_eq!(cl.committable_states().count(), 6);
    }

    #[test]
    fn multisite_does_not_change_classification() {
        for n in [2, 3, 4] {
            let spec = three_phase(n);
            let cl = classify(&spec);
            assert!(cl.is_committable(spec.state_ref(0, "p1")), "n={n}");
            assert!(!cl.is_committable(spec.state_ref(1, "w")), "n={n}");
        }
    }
}
