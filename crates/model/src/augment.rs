//! Exhaustive enumeration of timeout/UD augmentations — the machinery for
//! experiment E5 (Lemma 3).
//!
//! Lemma 3 says: if a commit protocol is not already resilient to optimistic
//! multisite simple partitioning, then *no* assignment of timeout and
//! undeliverable-message transitions makes it resilient. The paper proves
//! this with an adversary argument; we reproduce it constructively by
//! enumerating **every** possible assignment (each non-final state gets a
//! timeout decision and a UD decision, commit or abort) and exhibiting, for
//! each one, a partition scenario that violates atomicity or blocks a site.
//!
//! Augmentations that *leave a state unassigned* would block outright (a
//! partitioned site in that state can never terminate), so enumerating only
//! total assignments is without loss of generality for the resilience
//! question.

use crate::fsa::{Augmentation, Decision, ProtocolSpec, Role};

/// The per-role non-final state names of a master–slave protocol, in a
/// deterministic order. Panics if slave automata are asymmetric.
pub fn augmentable_states(spec: &ProtocolSpec) -> Vec<(Role, String)> {
    let mut out = Vec::new();
    for (site, role) in [(0usize, Role::Master), (1usize, Role::Slave)] {
        for st in &spec.sites[site].states {
            if !st.kind.is_final() {
                out.push((role, st.name.clone()));
            }
        }
    }
    // Sanity: all other slaves must have the same non-final state names.
    for site in 2..spec.n() {
        let names: Vec<&str> = spec.sites[site]
            .states
            .iter()
            .filter(|s| !s.kind.is_final())
            .map(|s| s.name.as_str())
            .collect();
        let expected: Vec<&str> =
            out.iter().filter(|(r, _)| *r == Role::Slave).map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, expected, "slave automata are not symmetric");
    }
    out
}

/// Enumerates every total timeout/UD assignment over the augmentable states.
///
/// With `k` states there are `4^k` assignments (2 choices for the timeout
/// decision × 2 for the UD decision, per state). For 3PC (`k = 6`) that is
/// 4096 — small enough to sweep exhaustively.
pub fn enumerate_augmentations(spec: &ProtocolSpec) -> Vec<Augmentation> {
    let states = augmentable_states(spec);
    let k = states.len();
    let total = 1usize.checked_shl(2 * k as u32).expect("too many states to enumerate");
    let mut out = Vec::with_capacity(total);
    for bits in 0..total {
        let mut aug = Augmentation::default();
        for (i, key) in states.iter().enumerate() {
            let timeout = if bits >> (2 * i) & 1 == 0 { Decision::Abort } else { Decision::Commit };
            let ud = if bits >> (2 * i + 1) & 1 == 0 { Decision::Abort } else { Decision::Commit };
            aug.timeout.insert(key.clone(), timeout);
            aug.ud.insert(key.clone(), ud);
        }
        out.push(aug);
    }
    out
}

/// The index within [`enumerate_augmentations`]' output that matches a given
/// augmentation on the enumerated states (ignoring extra entries), if any.
/// Used to point at the Rule (a)/(b) assignment inside the Lemma 3 table.
pub fn find_augmentation(spec: &ProtocolSpec, target: &Augmentation) -> Option<usize> {
    let states = augmentable_states(spec);
    let mut bits = 0usize;
    for (i, key) in states.iter().enumerate() {
        match target.timeout.get(key) {
            Some(Decision::Commit) => bits |= 1 << (2 * i),
            Some(Decision::Abort) => {}
            None => return None,
        }
        match target.ud.get(key) {
            Some(Decision::Commit) => bits |= 1 << (2 * i + 1),
            // Treat "no UD assignment" as abort for indexing purposes; the
            // caller decides whether that is acceptable.
            Some(Decision::Abort) | None => {}
        }
    }
    Some(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::three_phase;
    use crate::rules::derive_rules_augmentation;

    #[test]
    fn three_pc_has_six_augmentable_states() {
        let states = augmentable_states(&three_phase(3));
        let names: Vec<String> = states.iter().map(|(_, n)| n.clone()).collect();
        assert_eq!(names, vec!["q1", "w1", "p1", "q", "w", "p"]);
    }

    #[test]
    fn enumeration_size_is_4_to_the_k() {
        let augs = enumerate_augmentations(&three_phase(3));
        assert_eq!(augs.len(), 4096);
    }

    #[test]
    fn enumeration_is_exhaustive_and_distinct() {
        let augs = enumerate_augmentations(&three_phase(3));
        let mut seen = std::collections::HashSet::new();
        for a in &augs {
            let key = format!("{a:?}");
            assert!(seen.insert(key), "duplicate augmentation");
        }
    }

    #[test]
    fn every_augmentation_is_total() {
        let spec = three_phase(3);
        let augs = enumerate_augmentations(&spec);
        let states = augmentable_states(&spec);
        for a in augs.iter().take(64) {
            for key in &states {
                assert!(a.timeout.contains_key(key));
                assert!(a.ud.contains_key(key));
            }
        }
    }

    #[test]
    fn rules_assignment_is_in_the_enumeration() {
        let spec = three_phase(3);
        let rules = derive_rules_augmentation(&spec).augmentation;
        let idx = find_augmentation(&spec, &rules).expect("rules assign all states");
        let augs = enumerate_augmentations(&spec);
        let candidate = &augs[idx];
        // Timeout assignments must match exactly.
        for (key, d) in &rules.timeout {
            assert_eq!(candidate.timeout.get(key), Some(d));
        }
    }

    #[test]
    fn index_zero_is_all_abort() {
        let spec = three_phase(3);
        let augs = enumerate_augmentations(&spec);
        assert!(augs[0].timeout.values().all(|d| *d == Decision::Abort));
        assert!(augs[0].ud.values().all(|d| *d == Decision::Abort));
    }

    #[test]
    fn last_index_is_all_commit() {
        let spec = three_phase(3);
        let augs = enumerate_augmentations(&spec);
        let last = augs.last().unwrap();
        assert!(last.timeout.values().all(|d| *d == Decision::Commit));
        assert!(last.ud.values().all(|d| *d == Decision::Commit));
    }
}
