//! Concurrency sets and sender sets (Sec. 2 definitions).
//!
//! * **Concurrency set** `C(s)`: "the set of all local states that are
//!   potentially concurrent with `s` in the execution of P" — computed here
//!   over the reachable global-state graph.
//! * **Sender set** `S(s)`: "{ t | t sends m, m ∈ M }" where `M` is the set
//!   of messages receivable in `s` — computed syntactically from the spec.

use crate::fsa::{ProtocolSpec, StateRef};
use crate::global::GlobalGraph;
use std::collections::{BTreeMap, BTreeSet};

/// Concurrency sets for every local state of every site.
#[derive(Debug, Clone)]
pub struct ConcurrencySets {
    sets: BTreeMap<StateRef, BTreeSet<StateRef>>,
}

impl ConcurrencySets {
    /// Computes `C(s)` for all `s` from the reachable global states.
    pub fn compute(spec: &ProtocolSpec, graph: &GlobalGraph) -> Self {
        let mut sets: BTreeMap<StateRef, BTreeSet<StateRef>> = BTreeMap::new();
        for s in spec.all_states() {
            sets.insert(s, BTreeSet::new());
        }
        for g in &graph.states {
            for i in 0..g.locals.len() {
                let si = StateRef { site: i, state: g.locals[i] as usize };
                let entry = sets.get_mut(&si).expect("state in table");
                for (j, &lj) in g.locals.iter().enumerate() {
                    if i != j {
                        entry.insert(StateRef { site: j, state: lj as usize });
                    }
                }
            }
        }
        ConcurrencySets { sets }
    }

    /// The concurrency set of `s`. Empty when `s` is unreachable.
    pub fn of(&self, s: StateRef) -> &BTreeSet<StateRef> {
        static EMPTY: BTreeSet<StateRef> = BTreeSet::new();
        self.sets.get(&s).unwrap_or(&EMPTY)
    }

    /// Does `C(s)` contain a commit state?
    pub fn contains_commit(&self, spec: &ProtocolSpec, s: StateRef) -> bool {
        self.of(s).iter().any(|t| spec.state_kind(*t) == crate::fsa::StateKind::Commit)
    }

    /// Does `C(s)` contain an abort state?
    pub fn contains_abort(&self, spec: &ProtocolSpec, s: StateRef) -> bool {
        self.of(s).iter().any(|t| spec.state_kind(*t) == crate::fsa::StateKind::Abort)
    }

    /// Iterate over all `(state, concurrency set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&StateRef, &BTreeSet<StateRef>)> {
        self.sets.iter()
    }
}

/// Computes the sender set `S(s)`: every local state (of any site) with an
/// outgoing transition that writes a message readable by some transition out
/// of `s`.
pub fn sender_set(spec: &ProtocolSpec, s: StateRef) -> BTreeSet<StateRef> {
    // M = messages receivable in s.
    let receivable: BTreeSet<_> = spec.sites[s.site]
        .transitions
        .iter()
        .filter(|t| t.from == s.state)
        .flat_map(|t| t.reads.iter().copied())
        .collect();

    let mut senders = BTreeSet::new();
    for (site, ss) in spec.sites.iter().enumerate() {
        for t in &ss.transitions {
            if t.writes.iter().any(|w| receivable.contains(w)) {
                senders.insert(StateRef { site, state: t.from });
            }
        }
    }
    senders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::StateKind;
    use crate::protocols::{three_phase, two_phase};

    fn csets(spec: &ProtocolSpec) -> ConcurrencySets {
        ConcurrencySets::compute(spec, &GlobalGraph::explore(spec))
    }

    #[test]
    fn two_pc_slave_wait_has_commit_and_abort_concurrent() {
        // The classic 2PC blocking diagnosis: C(w_slave) contains both c1
        // and a1.
        let spec = two_phase(3);
        let cs = csets(&spec);
        let w = spec.state_ref(1, "w");
        assert!(cs.contains_commit(&spec, w));
        assert!(cs.contains_abort(&spec, w));
    }

    #[test]
    fn three_pc_slave_wait_has_no_commit_concurrent_at_n2() {
        let spec = three_phase(2);
        let cs = csets(&spec);
        let w = spec.state_ref(1, "w");
        assert!(!cs.contains_commit(&spec, w));
        // At n=2 not even an abort is concurrent with w: the lone slave
        // voted yes to get there, so the master cannot have aborted.
        assert!(!cs.contains_abort(&spec, w));
    }

    #[test]
    fn three_pc_slave_wait_gains_abort_concurrent_at_n3() {
        // With a second slave, a no-vote elsewhere can abort the master
        // while this slave still waits — abort enters C(w).
        let spec = three_phase(3);
        let cs = csets(&spec);
        assert!(cs.contains_abort(&spec, spec.state_ref(1, "w")));
    }

    #[test]
    fn three_pc_multisite_slave_wait_still_no_commit() {
        // Lemma 1 precondition holds for 3PC even with n=3: while slave i is
        // in w, nobody can have committed (the master needs i's ack first).
        let spec = three_phase(3);
        let cs = csets(&spec);
        let w = spec.state_ref(1, "w");
        assert!(!cs.contains_commit(&spec, w));
    }

    #[test]
    fn three_pc_slave_prepared_has_commit_concurrent_multisite() {
        // With n>=3, slave 2 in p can coexist with the master in c1 (the
        // master committed after receiving all acks) — the fact behind the
        // Sec. 3 naive-augmentation counterexample (commit ∈ C(p2)).
        let spec = three_phase(3);
        let cs = csets(&spec);
        let p = spec.state_ref(1, "p");
        assert!(cs.contains_commit(&spec, p));
    }

    #[test]
    fn paper_sec3_concurrency_facts() {
        // "abort ∈ C(w3), commit ∈ C(p2), p2 ∈ C(w3)".
        let spec = three_phase(3);
        let cs = csets(&spec);
        let w3 = spec.state_ref(2, "w");
        let p2 = spec.state_ref(1, "p");
        assert!(cs.contains_abort(&spec, w3));
        assert!(cs.contains_commit(&spec, p2));
        assert!(cs.of(w3).contains(&p2), "p2 must be concurrent with w3");
    }

    #[test]
    fn master_p1_in_3pc_has_no_commit_concurrent() {
        // Nobody can be committed while the master is still in p1 — commits
        // are sent on the p1 -> c1 transition.
        let spec = three_phase(3);
        let cs = csets(&spec);
        let p1 = spec.state_ref(0, "p1");
        assert!(!cs.contains_commit(&spec, p1));
    }

    #[test]
    fn concurrency_sets_never_include_own_site() {
        let spec = three_phase(3);
        let cs = csets(&spec);
        for (s, set) in cs.iter() {
            assert!(set.iter().all(|t| t.site != s.site));
        }
    }

    #[test]
    fn sender_set_of_slave_wait_in_3pc_is_master_w1() {
        // w reads prepare/abort, both written by transitions out of w1.
        let spec = three_phase(3);
        let senders = sender_set(&spec, spec.state_ref(1, "w"));
        assert_eq!(senders.len(), 1);
        let only = *senders.iter().next().unwrap();
        assert_eq!(spec.state_name(only), "w1");
    }

    #[test]
    fn sender_set_of_slave_prepared_in_3pc_is_master_p1() {
        let spec = three_phase(3);
        let senders = sender_set(&spec, spec.state_ref(1, "p"));
        let names: Vec<&str> = senders.iter().map(|s| spec.state_name(*s)).collect();
        assert_eq!(names, vec!["p1"]);
    }

    #[test]
    fn sender_set_of_spontaneous_state_is_empty() {
        // q1's only transition is spontaneous; nothing is receivable there.
        let spec = three_phase(3);
        assert!(sender_set(&spec, spec.state_ref(0, "q1")).is_empty());
    }

    #[test]
    fn unreachable_state_has_empty_concurrency_set() {
        let spec = three_phase(3);
        let cs = csets(&spec);
        // All states of 3PC are reachable; check the API contract instead on
        // a state ref we synthesize for site 1 — every real state must have a
        // nonempty set except none here. Just verify `of` never panics.
        for s in spec.all_states() {
            let _ = cs.of(s);
        }
        // Commit states' concurrency sets include other commit states.
        let c = spec.state_ref(1, "c");
        assert!(cs.of(c).iter().any(|t| spec.state_kind(*t) == StateKind::Commit));
    }
}
