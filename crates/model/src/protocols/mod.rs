//! FSA specifications of every commit protocol the paper discusses.
//!
//! * [`two_phase`] — Fig. 1, the plain two-phase commit protocol.
//! * [`extended_two_phase`] — the base of Fig. 2: 2PC with a decision-ack
//!   phase (the master's `p1` "prepare" state the Sec. 3 observation refers
//!   to). Its timeout/UD augmentation is *derived*, not hard-coded: apply
//!   [`crate::rules::derive_rules_augmentation`] to the two-site instance,
//!   as Skeen & Stonebraker's rules prescribe.
//! * [`three_phase`] — Fig. 3, Skeen's three-phase commit.
//! * [`modified_three_phase`] — Fig. 8: 3PC plus the slave `w --commit--> c`
//!   transition the termination protocol needs (Sec. 5.3, "a fly in the
//!   ointment").
//! * [`four_phase`] — a four-phase master–slave protocol satisfying the
//!   Lemma 1/2 conditions, used to exercise Theorem 10's generic
//!   termination-protocol recipe on something that is not 3PC.
//!
//! Site 0 is the master throughout (the paper's site 1); sites `1..n-1` are
//! slaves (the paper's sites 2..n).

mod builders;

pub use builders::{extended_two_phase, four_phase, modified_three_phase, two_phase};

/// Fig. 3: Skeen's three-phase commit protocol.
///
/// Master: `q1 → w1 → p1 → c1` (with `w1 → a1` on any no-vote); slaves:
/// `q → w → p → c` / `q → a` / `w → a`.
pub fn three_phase(n: usize) -> crate::fsa::ProtocolSpec {
    builders::three_phase(n)
}
