//! Concrete FSA constructions, parameterized by the number of sites.

use crate::fsa::{Msg, ProtocolSpec, SiteSpec, StateDef, StateKind, Transition};

/// Shorthand for building state tables.
fn states(defs: &[(&str, StateKind)]) -> Vec<StateDef> {
    defs.iter().map(|(name, kind)| StateDef { name: (*name).to_owned(), kind: *kind }).collect()
}

struct Kinds {
    table: Vec<&'static str>,
}

impl Kinds {
    fn new(table: &[&'static str]) -> Self {
        Kinds { table: table.to_vec() }
    }
    fn k(&self, name: &str) -> u8 {
        self.table
            .iter()
            .position(|k| *k == name)
            .unwrap_or_else(|| panic!("kind {name} not declared")) as u8
    }
    /// Message from `src` to `dst`.
    fn m(&self, kind: &str, src: usize, dst: usize) -> Msg {
        Msg { kind: self.k(kind), src: src as u8, dst: dst as u8 }
    }
    /// One message of `kind` from the master to every slave.
    fn to_all_slaves(&self, kind: &str, n: usize) -> Vec<Msg> {
        (1..n).map(|j| self.m(kind, 0, j)).collect()
    }
    /// One message of `kind` from the master to every slave except `skip`.
    fn to_slaves_except(&self, kind: &str, n: usize, skip: usize) -> Vec<Msg> {
        (1..n).filter(|j| *j != skip).map(|j| self.m(kind, 0, j)).collect()
    }
    /// One message of `kind` from every slave to the master.
    #[allow(clippy::wrong_self_convention)] // "from" refers to message direction
    fn from_all_slaves(&self, kind: &str, n: usize) -> Vec<Msg> {
        (1..n).map(|j| self.m(kind, j, 0)).collect()
    }
}

/// Standard slave vote transitions: `q --xact/yes--> w` and `q --xact/no--> a`.
fn slave_votes(k: &Kinds, i: usize, q: usize, w: usize, a: usize) -> Vec<Transition> {
    vec![
        Transition {
            from: q,
            to: w,
            reads: vec![k.m("xact", 0, i)],
            writes: vec![k.m("yes", i, 0)],
            votes_yes: true,
        },
        Transition {
            from: q,
            to: a,
            reads: vec![k.m("xact", 0, i)],
            writes: vec![k.m("no", i, 0)],
            votes_yes: false,
        },
    ]
}

/// Master abort transitions: one per slave `j`, `w1 --no_j/abort_{others}--> a1`.
fn master_aborts(k: &Kinds, n: usize, w1: usize, a1: usize) -> Vec<Transition> {
    (1..n)
        .map(|j| Transition {
            from: w1,
            to: a1,
            reads: vec![k.m("no", j, 0)],
            writes: k.to_slaves_except("abort", n, j),
            votes_yes: false,
        })
        .collect()
}

/// Fig. 1: the two-phase commit protocol.
pub fn two_phase(n: usize) -> ProtocolSpec {
    assert!(n >= 2, "need a master and at least one slave");
    let k = Kinds::new(&["xact", "yes", "no", "commit", "abort"]);

    // Master: q1 w1 c1 a1.
    let mut master = SiteSpec {
        states: states(&[
            ("q1", StateKind::Initial),
            ("w1", StateKind::Intermediate),
            ("c1", StateKind::Commit),
            ("a1", StateKind::Abort),
        ]),
        transitions: vec![
            // Receive the user's request, forward the transaction.
            Transition {
                from: 0,
                to: 1,
                reads: vec![],
                writes: k.to_all_slaves("xact", n),
                votes_yes: false,
            },
            // All yes -> commit everyone. This is also the master's own
            // yes-vote for the committable classification.
            Transition {
                from: 1,
                to: 2,
                reads: k.from_all_slaves("yes", n),
                writes: k.to_all_slaves("commit", n),
                votes_yes: true,
            },
        ],
    };
    master.transitions.extend(master_aborts(&k, n, 1, 3));

    let mut sites = vec![master];
    for i in 1..n {
        let mut t = slave_votes(&k, i, 0, 1, 3);
        t.push(Transition {
            from: 1,
            to: 2,
            reads: vec![k.m("commit", 0, i)],
            writes: vec![],
            votes_yes: false,
        });
        t.push(Transition {
            from: 1,
            to: 3,
            reads: vec![k.m("abort", 0, i)],
            writes: vec![],
            votes_yes: false,
        });
        sites.push(SiteSpec {
            states: states(&[
                ("q", StateKind::Initial),
                ("w", StateKind::Intermediate),
                ("c", StateKind::Commit),
                ("a", StateKind::Abort),
            ]),
            transitions: t,
        });
    }

    ProtocolSpec { name: "2PC".into(), sites, kinds: k.table }
}

/// The base protocol of Fig. 2: two-phase commit with a decision-ack phase.
///
/// The master commits the slaves from `w1`, then waits in `p1` (the "prepare
/// state" of the Sec. 3 observation) for their acks. Timeout/UD transitions
/// are *not* part of this spec — derive them with
/// [`crate::rules::derive_rules_augmentation`] on the two-site instance.
pub fn extended_two_phase(n: usize) -> ProtocolSpec {
    assert!(n >= 2);
    let k = Kinds::new(&["xact", "yes", "no", "commit", "abort", "ack"]);

    let mut master = SiteSpec {
        states: states(&[
            ("q1", StateKind::Initial),
            ("w1", StateKind::Intermediate),
            ("p1", StateKind::Intermediate),
            ("c1", StateKind::Commit),
            ("a1", StateKind::Abort),
        ]),
        transitions: vec![
            Transition {
                from: 0,
                to: 1,
                reads: vec![],
                writes: k.to_all_slaves("xact", n),
                votes_yes: false,
            },
            Transition {
                from: 1,
                to: 2,
                reads: k.from_all_slaves("yes", n),
                writes: k.to_all_slaves("commit", n),
                votes_yes: true,
            },
            Transition {
                from: 2,
                to: 3,
                reads: k.from_all_slaves("ack", n),
                writes: vec![],
                votes_yes: false,
            },
        ],
    };
    master.transitions.extend(master_aborts(&k, n, 1, 4));

    let mut sites = vec![master];
    for i in 1..n {
        let mut t = slave_votes(&k, i, 0, 1, 3);
        t.push(Transition {
            from: 1,
            to: 2,
            reads: vec![k.m("commit", 0, i)],
            writes: vec![k.m("ack", i, 0)],
            votes_yes: false,
        });
        t.push(Transition {
            from: 1,
            to: 3,
            reads: vec![k.m("abort", 0, i)],
            writes: vec![],
            votes_yes: false,
        });
        sites.push(SiteSpec {
            states: states(&[
                ("q", StateKind::Initial),
                ("w", StateKind::Intermediate),
                ("c", StateKind::Commit),
                ("a", StateKind::Abort),
            ]),
            transitions: t,
        });
    }

    ProtocolSpec { name: "E2PC".into(), sites, kinds: k.table }
}

fn three_phase_master(k: &Kinds, n: usize) -> SiteSpec {
    let mut master = SiteSpec {
        states: states(&[
            ("q1", StateKind::Initial),
            ("w1", StateKind::Intermediate),
            ("p1", StateKind::Intermediate),
            ("c1", StateKind::Commit),
            ("a1", StateKind::Abort),
        ]),
        transitions: vec![
            Transition {
                from: 0,
                to: 1,
                reads: vec![],
                writes: k.to_all_slaves("xact", n),
                votes_yes: false,
            },
            Transition {
                from: 1,
                to: 2,
                reads: k.from_all_slaves("yes", n),
                writes: k.to_all_slaves("prepare", n),
                votes_yes: true,
            },
            Transition {
                from: 2,
                to: 3,
                reads: k.from_all_slaves("ack", n),
                writes: k.to_all_slaves("commit", n),
                votes_yes: false,
            },
        ],
    };
    master.transitions.extend(master_aborts(k, n, 1, 4));
    master
}

fn three_phase_slave(k: &Kinds, i: usize, direct_commit_in_w: bool) -> SiteSpec {
    let mut t = slave_votes(k, i, 0, 1, 4);
    t.push(Transition {
        from: 1,
        to: 2,
        reads: vec![k.m("prepare", 0, i)],
        writes: vec![k.m("ack", i, 0)],
        votes_yes: false,
    });
    t.push(Transition {
        from: 1,
        to: 4,
        reads: vec![k.m("abort", 0, i)],
        writes: vec![],
        votes_yes: false,
    });
    t.push(Transition {
        from: 2,
        to: 3,
        reads: vec![k.m("commit", 0, i)],
        writes: vec![],
        votes_yes: false,
    });
    if direct_commit_in_w {
        // Fig. 8: accept a commit while still in w (it can only come from a
        // committed peer during termination; harmless in failure-free runs).
        t.push(Transition {
            from: 1,
            to: 3,
            reads: vec![k.m("commit", 0, i)],
            writes: vec![],
            votes_yes: false,
        });
    }
    SiteSpec {
        states: states(&[
            ("q", StateKind::Initial),
            ("w", StateKind::Intermediate),
            ("p", StateKind::Intermediate),
            ("c", StateKind::Commit),
            ("a", StateKind::Abort),
        ]),
        transitions: t,
    }
}

/// Fig. 3: the three-phase commit protocol.
pub fn three_phase(n: usize) -> ProtocolSpec {
    assert!(n >= 2);
    let k = Kinds::new(&["xact", "yes", "no", "prepare", "ack", "commit", "abort"]);
    let mut sites = vec![three_phase_master(&k, n)];
    for i in 1..n {
        sites.push(three_phase_slave(&k, i, false));
    }
    ProtocolSpec { name: "3PC".into(), sites, kinds: k.table }
}

/// Fig. 8: the modified three-phase commit protocol (3PC plus the slave
/// `w --commit--> c` transition).
pub fn modified_three_phase(n: usize) -> ProtocolSpec {
    assert!(n >= 2);
    let k = Kinds::new(&["xact", "yes", "no", "prepare", "ack", "commit", "abort"]);
    let mut sites = vec![three_phase_master(&k, n)];
    for i in 1..n {
        sites.push(three_phase_slave(&k, i, true));
    }
    ProtocolSpec { name: "M3PC".into(), sites, kinds: k.table }
}

/// A four-phase master–slave commit protocol: 3PC with an extra `ready`
/// round between `prepare` and `commit`.
///
/// It satisfies the Theorem 10 conditions (no state with both a commit and
/// an abort concurrent; no noncommittable state with a commit concurrent),
/// with `prepare` as the decisive message `m` that moves slaves from
/// noncommittable to committable states. Used by experiment E11 to show the
/// generic termination-protocol recipe is not 3PC-specific.
pub fn four_phase(n: usize) -> ProtocolSpec {
    assert!(n >= 2);
    let k =
        Kinds::new(&["xact", "yes", "no", "prepare", "ack", "ready", "ack2", "commit", "abort"]);

    let mut master = SiteSpec {
        states: states(&[
            ("q1", StateKind::Initial),
            ("w1", StateKind::Intermediate),
            ("p1", StateKind::Intermediate),
            ("r1", StateKind::Intermediate),
            ("c1", StateKind::Commit),
            ("a1", StateKind::Abort),
        ]),
        transitions: vec![
            Transition {
                from: 0,
                to: 1,
                reads: vec![],
                writes: k.to_all_slaves("xact", n),
                votes_yes: false,
            },
            Transition {
                from: 1,
                to: 2,
                reads: k.from_all_slaves("yes", n),
                writes: k.to_all_slaves("prepare", n),
                votes_yes: true,
            },
            Transition {
                from: 2,
                to: 3,
                reads: k.from_all_slaves("ack", n),
                writes: k.to_all_slaves("ready", n),
                votes_yes: false,
            },
            Transition {
                from: 3,
                to: 4,
                reads: k.from_all_slaves("ack2", n),
                writes: k.to_all_slaves("commit", n),
                votes_yes: false,
            },
        ],
    };
    master.transitions.extend(master_aborts(&k, n, 1, 5));

    let mut sites = vec![master];
    for i in 1..n {
        let mut t = slave_votes(&k, i, 0, 1, 5);
        t.push(Transition {
            from: 1,
            to: 2,
            reads: vec![k.m("prepare", 0, i)],
            writes: vec![k.m("ack", i, 0)],
            votes_yes: false,
        });
        t.push(Transition {
            from: 1,
            to: 5,
            reads: vec![k.m("abort", 0, i)],
            writes: vec![],
            votes_yes: false,
        });
        t.push(Transition {
            from: 2,
            to: 3,
            reads: vec![k.m("ready", 0, i)],
            writes: vec![k.m("ack2", i, 0)],
            votes_yes: false,
        });
        t.push(Transition {
            from: 3,
            to: 4,
            reads: vec![k.m("commit", 0, i)],
            writes: vec![],
            votes_yes: false,
        });
        // Termination-protocol support: accept a peer's commit early
        // (the four-phase analogue of the Fig. 8 modification).
        for from in [1usize, 2] {
            t.push(Transition {
                from,
                to: 4,
                reads: vec![k.m("commit", 0, i)],
                writes: vec![],
                votes_yes: false,
            });
        }
        sites.push(SiteSpec {
            states: states(&[
                ("q", StateKind::Initial),
                ("w", StateKind::Intermediate),
                ("p", StateKind::Intermediate),
                ("r", StateKind::Intermediate),
                ("c", StateKind::Commit),
                ("a", StateKind::Abort),
            ]),
            transitions: t,
        });
    }

    ProtocolSpec { name: "4PC".into(), sites, kinds: k.table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_validate() {
        for n in 2..=5 {
            two_phase(n).validate().unwrap();
            extended_two_phase(n).validate().unwrap();
            three_phase(n).validate().unwrap();
            modified_three_phase(n).validate().unwrap();
            four_phase(n).validate().unwrap();
        }
    }

    #[test]
    fn two_phase_shape() {
        let p = two_phase(3);
        assert_eq!(p.sites[0].states.len(), 4);
        assert_eq!(p.sites[1].states.len(), 4);
        // master: start, commit, 2 abort transitions.
        assert_eq!(p.sites[0].transitions.len(), 4);
        // slave: yes, no, commit, abort.
        assert_eq!(p.sites[1].transitions.len(), 4);
    }

    #[test]
    fn three_phase_has_prepare_round() {
        let p = three_phase(3);
        assert!(p.kinds.contains(&"prepare"));
        assert!(p.kinds.contains(&"ack"));
        let master = &p.sites[0];
        assert_eq!(master.states.len(), 5);
    }

    #[test]
    fn modified_three_phase_adds_w_commit() {
        let p3 = three_phase(3);
        let m3 = modified_three_phase(3);
        assert_eq!(m3.sites[1].transitions.len(), p3.sites[1].transitions.len() + 1);
        // The extra transition goes from w (1) to c (3) reading a commit.
        let extra = m3.sites[1].transitions.last().unwrap();
        assert_eq!((extra.from, extra.to), (1, 3));
    }

    #[test]
    fn four_phase_has_ready_round() {
        let p = four_phase(3);
        assert!(p.kinds.contains(&"ready"));
        assert!(p.kinds.contains(&"ack2"));
        assert_eq!(p.sites[0].states.len(), 6);
        assert_eq!(p.sites[1].states.len(), 6);
    }

    #[test]
    fn slaves_are_symmetric() {
        let p = three_phase(4);
        for i in 2..4 {
            assert_eq!(p.sites[1].states.len(), p.sites[i].states.len());
            assert_eq!(p.sites[1].transitions.len(), p.sites[i].transitions.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn single_site_rejected() {
        two_phase(1);
    }

    #[test]
    fn vote_marking() {
        let p = three_phase(3);
        // Exactly one voting transition per site.
        for site in &p.sites {
            assert_eq!(site.transitions.iter().filter(|t| t.votes_yes).count(), 1);
        }
    }
}
