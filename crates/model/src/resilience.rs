//! The Lemma 1 / Lemma 2 necessary conditions, checked mechanically.
//!
//! Lemma 1: a commit protocol can be made resilient to optimistic multisite
//! simple network partitioning **only if** no local state has both a commit
//! and an abort state in its concurrency set.
//!
//! Lemma 2: ... **only if** no local state is noncommittable while having a
//! commit state in its concurrency set.
//!
//! (These generalize Skeen's Fundamental Nonblocking Theorem from site
//! failures to partitions.) Experiment E4 runs this checker over every
//! protocol in the suite: 2PC and E2PC violate the conditions at `n ≥ 3`,
//! 3PC/M3PC/4PC satisfy them.

use crate::committable::Committability;
use crate::concurrency::ConcurrencySets;
use crate::fsa::{ProtocolSpec, StateKind, StateRef};
use crate::global::GlobalGraph;

/// A state with both a commit and an abort potentially concurrent (Lemma 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma1Violation {
    /// The offending state.
    pub state: StateRef,
    /// A concurrent commit state.
    pub commit_witness: StateRef,
    /// A concurrent abort state.
    pub abort_witness: StateRef,
}

/// A noncommittable state with a commit potentially concurrent (Lemma 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lemma2Violation {
    /// The offending (noncommittable) state.
    pub state: StateRef,
    /// A concurrent commit state.
    pub commit_witness: StateRef,
}

/// Result of checking both necessary conditions.
#[derive(Debug, Clone, Default)]
pub struct ResilienceReport {
    /// All Lemma 1 violations.
    pub lemma1: Vec<Lemma1Violation>,
    /// All Lemma 2 violations.
    pub lemma2: Vec<Lemma2Violation>,
}

impl ResilienceReport {
    /// True if both necessary conditions hold.
    pub fn satisfies_conditions(&self) -> bool {
        self.lemma1.is_empty() && self.lemma2.is_empty()
    }
}

/// Checks the two necessary conditions against a protocol spec.
pub fn check_conditions(spec: &ProtocolSpec) -> ResilienceReport {
    let graph = GlobalGraph::explore(spec);
    check_conditions_with(spec, &graph)
}

/// Same as [`check_conditions`], reusing an already-explored graph.
pub fn check_conditions_with(spec: &ProtocolSpec, graph: &GlobalGraph) -> ResilienceReport {
    let csets = ConcurrencySets::compute(spec, graph);
    let committability = Committability::compute(spec, graph);
    let mut report = ResilienceReport::default();

    for s in spec.all_states() {
        let cset = csets.of(s);
        let commit_witness =
            cset.iter().copied().find(|t| spec.state_kind(*t) == StateKind::Commit);
        let abort_witness = cset.iter().copied().find(|t| spec.state_kind(*t) == StateKind::Abort);

        if let (Some(cw), Some(aw)) = (commit_witness, abort_witness) {
            report.lemma1.push(Lemma1Violation { state: s, commit_witness: cw, abort_witness: aw });
        }
        if let Some(cw) = commit_witness {
            if !committability.is_committable(s) {
                report.lemma2.push(Lemma2Violation { state: s, commit_witness: cw });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{
        extended_two_phase, four_phase, modified_three_phase, three_phase, two_phase,
    };

    #[test]
    fn two_pc_violates_both_lemmas() {
        let spec = two_phase(3);
        let report = check_conditions(&spec);
        assert!(!report.satisfies_conditions());
        // The violating state must include the slave wait state.
        let w = spec.state_ref(1, "w");
        assert!(report.lemma1.iter().any(|v| v.state == w));
        assert!(report.lemma2.iter().any(|v| v.state == w));
    }

    #[test]
    fn extended_two_pc_violates_lemmas_at_n3() {
        // The paper's Sec. 3 observation: in the multisite case the slave
        // wait state has both a commit (another slave's c) and an abort in
        // its concurrency set, and is noncommittable with a commit
        // concurrent.
        let spec = extended_two_phase(3);
        let report = check_conditions(&spec);
        let w = spec.state_ref(1, "w");
        assert!(report.lemma1.iter().any(|v| v.state == w));
        assert!(report.lemma2.iter().any(|v| v.state == w));
    }

    #[test]
    fn extended_two_pc_slave_wait_clean_at_n2() {
        // At n=2 the ack phase keeps commits out of C(w): the Sec. 3 failure
        // is genuinely a multisite phenomenon.
        let spec = extended_two_phase(2);
        let graph = GlobalGraph::explore(&spec);
        let csets = ConcurrencySets::compute(&spec, &graph);
        let w = spec.state_ref(1, "w");
        assert!(!csets.contains_commit(&spec, w));
    }

    #[test]
    fn three_pc_satisfies_both_lemmas() {
        for n in [2, 3, 4] {
            let report = check_conditions(&three_phase(n));
            assert!(report.satisfies_conditions(), "3PC n={n}: {report:?}");
        }
    }

    #[test]
    fn modified_three_pc_satisfies_both_lemmas() {
        for n in [2, 3, 4] {
            let report = check_conditions(&modified_three_phase(n));
            assert!(report.satisfies_conditions(), "M3PC n={n}: {report:?}");
        }
    }

    #[test]
    fn four_pc_satisfies_both_lemmas() {
        let report = check_conditions(&four_phase(3));
        assert!(report.satisfies_conditions(), "{report:?}");
    }

    #[test]
    fn violations_carry_witnesses() {
        let spec = two_phase(3);
        let report = check_conditions(&spec);
        for v in &report.lemma1 {
            assert_eq!(spec.state_kind(v.commit_witness), StateKind::Commit);
            assert_eq!(spec.state_kind(v.abort_witness), StateKind::Abort);
        }
        for v in &report.lemma2 {
            assert_eq!(spec.state_kind(v.commit_witness), StateKind::Commit);
        }
    }
}
