//! Global-state reachability.
//!
//! Sec. 2: "The global state of a distributed transaction consists of (1) a
//! global state vector containing the local states of the participating
//! sites, (2) the outstanding messages in the network." This module
//! enumerates every global state reachable in failure-free executions — the
//! universe the paper's concurrency sets and committable classifications are
//! defined over.

use crate::fsa::{Msg, ProtocolSpec};
use std::collections::{HashMap, VecDeque};

/// A global state: local state per site plus outstanding messages.
///
/// `msgs` is a sorted multiset (commit protocols never have two identical
/// outstanding message instances, but the representation tolerates it).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalState {
    /// Local state index per site.
    pub locals: Vec<u8>,
    /// Outstanding messages, sorted.
    pub msgs: Vec<Msg>,
}

impl GlobalState {
    /// The initial global state: every site in its initial state, no
    /// messages outstanding.
    pub fn initial(spec: &ProtocolSpec) -> GlobalState {
        GlobalState { locals: vec![0; spec.n()], msgs: Vec::new() }
    }

    /// True if `self.msgs` contains every message in `reads` (multiset
    /// containment).
    fn contains_all(&self, reads: &[Msg]) -> bool {
        // Counts matter if `reads` repeats an instance.
        reads.iter().all(|r| {
            let needed = reads.iter().filter(|x| *x == r).count();
            let have = self.msgs.iter().filter(|x| *x == r).count();
            have >= needed
        })
    }

    /// Applies a transition of `site`: consumes `reads`, produces `writes`,
    /// moves the local state.
    fn apply(&self, site: usize, to: usize, reads: &[Msg], writes: &[Msg]) -> GlobalState {
        let mut next = self.clone();
        for r in reads {
            let pos = next.msgs.iter().position(|m| m == r).expect("read not outstanding");
            next.msgs.remove(pos);
        }
        next.msgs.extend_from_slice(writes);
        next.msgs.sort_unstable();
        next.locals[site] = to as u8;
        next
    }
}

/// An edge in the global-state graph: site `site` took its transition number
/// `transition`, moving global state `from` to `to` (indices into
/// [`GlobalGraph::states`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalEdge {
    /// Source global state index.
    pub from: usize,
    /// Site that moved.
    pub site: usize,
    /// Index of the transition in that site's spec.
    pub transition: usize,
    /// Destination global state index.
    pub to: usize,
}

/// The reachable global-state graph of a protocol.
#[derive(Debug, Clone)]
pub struct GlobalGraph {
    /// All reachable global states; index 0 is the initial state.
    pub states: Vec<GlobalState>,
    /// All transitions between reachable states.
    pub edges: Vec<GlobalEdge>,
}

impl GlobalGraph {
    /// Breadth-first exploration of every reachable global state.
    ///
    /// Commit protocols are finite and acyclic, so this always terminates;
    /// a (generous) safety cap guards against malformed specs.
    pub fn explore(spec: &ProtocolSpec) -> GlobalGraph {
        const CAP: usize = 5_000_000;
        let initial = GlobalState::initial(spec);
        let mut index: HashMap<GlobalState, usize> = HashMap::new();
        index.insert(initial.clone(), 0);
        let mut states = vec![initial];
        let mut edges = Vec::new();
        let mut queue = VecDeque::from([0usize]);

        while let Some(cur) = queue.pop_front() {
            assert!(states.len() < CAP, "global state space exceeded safety cap");
            let g = states[cur].clone();
            for (site, ss) in spec.sites.iter().enumerate() {
                let local = g.locals[site] as usize;
                for (ti, t) in ss.transitions.iter().enumerate() {
                    if t.from != local || !g.contains_all(&t.reads) {
                        continue;
                    }
                    let next = g.apply(site, t.to, &t.reads, &t.writes);
                    let next_idx = *index.entry(next.clone()).or_insert_with(|| {
                        states.push(next);
                        queue.push_back(states.len() - 1);
                        states.len() - 1
                    });
                    edges.push(GlobalEdge { from: cur, site, transition: ti, to: next_idx });
                }
            }
        }
        GlobalGraph { states, edges }
    }

    /// Global states with no outgoing edges (completed or deadlocked runs).
    pub fn terminal_states(&self) -> Vec<usize> {
        let mut has_out = vec![false; self.states.len()];
        for e in &self.edges {
            has_out[e.from] = true;
        }
        (0..self.states.len()).filter(|&i| !has_out[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsa::StateKind;
    use crate::protocols::{three_phase, two_phase};

    #[test]
    fn initial_state_is_all_q_no_messages() {
        let spec = two_phase(3);
        let g = GlobalState::initial(&spec);
        assert_eq!(g.locals, vec![0, 0, 0]);
        assert!(g.msgs.is_empty());
    }

    #[test]
    fn two_phase_two_sites_reachability() {
        let spec = two_phase(2);
        let graph = GlobalGraph::explore(&spec);
        // Must include the all-commit and all-abort terminal states.
        let c1 = spec.state_ref(0, "c1").state as u8;
        let c = spec.state_ref(1, "c").state as u8;
        let a1 = spec.state_ref(0, "a1").state as u8;
        let a = spec.state_ref(1, "a").state as u8;
        assert!(graph.states.iter().any(|g| g.locals == vec![c1, c] && g.msgs.is_empty()));
        assert!(graph.states.iter().any(|g| g.locals == vec![a1, a] && g.msgs.is_empty()));
    }

    #[test]
    fn terminal_states_are_decision_states() {
        let spec = two_phase(2);
        let graph = GlobalGraph::explore(&spec);
        for idx in graph.terminal_states() {
            let g = &graph.states[idx];
            // In 2PC with 2 sites every terminal state has both sites in a
            // final state (no lost messages in failure-free executions
            // except unread no-votes, which need >=2 slaves).
            for (site, &l) in g.locals.iter().enumerate() {
                assert!(
                    spec.sites[site].states[l as usize].kind.is_final(),
                    "non-final site in terminal global state: {g:?}"
                );
            }
        }
    }

    #[test]
    fn no_mixed_decisions_in_failure_free_runs() {
        // Atomicity of the base protocols in the absence of failures: no
        // reachable global state has one site committed and another aborted.
        for spec in [two_phase(3), three_phase(3)] {
            let graph = GlobalGraph::explore(&spec);
            for g in &graph.states {
                let mut commit = false;
                let mut abort = false;
                for (site, &l) in g.locals.iter().enumerate() {
                    match spec.sites[site].states[l as usize].kind {
                        StateKind::Commit => commit = true,
                        StateKind::Abort => abort = true,
                        _ => {}
                    }
                }
                assert!(!(commit && abort), "mixed decision in {g:?}");
            }
        }
    }

    #[test]
    fn three_phase_graph_is_larger_than_two_phase() {
        let g2 = GlobalGraph::explore(&two_phase(3));
        let g3 = GlobalGraph::explore(&three_phase(3));
        assert!(g3.states.len() > g2.states.len());
    }

    #[test]
    fn explore_is_deterministic() {
        let a = GlobalGraph::explore(&three_phase(3));
        let b = GlobalGraph::explore(&three_phase(3));
        assert_eq!(a.states, b.states);
        assert_eq!(a.edges.len(), b.edges.len());
    }

    #[test]
    fn contains_all_respects_multiplicity() {
        let m = Msg { kind: 0, src: 0, dst: 1 };
        let g = GlobalState { locals: vec![0, 0], msgs: vec![m] };
        assert!(g.contains_all(&[m]));
        assert!(!g.contains_all(&[m, m]));
    }

    #[test]
    fn apply_consumes_and_produces() {
        let m_in = Msg { kind: 0, src: 0, dst: 1 };
        let m_out = Msg { kind: 1, src: 1, dst: 0 };
        let g = GlobalState { locals: vec![0, 0], msgs: vec![m_in] };
        let next = g.apply(1, 1, &[m_in], &[m_out]);
        assert_eq!(next.locals, vec![0, 1]);
        assert_eq!(next.msgs, vec![m_out]);
    }
}
