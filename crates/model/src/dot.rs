//! Graphviz (DOT) export — machine-readable regenerations of the paper's
//! protocol figures (Figs. 1, 2, 3, 8).
//!
//! One cluster is drawn for the master and one for a representative slave
//! (`site i, i = 2..n` in the paper's caption language). Timeout transitions
//! from an [`Augmentation`] are drawn dashed, undeliverable-message
//! transitions dotted — matching the legend of the paper's Fig. 2.

use crate::fsa::{Augmentation, Decision, ProtocolSpec, Role, StateKind};
use std::fmt::Write as _;

/// Renders the protocol (and optional augmentation) as a DOT digraph.
pub fn to_dot(spec: &ProtocolSpec, augmentation: Option<&Augmentation>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", spec.name);
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=circle, fontname=\"Helvetica\"];");

    for (cluster, site, role, title) in
        [(0, 0usize, Role::Master, "master (site 1)"), (1, 1usize, Role::Slave, "slave (site i)")]
    {
        let ss = &spec.sites[site];
        let _ = writeln!(out, "  subgraph cluster_{cluster} {{");
        let _ = writeln!(out, "    label=\"{title}\";");
        for st in &ss.states {
            let shape = match st.kind {
                StateKind::Commit | StateKind::Abort => "doublecircle",
                _ => "circle",
            };
            let _ = writeln!(
                out,
                "    \"{}_{}\" [label=\"{}\", shape={shape}];",
                role_tag(role),
                st.name,
                st.name
            );
        }
        for t in &ss.transitions {
            let reads: Vec<&str> = t.reads.iter().map(|m| spec.kinds[m.kind as usize]).collect();
            let writes: Vec<&str> = t.writes.iter().map(|m| spec.kinds[m.kind as usize]).collect();
            let mut label = String::new();
            if reads.is_empty() {
                label.push_str("(request)");
            } else {
                label.push_str(&dedup_join(&reads));
            }
            if !writes.is_empty() {
                label.push('/');
                label.push_str(&dedup_join(&writes));
            }
            let _ = writeln!(
                out,
                "    \"{}_{}\" -> \"{}_{}\" [label=\"{label}\"];",
                role_tag(role),
                ss.states[t.from].name,
                role_tag(role),
                ss.states[t.to].name,
            );
        }
        if let Some(aug) = augmentation {
            for st in &ss.states {
                if st.kind.is_final() {
                    continue;
                }
                if let Some(d) = aug.timeout_for(role, &st.name) {
                    let _ = writeln!(
                        out,
                        "    \"{}_{}\" -> \"{}_{}\" [style=dashed, label=\"timeout\"];",
                        role_tag(role),
                        st.name,
                        role_tag(role),
                        decision_state(ss, d),
                    );
                }
                if let Some(d) = aug.ud_for(role, &st.name) {
                    let _ = writeln!(
                        out,
                        "    \"{}_{}\" -> \"{}_{}\" [style=dotted, label=\"UD\"];",
                        role_tag(role),
                        st.name,
                        role_tag(role),
                        decision_state(ss, d),
                    );
                }
            }
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn role_tag(role: Role) -> &'static str {
    match role {
        Role::Master => "m",
        Role::Slave => "s",
    }
}

/// Name of the site's commit/abort state.
fn decision_state(ss: &crate::fsa::SiteSpec, d: Decision) -> &str {
    let kind = match d {
        Decision::Commit => StateKind::Commit,
        Decision::Abort => StateKind::Abort,
    };
    ss.states
        .iter()
        .find(|s| s.kind == kind)
        .map(|s| s.name.as_str())
        .expect("protocol has commit and abort states")
}

/// Joins kind names, collapsing duplicates ("yes,yes" -> "yes*").
fn dedup_join(kinds: &[&str]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for k in kinds {
        if !seen.contains(k) {
            seen.push(k);
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(k);
            if kinds.iter().filter(|x| *x == k).count() > 1 {
                out.push('*');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{modified_three_phase, three_phase, two_phase};
    use crate::rules::derive_rules_augmentation;

    #[test]
    fn dot_contains_master_and_slave_clusters() {
        let dot = to_dot(&two_phase(3), None);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("master (site 1)"));
        assert!(dot.contains("slave (site i)"));
    }

    #[test]
    fn final_states_are_double_circles() {
        let dot = to_dot(&three_phase(3), None);
        assert!(dot.contains("\"m_c1\" [label=\"c1\", shape=doublecircle]"));
        assert!(dot.contains("\"s_a\" [label=\"a\", shape=doublecircle]"));
    }

    #[test]
    fn augmented_dot_has_dashed_timeout_edges() {
        let spec = three_phase(2);
        let aug = derive_rules_augmentation(&spec).augmentation;
        let dot = to_dot(&spec, Some(&aug));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=dotted"));
    }

    #[test]
    fn duplicate_kinds_collapse() {
        // The master reads yes from every slave: rendered once with a star.
        let dot = to_dot(&three_phase(4), None);
        assert!(dot.contains("yes*"));
        assert!(!dot.contains("yes,yes"));
    }

    #[test]
    fn modified_3pc_has_w_to_c_edge() {
        let dot = to_dot(&modified_three_phase(3), None);
        assert!(dot.contains("\"s_w\" -> \"s_c\""));
    }

    #[test]
    fn output_is_valid_ish_dot() {
        let dot = to_dot(&two_phase(2), None);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        // Balanced braces.
        let open = dot.matches('{').count();
        let close = dot.matches('}').count();
        assert_eq!(open, close);
    }
}
