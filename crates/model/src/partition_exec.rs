//! Abstract (untimed) partition executions — the Lemma 3 adversary as an
//! exhaustive search.
//!
//! The paper's Lemma 3 proof works in the bare formal model: pick any
//! global state `Hⁱ` of a failure-free execution, partition the sites into
//! two groups, return the cross-boundary outstanding messages to their
//! senders, and let each site run to a final state via its base
//! transitions, its undeliverable-message transitions, and its timeout
//! transitions. No clocks — the adversary controls all interleavings and
//! may fire any timeout at any moment.
//!
//! [`find_violation`] explores that whole space mechanically: every
//! reachable failure-free global state × every simple boundary × every
//! interleaving of deliveries, UD receipts and timeouts. It is the
//! untimed, *exhaustive* counterpart of the timed grid search in
//! `exp_lemma3_augmentations`: together they show every one of the 4096
//! timeout/UD augmentations of 3PC admits an atomicity violation — both
//! under the paper's adversary and under concrete bounded-delay schedules.

use crate::fsa::{Augmentation, Decision, Msg, ProtocolSpec, StateKind};
use crate::global::{GlobalGraph, GlobalState};
use std::collections::{HashSet, VecDeque};

/// A witness that an augmented protocol violates atomicity under some
/// simple partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Index of the pre-partition global state in the exploration graph.
    pub from_global: usize,
    /// The non-master partition group (site indices).
    pub g2: Vec<usize>,
    /// The local states at the violating configuration, per site.
    pub locals: Vec<u8>,
}

/// One post-partition configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Config {
    locals: Vec<u8>,
    /// Deliverable messages (both endpoints on the same side), sorted.
    pool: Vec<Msg>,
    /// Undeliverable messages pending return, keyed by sender: sorted
    /// `(sender, msg)` pairs.
    ud: Vec<(u8, Msg)>,
}

/// Explores every abstract post-partition execution of `spec` + `aug` and
/// returns a witness if some reachable configuration has one site committed
/// and another aborted.
///
/// Sites without a timeout (UD) assignment simply never take that step —
/// they may block, which Lemma 3 separately counts as non-resilient; this
/// search looks for the stronger inconsistency witness.
pub fn find_violation(spec: &ProtocolSpec, aug: &Augmentation) -> Option<Witness> {
    let graph = GlobalGraph::explore(spec);
    let n = spec.n();

    // Every simple boundary: non-empty proper subsets of slaves form G2.
    let slaves: Vec<usize> = (1..n).collect();
    let mut boundaries: Vec<Vec<usize>> = Vec::new();
    for mask in 1u32..(1 << slaves.len()) {
        boundaries.push(
            slaves
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, s)| *s)
                .collect(),
        );
    }

    for (gi, h) in graph.states.iter().enumerate() {
        for g2 in &boundaries {
            if let Some(locals) = explore_partition(spec, aug, h, g2) {
                return Some(Witness { from_global: gi, g2: g2.clone(), locals });
            }
        }
    }
    None
}

/// True if `a` and `b` are on the same side of the boundary.
fn same_side(g2: &[usize], a: usize, b: usize) -> bool {
    g2.contains(&a) == g2.contains(&b)
}

/// BFS over all interleavings after partitioning global state `h` along
/// `g2`. Returns the locals of a violating configuration, if any.
fn explore_partition(
    spec: &ProtocolSpec,
    aug: &Augmentation,
    h: &GlobalState,
    g2: &[usize],
) -> Option<Vec<u8>> {
    // Split the outstanding messages: same-side stay deliverable,
    // cross-boundary bounce back to their senders.
    let mut pool = Vec::new();
    let mut ud = Vec::new();
    for m in &h.msgs {
        if same_side(g2, m.src as usize, m.dst as usize) {
            pool.push(*m);
        } else {
            ud.push((m.src, *m));
        }
    }
    pool.sort_unstable();
    ud.sort_unstable();

    let initial = Config { locals: h.locals.clone(), pool, ud };
    let mut seen: HashSet<Config> = HashSet::new();
    seen.insert(initial.clone());
    let mut queue = VecDeque::from([initial]);

    while let Some(cfg) = queue.pop_front() {
        if violates(spec, &cfg.locals) {
            return Some(cfg.locals);
        }
        for next in successors(spec, aug, g2, &cfg) {
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    None
}

/// One site committed while another aborted?
fn violates(spec: &ProtocolSpec, locals: &[u8]) -> bool {
    let mut commit = false;
    let mut abort = false;
    for (site, &l) in locals.iter().enumerate() {
        match spec.sites[site].states[l as usize].kind {
            StateKind::Commit => commit = true,
            StateKind::Abort => abort = true,
            _ => {}
        }
    }
    commit && abort
}

/// All configurations reachable in one step.
fn successors(spec: &ProtocolSpec, aug: &Augmentation, g2: &[usize], cfg: &Config) -> Vec<Config> {
    let mut out = Vec::new();

    for site in 0..spec.n() {
        let local = cfg.locals[site] as usize;
        let kind = spec.sites[site].states[local].kind;
        if kind.is_final() {
            continue;
        }
        let role = spec.role_of(site);
        let name = &spec.sites[site].states[local].name;

        // (a) Base transitions over the deliverable pool.
        for t in &spec.sites[site].transitions {
            if t.from != local || !contains_all(&cfg.pool, &t.reads) {
                continue;
            }
            let mut next = cfg.clone();
            for r in &t.reads {
                let pos = next.pool.iter().position(|m| m == r).expect("read in pool");
                next.pool.remove(pos);
            }
            for w in &t.writes {
                if same_side(g2, w.src as usize, w.dst as usize) {
                    next.pool.push(*w);
                } else {
                    next.ud.push((w.src, *w));
                }
            }
            next.pool.sort_unstable();
            next.ud.sort_unstable();
            next.locals[site] = t.to as u8;
            out.push(next);
        }

        // (b) Receive one pending undeliverable message.
        if let Some(pos) = cfg.ud.iter().position(|(s, _)| *s as usize == site) {
            let mut next = cfg.clone();
            next.ud.remove(pos);
            if let Some(d) = aug.ud_for(role, name) {
                next.locals[site] = decision_state(spec, site, d);
            }
            out.push(next);
        }

        // (c) Time out (the adversary may fire it whenever the site is not
        // final).
        if let Some(d) = aug.timeout_for(role, name) {
            let mut next = cfg.clone();
            next.locals[site] = decision_state(spec, site, d);
            out.push(next);
        }
    }
    out
}

fn contains_all(pool: &[Msg], reads: &[Msg]) -> bool {
    reads.iter().all(|r| {
        let needed = reads.iter().filter(|x| *x == r).count();
        pool.iter().filter(|x| *x == r).count() >= needed
    })
}

fn decision_state(spec: &ProtocolSpec, site: usize, d: Decision) -> u8 {
    let want = match d {
        Decision::Commit => StateKind::Commit,
        Decision::Abort => StateKind::Abort,
    };
    spec.sites[site].states.iter().position(|s| s.kind == want).expect("final states exist") as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::three_phase;
    use crate::rules::derive_rules_augmentation;

    #[test]
    fn rules_augmentation_has_an_abstract_violation() {
        // The Sec. 3 observation, found by the paper's own adversary.
        let spec = three_phase(3);
        let aug = derive_rules_augmentation(&spec).augmentation;
        let witness = find_violation(&spec, &aug);
        assert!(witness.is_some(), "Rule (a)/(b) 3PC must break abstractly");
    }

    #[test]
    fn witness_is_a_real_mixed_configuration() {
        let spec = three_phase(3);
        let aug = derive_rules_augmentation(&spec).augmentation;
        let w = find_violation(&spec, &aug).unwrap();
        assert!(violates(&spec, &w.locals));
        assert!(!w.g2.is_empty());
        assert!(!w.g2.contains(&0), "the master defines G1");
    }

    #[test]
    fn all_abort_augmentation_still_breaks() {
        // Timeout/UD everywhere-to-abort conflicts with a commit already
        // sent: partition right after the master's p1 -> c1 transition.
        let spec = three_phase(3);
        let mut aug = Augmentation::default();
        for (role, name) in
            [(crate::Role::Master, "q1"), (crate::Role::Master, "w1"), (crate::Role::Master, "p1")]
        {
            aug.timeout.insert((role, name.into()), Decision::Abort);
            aug.ud.insert((role, name.into()), Decision::Abort);
        }
        for name in ["q", "w", "p"] {
            aug.timeout.insert((crate::Role::Slave, name.into()), Decision::Abort);
            aug.ud.insert((crate::Role::Slave, name.into()), Decision::Abort);
        }
        assert!(find_violation(&spec, &aug).is_some());
    }

    #[test]
    fn two_site_3pc_with_rules_is_abstractly_safe_modulo_timeout_adversary() {
        // At n = 2 the Skeen–Stonebraker rules are sufficient *in the timed
        // model*. The untimed adversary here is strictly stronger (it may
        // fire a timeout while the triggering message is still deliverable),
        // so it can still fabricate violations; this documents the
        // difference between the two adversaries rather than contradicting
        // the rules' two-site sufficiency.
        let spec = three_phase(2);
        let aug = derive_rules_augmentation(&spec).augmentation;
        // Either outcome is allowed; the function must simply terminate on
        // the full space.
        let _ = find_violation(&spec, &aug);
    }
}
