//! # ptp-model — the Skeen–Stonebraker formal model, executable
//!
//! Huang & Li's paper reasons about commit protocols in the formal model of
//! Skeen & Stonebraker (IEEE TSE 1983): each site is a finite state
//! automaton, the network is a shared message pool, and a global state is a
//! vector of local states plus the outstanding messages. This crate makes
//! that model executable so the paper's definitions and lemmas become
//! checkable computations:
//!
//! | Paper concept | Here |
//! |---|---|
//! | Commit protocol FSAs (Figs. 1, 2, 3, 8) | [`protocols`] constructors |
//! | Global states / reachability | [`global::GlobalGraph`] |
//! | Concurrency set `C(s)` | [`concurrency::ConcurrencySets`] |
//! | Sender set `S(s)` | [`concurrency::sender_set`] |
//! | Committable states | [`committable::Committability`] |
//! | Lemma 1 & 2 necessary conditions | [`resilience::check_conditions`] |
//! | Rule (a)/(b) timeout & UD augmentation | [`rules::derive_rules_augmentation`] |
//! | Lemma 3's space of augmentations | [`augment::enumerate_augmentations`] |
//! | Figure rendering | [`dot::to_dot`] |
//!
//! ## Example: the 2PC blocking diagnosis, mechanically
//!
//! ```
//! use ptp_model::protocols::two_phase;
//! use ptp_model::resilience::check_conditions;
//!
//! let report = check_conditions(&two_phase(3));
//! // 2PC violates both necessary conditions: its slave wait state has both
//! // a commit and an abort in its concurrency set, and is noncommittable
//! // with a commit concurrent.
//! assert!(!report.satisfies_conditions());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod committable;
pub mod concurrency;
pub mod dot;
pub mod fsa;
pub mod global;
pub mod partition_exec;
pub mod protocols;
pub mod resilience;
pub mod rules;

pub use fsa::{
    Augmentation, Decision, Msg, ProtocolSpec, Role, SiteSpec, StateDef, StateKind, StateRef,
    Transition,
};
pub use global::{GlobalEdge, GlobalGraph, GlobalState};
