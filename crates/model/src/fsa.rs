//! Commit protocols as communicating finite state automata.
//!
//! This is the formal model of Skeen & Stonebraker (IEEE TSE 1983) that the
//! paper builds on (Sec. 2): "Transaction execution at each site is modelled
//! as a finite state automaton (FSA), with the network serving as a common
//! input/output tape to all sites."
//!
//! A [`ProtocolSpec`] holds one automaton per site. Transitions read a
//! (possibly empty) set of messages addressed to the site, write a set of
//! messages, and move to the next local state. Spontaneous transitions (empty
//! read set) model external stimuli such as the user's "request" at the
//! master or a slave's unilateral no-vote.

use std::collections::BTreeMap;
use std::fmt;

/// Classification of a local state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StateKind {
    /// The initial state `q`.
    Initial,
    /// Any non-final, non-initial state (`w`, `p`, ...).
    Intermediate,
    /// The commit state `c` (final).
    Commit,
    /// The abort state `a` (final).
    Abort,
}

impl StateKind {
    /// Final states admit no further transitions.
    pub fn is_final(self) -> bool {
        matches!(self, StateKind::Commit | StateKind::Abort)
    }
}

/// A local state of one site's automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDef {
    /// Display name, e.g. `"w1"` for the master's wait state.
    pub name: String,
    /// Classification.
    pub kind: StateKind,
}

/// A message instance: kind plus addressing. In the formal model the
/// message *instance* `yes_2` (slave 2's yes, addressed to the master) is
/// distinct from `yes_3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msg {
    /// Index into the spec's message-kind table.
    pub kind: u8,
    /// Sending site.
    pub src: u8,
    /// Destination site.
    pub dst: u8,
}

/// A transition of one site's automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source local state (index into the site's state table).
    pub from: usize,
    /// Destination local state.
    pub to: usize,
    /// Messages consumed — all must be outstanding and addressed to this
    /// site. Empty means the transition is spontaneous.
    pub reads: Vec<Msg>,
    /// Messages produced.
    pub writes: Vec<Msg>,
    /// True if taking this transition constitutes the site's yes-vote.
    /// Used for the committable-state classification (Sec. 3).
    pub votes_yes: bool,
}

/// One site's automaton.
#[derive(Debug, Clone, Default)]
pub struct SiteSpec {
    /// Local states; index 0 is the initial state.
    pub states: Vec<StateDef>,
    /// Transitions.
    pub transitions: Vec<Transition>,
}

impl SiteSpec {
    /// Index of the state named `name`.
    ///
    /// # Panics
    /// Panics if the name is unknown (specs are static, so this is a bug).
    pub fn state_index(&self, name: &str) -> usize {
        self.states
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown state {name:?}"))
    }
}

/// Which role a site plays. Site 0 is always the master in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// The coordinator (the paper's site 1; our site 0).
    Master,
    /// Any other participant.
    Slave,
}

/// A reference to a local state: `(site, state index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateRef {
    /// Site index.
    pub site: usize,
    /// State index within that site's automaton.
    pub state: usize,
}

/// A complete protocol: one automaton per site plus the message-kind table.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Human-readable protocol name (e.g. `"3PC"`).
    pub name: String,
    /// Per-site automata; index 0 is the master.
    pub sites: Vec<SiteSpec>,
    /// Message-kind names; `Msg::kind` indexes this table.
    pub kinds: Vec<&'static str>,
}

impl ProtocolSpec {
    /// Number of sites.
    pub fn n(&self) -> usize {
        self.sites.len()
    }

    /// The role of a site (site 0 is the master).
    pub fn role_of(&self, site: usize) -> Role {
        if site == 0 {
            Role::Master
        } else {
            Role::Slave
        }
    }

    /// Kind index for a kind name.
    ///
    /// # Panics
    /// Panics if the kind is not in the table.
    pub fn kind_index(&self, kind: &str) -> u8 {
        self.kinds
            .iter()
            .position(|k| *k == kind)
            .unwrap_or_else(|| panic!("unknown message kind {kind:?}")) as u8
    }

    /// Display name of a local state.
    pub fn state_name(&self, r: StateRef) -> &str {
        &self.sites[r.site].states[r.state].name
    }

    /// Kind of a local state.
    pub fn state_kind(&self, r: StateRef) -> StateKind {
        self.sites[r.site].states[r.state].kind
    }

    /// Iterates over every `(site, state index)` pair.
    pub fn all_states(&self) -> impl Iterator<Item = StateRef> + '_ {
        self.sites
            .iter()
            .enumerate()
            .flat_map(|(site, ss)| (0..ss.states.len()).map(move |state| StateRef { site, state }))
    }

    /// Looks up a state by `(site, name)`.
    pub fn state_ref(&self, site: usize, name: &str) -> StateRef {
        StateRef { site, state: self.sites[site].state_index(name) }
    }

    /// Basic well-formedness checks: transition indices in range, message
    /// addressing consistent with the owning site, final states without
    /// outgoing transitions.
    pub fn validate(&self) -> Result<(), String> {
        for (site, ss) in self.sites.iter().enumerate() {
            for (ti, t) in ss.transitions.iter().enumerate() {
                if t.from >= ss.states.len() || t.to >= ss.states.len() {
                    return Err(format!(
                        "{}: site {site} transition {ti} state out of range",
                        self.name
                    ));
                }
                if ss.states[t.from].kind.is_final() {
                    return Err(format!(
                        "{}: site {site} has a transition out of final state {}",
                        self.name, ss.states[t.from].name
                    ));
                }
                for m in &t.reads {
                    if m.dst as usize != site {
                        return Err(format!(
                            "{}: site {site} reads a message addressed to site {}",
                            self.name, m.dst
                        ));
                    }
                    if m.kind as usize >= self.kinds.len() {
                        return Err(format!("{}: bad message kind index {}", self.name, m.kind));
                    }
                }
                for m in &t.writes {
                    if m.src as usize != site {
                        return Err(format!(
                            "{}: site {site} writes a message with src {}",
                            self.name, m.src
                        ));
                    }
                    if m.kind as usize >= self.kinds.len() {
                        return Err(format!("{}: bad message kind index {}", self.name, m.kind));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "protocol {} ({} sites)", self.name, self.n())?;
        for (site, ss) in self.sites.iter().enumerate() {
            writeln!(f, "  site {site} ({:?}):", self.role_of(site))?;
            for t in &ss.transitions {
                let reads: Vec<String> = t
                    .reads
                    .iter()
                    .map(|m| format!("{}[{}->{}]", self.kinds[m.kind as usize], m.src, m.dst))
                    .collect();
                let writes: Vec<String> = t
                    .writes
                    .iter()
                    .map(|m| format!("{}[{}->{}]", self.kinds[m.kind as usize], m.src, m.dst))
                    .collect();
                writeln!(
                    f,
                    "    {} --[{}]/[{}]--> {}",
                    ss.states[t.from].name,
                    reads.join(","),
                    writes.join(","),
                    ss.states[t.to].name,
                )?;
            }
        }
        Ok(())
    }
}

/// The two possible terminal decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Decision {
    /// Transaction committed.
    Commit,
    /// Transaction aborted.
    Abort,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Commit => write!(f, "commit"),
            Decision::Abort => write!(f, "abort"),
        }
    }
}

/// Augmentation of a protocol with timeout and undeliverable-message
/// transitions, keyed by role and state name so one table covers all slaves
/// (the paper's Figs. 2 and 8 draw one slave automaton for all `i`).
///
/// `timeout[s] = d` means "on timing out in `s`, decide `d`";
/// `ud[s] = d` means "on receiving one of your own messages back as
/// undeliverable while in `s`, decide `d`". States without entries block on
/// that event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Augmentation {
    /// Timeout transitions: `(role, state name) -> decision`.
    pub timeout: BTreeMap<(Role, String), Decision>,
    /// Undeliverable-message transitions: `(role, state name) -> decision`.
    pub ud: BTreeMap<(Role, String), Decision>,
}

impl Augmentation {
    /// Timeout decision for a state, if assigned.
    pub fn timeout_for(&self, role: Role, state_name: &str) -> Option<Decision> {
        self.timeout.get(&(role, state_name.to_owned())).copied()
    }

    /// UD decision for a state, if assigned.
    pub fn ud_for(&self, role: Role, state_name: &str) -> Option<Decision> {
        self.ud.get(&(role, state_name.to_owned())).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::three_phase;

    #[test]
    fn state_kind_finality() {
        assert!(StateKind::Commit.is_final());
        assert!(StateKind::Abort.is_final());
        assert!(!StateKind::Initial.is_final());
        assert!(!StateKind::Intermediate.is_final());
    }

    #[test]
    fn three_phase_validates() {
        let spec = three_phase(3);
        spec.validate().expect("3PC spec must be well-formed");
    }

    #[test]
    fn state_lookup_roundtrip() {
        let spec = three_phase(3);
        let w1 = spec.state_ref(0, "w1");
        assert_eq!(spec.state_name(w1), "w1");
        assert_eq!(spec.state_kind(w1), StateKind::Intermediate);
    }

    #[test]
    fn role_assignment() {
        let spec = three_phase(4);
        assert_eq!(spec.role_of(0), Role::Master);
        assert_eq!(spec.role_of(3), Role::Slave);
    }

    #[test]
    fn all_states_counts() {
        let spec = three_phase(3);
        // master: q1,w1,p1,c1,a1 = 5; slaves: q,w,p,c,a = 5 each.
        assert_eq!(spec.all_states().count(), 15);
    }

    #[test]
    #[should_panic(expected = "unknown state")]
    fn unknown_state_panics() {
        let spec = three_phase(3);
        spec.state_ref(0, "nope");
    }

    #[test]
    fn validate_rejects_bad_addressing() {
        let mut spec = three_phase(3);
        // Make slave 1 read a message addressed to site 2.
        spec.sites[1].transitions[0].reads[0].dst = 2;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validate_rejects_transition_out_of_final() {
        let mut spec = three_phase(3);
        let c1 = spec.sites[0].state_index("c1");
        spec.sites[0].transitions.push(Transition {
            from: c1,
            to: 0,
            reads: vec![],
            writes: vec![],
            votes_yes: false,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn augmentation_lookup() {
        let mut aug = Augmentation::default();
        aug.timeout.insert((Role::Slave, "w".into()), Decision::Abort);
        assert_eq!(aug.timeout_for(Role::Slave, "w"), Some(Decision::Abort));
        assert_eq!(aug.timeout_for(Role::Master, "w"), None);
        assert_eq!(aug.ud_for(Role::Slave, "w"), None);
    }

    #[test]
    fn display_renders_all_transitions() {
        let spec = three_phase(3);
        let text = spec.to_string();
        assert!(text.contains("protocol 3PC"));
        assert!(text.contains("w1"));
        assert!(text.contains("prepare"));
    }
}
