//! Criterion benchmarks for the formal-model machinery: global-state
//! exploration, concurrency sets, committability, and rule derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptp_model::committable::Committability;
use ptp_model::concurrency::ConcurrencySets;
use ptp_model::protocols::{four_phase, three_phase, two_phase};
use ptp_model::resilience::check_conditions;
use ptp_model::rules::derive_rules_augmentation;
use ptp_model::GlobalGraph;

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("model/global_state_exploration");
    for n in [2usize, 3, 4, 5] {
        let spec = three_phase(n);
        group.bench_with_input(BenchmarkId::new("3pc", n), &spec, |b, spec| {
            b.iter(|| GlobalGraph::explore(spec))
        });
    }
    let spec4 = four_phase(4);
    group.bench_function("4pc/4", |b| b.iter(|| GlobalGraph::explore(&spec4)));
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let spec = three_phase(4);
    let graph = GlobalGraph::explore(&spec);

    c.bench_function("model/concurrency_sets_3pc_n4", |b| {
        b.iter(|| ConcurrencySets::compute(&spec, &graph))
    });
    c.bench_function("model/committability_3pc_n4", |b| {
        b.iter(|| Committability::compute(&spec, &graph))
    });
    c.bench_function("model/lemma12_check_2pc_n4", |b| {
        let spec = two_phase(4);
        b.iter(|| check_conditions(&spec))
    });
    c.bench_function("model/rule_derivation_3pc_n3", |b| {
        let spec = three_phase(3);
        b.iter(|| derive_rules_augmentation(&spec))
    });
}

criterion_group!(benches, bench_exploration, bench_analyses);
criterion_main!(benches);
