//! Ablation benchmarks for the design choices ARCHITECTURE.md calls out:
//! timer constants, delay distributions, and the ddb integration's cost.
//!
//! These measure wall-clock cost of representative runs; the *semantic*
//! effect of each ablation (spurious aborts, broken bounds) is covered by
//! the `exp_fig5_timeouts` experiment and the integration tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_protocols::api::Vote;
use ptp_protocols::clusters::huang_li_3pc_cluster_with_timing_any;
use ptp_protocols::runner::run_protocol;
use ptp_protocols::termination::{ProtocolTiming, TerminationVariant};
use ptp_simnet::{DelayModel, NetConfig, PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

fn partitioned_run(timing: ProtocolTiming, delay: &DelayModel) {
    let parts = huang_li_3pc_cluster_with_timing_any(
        4,
        &[Vote::Yes; 3],
        TerminationVariant::Transient,
        timing,
    );
    let partition = PartitionEngine::new(vec![PartitionSpec::simple(
        SimTime(2500),
        vec![SiteId(0), SiteId(1)],
        vec![SiteId(2), SiteId(3)],
    )]);
    let run = run_protocol(parts, NetConfig::default(), partition, delay, vec![]);
    assert!(ptp_protocols::Verdict::judge(&run.outcomes).is_atomic());
}

/// Larger timer constants stretch simulated time, not host time, but every
/// extra timer event costs queue work — this quantifies it.
fn bench_timer_constants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/timer_constants");
    for (name, timing) in [
        ("paper_2_3_5_6_5", ProtocolTiming::default()),
        (
            "generous_4_6_10_12_10",
            ProtocolTiming { master_proto: 4, slave_proto: 6, collect: 10, w_wait: 12, p_wait: 10 },
        ),
    ] {
        group
            .bench_function(name, |b| b.iter(|| partitioned_run(timing, &DelayModel::Fixed(1000))));
    }
    group.finish();
}

fn bench_delay_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/delay_models");
    for (name, delay) in [
        ("fixed_T", DelayModel::Fixed(1000)),
        ("fixed_T_half", DelayModel::Fixed(500)),
        ("uniform", DelayModel::Uniform { seed: 5, min: 1, max: 1000 }),
        (
            "per_link",
            DelayModel::PerLink { links: BTreeMap::from([((0u16, 1u16), 300u64)]), default: 900 },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &delay, |b, delay| {
            b.iter(|| partitioned_run(ProtocolTiming::default(), delay))
        });
    }
    group.finish();
}

fn bench_ddb_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/ddb_transfer");
    for protocol in [CommitProtocol::TwoPhase, CommitProtocol::HuangLi] {
        group.bench_function(protocol.name(), |b| {
            b.iter(|| {
                let mut writes = BTreeMap::new();
                writes
                    .insert(1u16, vec![WriteOp { key: Key::from("a"), value: Value::from_u64(1) }]);
                writes
                    .insert(2u16, vec![WriteOp { key: Key::from("b"), value: Value::from_u64(2) }]);
                let run =
                    DbCluster::new(3, protocol).submit(0, TxnSpec { id: TxnId(1), writes }).run();
                assert!(run.metrics.atomicity_violations().is_empty());
                run
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timer_constants, bench_delay_models, bench_ddb_transfer);
criterion_main!(benches);
