//! Criterion benchmarks for the sweep engine — the cost of the resilience
//! experiments themselves, and how they scale with cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptp_core::{sweep, sweep_serial, sweep_with_threads, ProtocolKind, SweepGrid};
use ptp_simnet::DelayModel;

fn small_grid(n: usize) -> SweepGrid {
    let mut grid = SweepGrid::standard(n);
    grid.partition_times = (0..=8).map(|i| i * 500).collect();
    grid.delays = vec![DelayModel::Fixed(1000)];
    grid
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps/huang_li_by_n");
    for n in [3usize, 4, 5] {
        let grid = small_grid(n);
        group.throughput(Throughput::Elements(grid.size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            b.iter(|| {
                let report = sweep(ProtocolKind::HuangLi3pc, grid);
                assert!(report.fully_resilient());
                report
            })
        });
    }
    group.finish();
}

fn bench_sweep_by_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps/by_protocol_n3");
    let grid = small_grid(3);
    for kind in [ProtocolKind::Plain2pc, ProtocolKind::HuangLi3pc, ProtocolKind::QuorumMajority] {
        group.throughput(Throughput::Elements(grid.size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| sweep(kind, &grid))
        });
    }
    group.finish();
}

fn bench_transient_sweep(c: &mut Criterion) {
    let grid = small_grid(3).with_transient_heals(4);
    c.bench_function("sweeps/transient_n3", |b| {
        b.iter(|| {
            let report = sweep(ProtocolKind::HuangLi3pc, &grid);
            assert!(report.fully_resilient());
            report
        })
    });
}

/// Serial vs. explicit worker counts on one mid-size grid: quantifies the
/// fan-out win (and the overhead floor on single-core machines).
fn bench_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweeps/huang_li_n4_threads");
    let grid = small_grid(4);
    group.throughput(Throughput::Elements(grid.size() as u64));
    group.bench_function("serial", |b| b.iter(|| sweep_serial(ProtocolKind::HuangLi3pc, &grid)));
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            b.iter(|| sweep_with_threads(ProtocolKind::HuangLi3pc, &grid, threads))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_scaling,
    bench_sweep_by_protocol,
    bench_transient_sweep,
    bench_serial_vs_parallel,
);
criterion_main!(benches);
