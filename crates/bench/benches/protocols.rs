//! Criterion benchmarks: cost of one full commit-protocol execution, per
//! protocol kind, failure-free and through a partition — plus the one-shot
//! vs reused-session comparison the PR 2 API redesign is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptp_core::{run_scenario, ProtocolKind, RunOptions, Scenario, Session};
use ptp_simnet::SiteId;

fn bench_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/failure_free_n4");
    for kind in ProtocolKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let scenario = Scenario::new(4);
            let mut session = Session::new(kind, 4);
            let recording = RunOptions::recording();
            b.iter(|| {
                let r = session.run_with(&scenario, &recording);
                assert!(r.verdict.is_atomic());
                r
            })
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/partitioned_n4");
    for kind in [
        ProtocolKind::Plain2pc,
        ProtocolKind::Naive3pc,
        ProtocolKind::HuangLi3pc,
        ProtocolKind::HuangLi4pc,
        ProtocolKind::QuorumMajority,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
            let mut session = Session::new(kind, 4);
            let recording = RunOptions::recording();
            b.iter(|| session.run_with(&scenario, &recording))
        });
    }
    group.finish();
}

/// Full-trace vs. counters-only execution of the same scenario: the per-run
/// cost of trace recording, which the sweep engine skips entirely.
fn bench_trace_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/trace_modes_n4");
    let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 4);
    let recording = RunOptions::recording();
    let counters = RunOptions::new();
    group.bench_function("recording", |b| b.iter(|| session.run_with(&scenario, &recording)));
    group.bench_function("counters_only", |b| b.iter(|| session.run_with(&scenario, &counters)));
    group.finish();
}

/// One-shot (cluster + simulator buffers rebuilt per run) vs a reused
/// session (built once) vs the session's verdict-only fast path — the
/// allocation work the `Session` API removes from the hot path.
fn bench_session_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/session_reuse_n4");
    let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
    let counters = RunOptions::new();
    group.bench_function("one_shot", |b| {
        b.iter(|| ptp_core::run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &counters))
    });
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 4);
    group.bench_function("reused_session", |b| b.iter(|| session.run(&scenario)));
    group.bench_function("reused_session_verdict", |b| {
        b.iter(|| session.verdict(&scenario, &counters))
    });
    group.finish();
}

fn bench_cluster_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/huang_li_scaling");
    for n in [3usize, 5, 9, 17] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario =
                Scenario::new(n).partition_g2((n as u16 / 2..n as u16).map(SiteId).collect(), 2500);
            b.iter(|| {
                let r = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
                assert!(r.verdict.is_resilient());
                r
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_failure_free,
    bench_partitioned,
    bench_trace_modes,
    bench_session_reuse,
    bench_cluster_size,
);
criterion_main!(benches);
