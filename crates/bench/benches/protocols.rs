//! Criterion benchmarks: cost of one full commit-protocol execution, per
//! protocol kind, failure-free and through a partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptp_core::{run_scenario, run_scenario_with, ProtocolKind, Scenario};
use ptp_simnet::SiteId;

fn bench_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/failure_free_n4");
    for kind in ProtocolKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let scenario = Scenario::new(4);
            b.iter(|| {
                let r = run_scenario(kind, &scenario);
                assert!(r.verdict.is_atomic());
                r
            })
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/partitioned_n4");
    for kind in [
        ProtocolKind::Plain2pc,
        ProtocolKind::Naive3pc,
        ProtocolKind::HuangLi3pc,
        ProtocolKind::HuangLi4pc,
        ProtocolKind::QuorumMajority,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
            b.iter(|| run_scenario(kind, &scenario))
        });
    }
    group.finish();
}

/// Full-trace vs. null-sink execution of the same scenario: the per-run
/// cost of trace recording, which the sweep engine now skips entirely.
fn bench_trace_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/trace_modes_n4");
    let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
    group.bench_function("recording", |b| {
        b.iter(|| run_scenario_with(ProtocolKind::HuangLi3pc, &scenario, true))
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| run_scenario_with(ProtocolKind::HuangLi3pc, &scenario, false))
    });
    group.finish();
}

fn bench_cluster_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/huang_li_scaling");
    for n in [3usize, 5, 9, 17] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario =
                Scenario::new(n).partition_g2((n as u16 / 2..n as u16).map(SiteId).collect(), 2500);
            b.iter(|| {
                let r = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
                assert!(r.verdict.is_resilient());
                r
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_failure_free,
    bench_partitioned,
    bench_trace_modes,
    bench_cluster_size,
);
criterion_main!(benches);
