//! Criterion benchmarks: cost of one full commit-protocol execution, per
//! protocol kind, failure-free and through a partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ptp_core::{run_scenario, ProtocolKind, Scenario};
use ptp_simnet::SiteId;

fn bench_failure_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/failure_free_n4");
    for kind in ProtocolKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let scenario = Scenario::new(4);
            b.iter(|| {
                let r = run_scenario(kind, &scenario);
                assert!(r.verdict.is_atomic());
                r
            })
        });
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/partitioned_n4");
    for kind in [
        ProtocolKind::Plain2pc,
        ProtocolKind::Naive3pc,
        ProtocolKind::HuangLi3pc,
        ProtocolKind::HuangLi4pc,
        ProtocolKind::QuorumMajority,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let scenario = Scenario::new(4).partition_g2(vec![SiteId(2), SiteId(3)], 2500);
            b.iter(|| run_scenario(kind, &scenario))
        });
    }
    group.finish();
}

fn bench_cluster_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols/huang_li_scaling");
    for n in [3usize, 5, 9, 17] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let scenario =
                Scenario::new(n).partition_g2((n as u16 / 2..n as u16).map(SiteId).collect(), 2500);
            b.iter(|| {
                let r = run_scenario(ProtocolKind::HuangLi3pc, &scenario);
                assert!(r.verdict.is_resilient());
                r
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_failure_free, bench_partitioned, bench_cluster_size);
criterion_main!(benches);
