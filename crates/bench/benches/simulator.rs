//! Criterion benchmarks for the discrete-event simulator core: event
//! throughput, fan-out cost, and partition-engine overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptp_simnet::{
    Actor, Ctx, DelayModel, Envelope, NetConfig, PartitionEngine, PartitionSpec, SimTime,
    Simulation, SiteId,
};

/// Two sites bouncing a token `rounds` times: measures per-event overhead.
struct Bouncer {
    peer: SiteId,
    remaining: u64,
    starts: bool,
}

impl Actor<&'static str> for Bouncer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
        if self.starts {
            ctx.send(self.peer, "token");
        }
    }
    fn on_message(&mut self, _env: Envelope<&'static str>, ctx: &mut Ctx<'_, &'static str>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.peer, "token");
        }
    }
}

fn bench_ping_pong(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/ping_pong");
    for rounds in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                let config = NetConfig { max_time: SimTime(u64::MAX / 2), ..NetConfig::default() };
                let actors: Vec<Box<dyn Actor<&'static str>>> = vec![
                    Box::new(Bouncer { peer: SiteId(1), remaining: rounds / 2, starts: true }),
                    Box::new(Bouncer { peer: SiteId(0), remaining: rounds / 2, starts: false }),
                ];
                let sim = Simulation::new(
                    config,
                    actors,
                    PartitionEngine::always_connected(),
                    &DelayModel::Fixed(10),
                    vec![],
                );
                let (_, _, report) = sim.run();
                assert!(report.events >= rounds);
            })
        });
    }
    group.finish();
}

/// One site broadcasting to n-1 listeners: fan-out cost.
struct Spray {
    n: u16,
    rounds: u64,
}
struct Sink;

impl Actor<&'static str> for Spray {
    fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
        for _ in 0..self.rounds {
            for dst in 1..self.n {
                ctx.send(SiteId(dst), "blast");
            }
        }
    }
    fn on_message(&mut self, _e: Envelope<&'static str>, _c: &mut Ctx<'_, &'static str>) {}
}
impl Actor<&'static str> for Sink {
    fn on_message(&mut self, _e: Envelope<&'static str>, _c: &mut Ctx<'_, &'static str>) {}
}

fn bench_fan_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/fan_out");
    for n in [4u16, 16, 64] {
        let rounds = 256u64;
        group.throughput(Throughput::Elements(rounds * (n as u64 - 1)));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut actors: Vec<Box<dyn Actor<&'static str>>> =
                    vec![Box::new(Spray { n, rounds })];
                for _ in 1..n {
                    actors.push(Box::new(Sink));
                }
                let sim = Simulation::new(
                    NetConfig::default(),
                    actors,
                    PartitionEngine::always_connected(),
                    &DelayModel::Uniform { seed: 1, min: 1, max: 1000 },
                    vec![],
                );
                let (_, _, report) = sim.run();
                assert_eq!(report.events, rounds * (n as u64 - 1));
            })
        });
    }
    group.finish();
}

/// The same ping-pong with an (idle) partition schedule: connectivity-check
/// overhead on the hot path.
fn bench_partition_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/partition_check");
    for (name, engine) in [
        ("no_partitions", PartitionEngine::always_connected()),
        (
            "one_future_partition",
            PartitionEngine::new(vec![PartitionSpec::simple(
                SimTime(u64::MAX / 4),
                vec![SiteId(0)],
                vec![SiteId(1)],
            )]),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let config = NetConfig { max_time: SimTime(u64::MAX / 2), ..NetConfig::default() };
                let actors: Vec<Box<dyn Actor<&'static str>>> = vec![
                    Box::new(Bouncer { peer: SiteId(1), remaining: 2_000, starts: true }),
                    Box::new(Bouncer { peer: SiteId(0), remaining: 2_000, starts: false }),
                ];
                let sim =
                    Simulation::new(config, actors, engine.clone(), &DelayModel::Fixed(10), vec![]);
                sim.run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ping_pong, bench_fan_out, bench_partition_overhead);
criterion_main!(benches);
