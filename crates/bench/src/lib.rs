//! Shared plumbing for the experiment binaries (`src/bin/exp_*.rs`) that
//! regenerate every figure and table of Huang & Li (ICDE 1987), and for the
//! Criterion benchmarks in `benches/`.
//!
//! Experiment ↔ paper map (see ARCHITECTURE.md for the full index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_fig1_2pc` | Fig. 1 + the 2PC blocking diagnosis |
//! | `exp_fig2_e2pc` | Fig. 2 + the Sec. 3 multisite counterexample |
//! | `exp_fig3_3pc` | Fig. 3 + the naive-augmentation counterexample |
//! | `exp_lemma12_conditions` | Lemmas 1 & 2 |
//! | `exp_lemma3_augmentations` | Lemma 3 |
//! | `exp_fig5_timeouts` | Fig. 5 |
//! | `exp_fig6_probe_bound` | Fig. 6 |
//! | `exp_fig7_wait_w_bound` | Fig. 7 |
//! | `exp_fig9_case_table` | Fig. 9 + the Sec. 6 case table |
//! | `exp_thm9_resilience` | Theorem 9 |
//! | `exp_thm10_generic` | Theorem 10 |
//! | `exp_impossibility` | the Sec. 2 impossibility theorems |
//! | `exp_assumptions` | the Sec. 7 assumption-necessity counterexamples |
//! | `exp_blocking_availability` | Sec. 1–2 motivation (locks + blocking) |
//! | `exp_quorum_baseline` | reference \[5\] baseline comparison |
//! | `exp_multi_partition` | partition-schedule families beyond the paper's model (`BENCH_schedule.json`) |
//! | `exp_shard_availability` | shard-level availability of the sharded store under each schedule family |
//! | `bench_sweep` | sweep-engine throughput baseline (`BENCH_sweep.json`) |
//! | `bench_ddb` | database workload throughput baseline (`BENCH_ddb.json`) |
//! | `bench_shard` | sharded-store throughput baseline (`BENCH_shard.json`) |
//! | `bench_read` | read-path throughput: lease / lock-local / commit-round (`BENCH_read.json`) |
//! | `bench_profile` | simulator hot-path profile (`BENCH_profile.json`) |
//! | `bench_live` | threaded shard serving, batching off vs on (`BENCH_live.json`) |
//! | `bench_campaign` | chaos-campaign throughput + shrink demo (`BENCH_campaign.json`) |
//! | `bench_obs` | stage-attributed live latency + flight recorder (`BENCH_obs.json`) |
//!
//! ## Sweep-engine performance baseline
//!
//! `bench_sweep` measures the scenario-execution pipeline itself rather
//! than any paper artifact: it sweeps `dense_grid(3..=6)` with the
//! Huang–Li protocol and writes `BENCH_sweep.json` (per-grid wall time,
//! scenarios/sec, peak grid size, thread count) so later PRs have a
//! trajectory to beat. Regenerate with:
//!
//! ```text
//! cargo run --release -p ptp-bench --bin bench_sweep          # parallel, trace-free
//! cargo run --release -p ptp-bench --bin bench_sweep -- --compare
//! ```
//!
//! `--compare` additionally times the serial trace-free and serial
//! full-trace (pre-refactor-equivalent) paths for the speedup table.
//! `PTP_SWEEP_THREADS` caps the worker count; sweeps are parallel by
//! default and deterministic at any thread count.

use ptp_core::report::Table;
use ptp_core::{sweep, sweep_with_session, ProtocolKind, SessionPool, SweepGrid, SweepReport};
use ptp_simnet::DelayModel;

/// The delay schedules used by default across experiments: the slowest
/// admissible network, a half-speed one, a near-instant one, and two seeded
/// random ones.
pub fn standard_delays(t: u64) -> Vec<DelayModel> {
    vec![
        DelayModel::Fixed(t),
        DelayModel::Fixed(t / 2),
        DelayModel::Fixed(1),
        DelayModel::Uniform { seed: 11, min: 1, max: t },
        DelayModel::Uniform { seed: 97, min: t / 2, max: t },
    ]
}

/// A dense sweep grid used by several experiments: all boundaries, T/8
/// partition instants up to 8T, standard delays.
pub fn dense_grid(n: usize) -> SweepGrid {
    let mut grid = SweepGrid::standard(n);
    grid.partition_times = (0..=64).map(|i| i * 125).collect();
    grid.delays = standard_delays(1000);
    grid
}

/// `per_shard` keys per shard of `topo`, found by probing the router with
/// `key-{i}` names — the deterministic workload vocabulary shared by the
/// sharded-store binaries (`bench_shard`, `exp_shard_availability`).
pub fn shard_key_pool(
    topo: &ptp_shard::ShardTopology,
    per_shard: usize,
) -> Vec<Vec<ptp_core::ddb::Key>> {
    topo.key_pool(per_shard)
}

/// The measurement budget in milliseconds: `CRITERION_BUDGET_MS` if set
/// (the CI smoke runs set 20), else `default`. Every bench emitter scales
/// its sample counts from this one knob.
pub fn criterion_budget_ms(default: u64) -> u64 {
    std::env::var("CRITERION_BUDGET_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Median of the samples (sorts in place; mean of the middle two when even).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_of(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Writes a `BENCH_*.json` record to the repo root (the directory `cargo
/// run` executes from) and prints where it went — the shared tail of every
/// bench emitter.
pub fn write_record(path: &str, json: &str) {
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path}");
}

// The host/JSON helpers every emitter embeds (`nproc`, `host_class`,
// `host_fields`, `json_escape`) now live in `ptp-obs`, the one crate with
// no workspace dependencies, so bench records and observability snapshots
// stamp identical headers. Re-exported here so `use ptp_bench::…` keeps
// working across every binary.
pub use ptp_obs::{host_class, host_fields, json_escape, nproc};

/// Renders a sweep report as one table row.
pub fn sweep_row(kind: ProtocolKind, report: &SweepReport) -> Vec<String> {
    vec![
        kind.name().to_string(),
        report.total.to_string(),
        report.all_commit.to_string(),
        report.all_abort.to_string(),
        report.blocked_count.to_string(),
        report.inconsistent_count.to_string(),
        if report.fully_resilient() { "YES".into() } else { "no".into() },
    ]
}

fn scorecard_table() -> Table {
    Table::new(vec![
        "protocol",
        "scenarios",
        "all-commit",
        "all-abort",
        "blocked",
        "inconsistent",
        "resilient?",
    ])
}

/// Runs a set of protocols over one grid and prints the scorecard.
pub fn print_scorecard(title: &str, kinds: &[ProtocolKind], grid: &SweepGrid) {
    println!("== {title} ==");
    println!("({} scenarios per protocol)\n", grid.size());
    let mut table = scorecard_table();
    for &kind in kinds {
        let report = sweep(kind, grid);
        table.row(sweep_row(kind, &report));
    }
    println!("{}", table.render());
}

/// [`print_scorecard`] routed through a caller's [`SessionPool`]: each
/// `(kind, n)` cluster is built once for the whole binary and reused
/// across every grid it sweeps (serial, which is deterministic by
/// construction — no thread-count dependence to even think about).
pub fn print_scorecard_pooled(
    pool: &mut SessionPool,
    title: &str,
    kinds: &[ProtocolKind],
    grid: &SweepGrid,
) {
    println!("== {title} ==");
    println!("({} scenarios per protocol)\n", grid.size());
    let mut table = scorecard_table();
    for &kind in kinds {
        let report = sweep_with_session(pool.session(kind, grid.n), grid);
        table.row(sweep_row(kind, &report));
    }
    println!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_delays_count() {
        assert_eq!(standard_delays(1000).len(), 5);
    }

    #[test]
    fn dense_grid_has_dense_times() {
        let g = dense_grid(3);
        assert_eq!(g.partition_times.len(), 65);
        assert_eq!(g.partition_times[1] - g.partition_times[0], 125);
    }

    #[test]
    fn sweep_row_shape() {
        let report = SweepReport::default();
        assert_eq!(sweep_row(ProtocolKind::Plain2pc, &report).len(), 7);
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median_of(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_of(&mut [7.0]), 7.0);
    }

    #[test]
    fn host_fields_is_valid_fragment() {
        let f = host_fields();
        assert!(f.starts_with("\"nproc\": "));
        assert!(f.contains("\"host\": \""));
        assert!(!f.ends_with(','));
    }
}
