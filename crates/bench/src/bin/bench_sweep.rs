//! Sweep-engine throughput baseline.
//!
//! Unlike the `exp_*` binaries this measures the reproduction's own
//! machinery, not a paper artifact: how fast the scenario-execution
//! pipeline chews through `dense_grid(3..=6)` with the Huang–Li protocol.
//! It prints a table and writes `BENCH_sweep.json` next to the working
//! directory so future performance work has a recorded trajectory to beat.
//!
//! Modes:
//!
//! * default — the production path: parallel across [`sweep_threads`]
//!   workers, trace-free.
//! * `--compare` — additionally times the serial trace-free path and a
//!   serial full-trace sweep equivalent to the pre-refactor engine (one
//!   recorded trace per cell), yielding the speedup columns.

use ptp_bench::{dense_grid, host_fields, json_escape, write_record};
use ptp_core::report::Table;
use ptp_core::{
    run_scenario_opts, sweep_serial, sweep_threads, sweep_with_threads, ProtocolKind, RunOptions,
    SweepGrid, SweepReport,
};
use std::fmt::Write as _;
use std::time::Instant;

const PROTOCOL: ProtocolKind = ProtocolKind::HuangLi3pc;

/// One measured configuration of one grid.
struct Measurement {
    n: usize,
    scenarios: usize,
    parallel_ms: f64,
    serial_ms: Option<f64>,
    full_trace_ms: Option<f64>,
}

impl Measurement {
    fn scenarios_per_sec(&self) -> f64 {
        self.scenarios as f64 * 1000.0 / self.parallel_ms
    }
}

fn time_ms(f: impl FnOnce() -> SweepReport) -> (SweepReport, f64) {
    let started = Instant::now();
    let report = f();
    (report, started.elapsed().as_secs_f64() * 1000.0)
}

/// The pre-refactor-equivalent engine: serial, a full `Trace` recorded per
/// cell, buffers cloned per cell, and a fresh one-shot session built per
/// cell (`run_scenario_opts` constructs and discards one). Kept here (not
/// in `ptp-core`) because its only remaining job is to be the yardstick.
fn sweep_serial_full_trace(kind: ProtocolKind, grid: &SweepGrid) -> SweepReport {
    let mut total_events = 0u64;
    let mut report = SweepReport::default();
    for index in 0..grid.size() {
        let spec = grid.scenario(index);
        let mut scenario = ptp_core::Scenario::new(grid.n)
            .votes(grid.votes[spec.vote_index].clone())
            .delay(grid.delays[spec.delay_index].clone());
        scenario.mode = grid.mode;
        scenario.partition = ptp_core::PartitionShape::Simple {
            g2: spec.g2.to_vec(),
            at: spec.at,
            heal_at: spec.heal_at(),
        };
        let result = run_scenario_opts(kind, &scenario, &RunOptions::recording());
        total_events += result.trace.len() as u64;
        if matches!(result.verdict, ptp_protocols::Verdict::AllCommit) {
            report.all_commit += 1;
        }
        report.total += 1;
    }
    // Defeat dead-code elimination of the traces.
    assert!(total_events > 0);
    report
}

fn measure(n: usize, compare: bool) -> Measurement {
    let grid = dense_grid(n);
    let scenarios = grid.size();
    let threads = sweep_threads();

    let (parallel_report, parallel_ms) = time_ms(|| sweep_with_threads(PROTOCOL, &grid, threads));
    assert!(
        parallel_report.fully_resilient(),
        "Theorem 9 must hold while we benchmark (n = {n}): {parallel_report:?}"
    );
    assert_eq!(parallel_report.total, scenarios);

    let (serial_ms, full_trace_ms) = if compare {
        let (serial_report, serial_ms) = time_ms(|| sweep_serial(PROTOCOL, &grid));
        assert_eq!(serial_report, parallel_report, "determinism violated at n = {n}");
        let (_, full_ms) = time_ms(|| sweep_serial_full_trace(PROTOCOL, &grid));
        (Some(serial_ms), Some(full_ms))
    } else {
        (None, None)
    };

    Measurement { n, scenarios, parallel_ms, serial_ms, full_trace_ms }
}

fn render_json(measurements: &[Measurement]) -> String {
    let threads = sweep_threads();
    let peak = measurements.iter().map(|m| m.scenarios).max().unwrap_or(0);
    let total: usize = measurements.iter().map(|m| m.scenarios).sum();
    let total_ms: f64 = measurements.iter().map(|m| m.parallel_ms).sum();

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("sweep"));
    let _ = writeln!(out, "  \"protocol\": \"{}\",", json_escape(PROTOCOL.name()));
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"peak_grid_scenarios\": {peak},");
    let _ = writeln!(out, "  \"total_scenarios\": {total},");
    let _ = writeln!(out, "  \"total_wall_ms\": {total_ms:.3},");
    let _ = writeln!(
        out,
        "  \"scenarios_per_sec\": {:.1},",
        total as f64 * 1000.0 / total_ms.max(f64::MIN_POSITIVE)
    );
    out.push_str("  \"grids\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"n\": {}, \"scenarios\": {}, \"wall_ms\": {:.3}, \"scenarios_per_sec\": {:.1}",
            m.n,
            m.scenarios,
            m.parallel_ms,
            m.scenarios_per_sec()
        );
        if let Some(serial) = m.serial_ms {
            let _ = write!(out, ", \"serial_wall_ms\": {serial:.3}");
        }
        if let Some(full) = m.full_trace_ms {
            let _ = write!(out, ", \"serial_full_trace_wall_ms\": {full:.3}");
        }
        out.push_str(if i + 1 == measurements.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let compare = std::env::args().any(|a| a == "--compare");
    println!("== bench_sweep: scenario-pipeline throughput, dense_grid(3..=6) ==");
    println!(
        "protocol {}, {} worker thread(s){}\n",
        PROTOCOL.name(),
        sweep_threads(),
        if compare { ", with serial/full-trace baselines" } else { "" }
    );

    let measurements: Vec<Measurement> = (3..=6).map(|n| measure(n, compare)).collect();

    let mut headers = vec!["n", "scenarios", "wall ms", "scenarios/s"];
    if compare {
        headers.extend(["serial ms", "full-trace ms", "vs serial", "vs full-trace"]);
    }
    let mut table = Table::new(headers);
    for m in &measurements {
        let mut row = vec![
            m.n.to_string(),
            m.scenarios.to_string(),
            format!("{:.1}", m.parallel_ms),
            format!("{:.0}", m.scenarios_per_sec()),
        ];
        if let (Some(serial), Some(full)) = (m.serial_ms, m.full_trace_ms) {
            row.push(format!("{serial:.1}"));
            row.push(format!("{full:.1}"));
            row.push(format!("{:.2}x", serial / m.parallel_ms));
            row.push(format!("{:.2}x", full / m.parallel_ms));
        }
        table.row(row);
    }
    println!("{}", table.render());

    write_record("BENCH_sweep.json", &render_json(&measurements));
}
