//! E11 — Theorem 10: the termination-protocol recipe generalizes to any
//! master–slave commit protocol satisfying the Lemma 1/2 conditions, by
//! substituting that protocol's decisive message for "prepare".
//!
//! The engine in `ptp_protocols::termination` *is* that recipe; this
//! experiment instantiates it for a four-phase commit protocol (an extra
//! `ready/ack2` round), checks the Lemma 1/2 conditions mechanically, runs
//! the full resilience sweep, and compares the cost: one extra round buys
//! nothing here — it only adds 2T of failure-free latency.

use ptp_bench::{dense_grid, print_scorecard};
use ptp_core::model::protocols::four_phase;
use ptp_core::model::resilience::check_conditions;
use ptp_core::report::Table;
use ptp_core::{ProtocolKind, Scenario, SessionPool};

fn main() {
    println!("== E11 / Theorem 10: the generic construction on a 4-phase protocol ==\n");

    // Conditions (1) and (2) of Theorem 10, checked over the global-state
    // graph.
    let report = check_conditions(&four_phase(3));
    println!(
        "4PC Lemma-1 violations: {}, Lemma-2 violations: {} -> conditions {}\n",
        report.lemma1.len(),
        report.lemma2.len(),
        if report.satisfies_conditions() { "hold" } else { "FAIL" }
    );
    assert!(report.satisfies_conditions());

    // Resilience sweep of the generated termination protocol.
    let mut grid = dense_grid(3);
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    print_scorecard(
        "4PC + generated termination protocol vs the paper's 3PC instance",
        &[ProtocolKind::HuangLi4pc, ProtocolKind::HuangLi3pc],
        &grid,
    );

    // Failure-free latency: the price of the extra phase. Both protocol
    // clusters come from one pool, reused for the paired measurement.
    let mut pool = SessionPool::new();
    let mut table = Table::new(vec!["protocol", "failure-free commit latency (last site)"]);
    for kind in [ProtocolKind::HuangLi3pc, ProtocolKind::HuangLi4pc] {
        let result = pool.session(kind, 4).run(&Scenario::new(4));
        let last = result.outcomes.iter().filter_map(|o| o.decided_at).max().expect("all decided");
        table.row(vec![kind.name().to_string(), format!("{:.2}T", last.in_t_units(1000))]);
    }
    println!("{}", table.render());
    println!("Both are resilient; the 4-phase variant pays 2T more latency per");
    println!("transaction — supporting the paper's choice of 3PC as the substrate");
    println!("(\"the simplest commit protocol that satisfies both Lemma 1 and Lemma 2\").");
}
