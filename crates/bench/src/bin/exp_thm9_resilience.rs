//! E10 — Theorem 9: "The termination protocol makes the three-phase commit
//! protocol resilient to optimistic multisite simple network partitioning."
//!
//! The main event. Dense grids over every simple boundary × partition
//! instants × heal instants × delay schedules × vote vectors, at n = 3, 4
//! and 5, for both the Sec. 5 (static) and Sec. 6 (transient) variants.
//! Resilient means: every site terminates, and all agree.
//!
//! All five scorecards route through one [`ptp_core::SessionPool`]: each
//! `(protocol, n)` cluster is built exactly once for the whole binary —
//! three of the grids share the `(HL-3PC, 3)` session — instead of being
//! reconstructed ad hoc per sweep.

use ptp_bench::{dense_grid, print_scorecard_pooled, standard_delays};
use ptp_core::{ProtocolKind, SessionPool, SweepGrid};
use ptp_protocols::api::Vote;

fn main() {
    println!("== E10 / Theorem 9: full resilience sweeps ==\n");

    let mut pool = SessionPool::new();

    // n = 3: the densest grid, permanent partitions.
    print_scorecard_pooled(
        &mut pool,
        "n = 3, permanent partitions, T/8 grid",
        &[ProtocolKind::HuangLi3pc, ProtocolKind::HuangLi3pcStatic],
        &dense_grid(3),
    );

    // n = 3 with transient partitions (Sec. 6).
    let mut grid = dense_grid(3).with_transient_heals(8);
    grid.partition_times = (0..=16).map(|i| i * 500).collect();
    grid.delays = standard_delays(1000)[..3].to_vec();
    print_scorecard_pooled(
        &mut pool,
        "n = 3, transient partitions healing after 0.5T..8T",
        &[ProtocolKind::HuangLi3pc],
        &grid,
    );

    // Mixed votes under partition.
    let mut grid = dense_grid(3);
    grid.partition_times = (0..=16).map(|i| i * 500).collect();
    grid.votes = vec![
        vec![Vote::Yes, Vote::Yes],
        vec![Vote::No, Vote::Yes],
        vec![Vote::Yes, Vote::No],
        vec![Vote::No, Vote::No],
    ];
    print_scorecard_pooled(
        &mut pool,
        "n = 3, all vote vectors",
        &[ProtocolKind::HuangLi3pc],
        &grid,
    );

    // Larger clusters, coarser grid.
    for n in [4usize, 5] {
        let mut grid = SweepGrid::standard(n);
        grid.partition_times = (0..=32).map(|i| i * 250).collect();
        grid.delays = standard_delays(1000)[..3].to_vec();
        print_scorecard_pooled(
            &mut pool,
            &format!("n = {n}, permanent partitions, T/4 grid"),
            &[ProtocolKind::HuangLi3pc],
            &grid,
        );
    }

    println!(
        "({} distinct clusters built for {} scorecards — the pool reuses them.)\n",
        pool.len(),
        5
    );
    println!("Theorem 9 holds on every grid: zero atomicity violations, zero blocked");
    println!("sites, under every simple boundary, partition instant, heal instant,");
    println!("delay schedule and vote vector tried.");
}
