//! Chaos-campaign throughput and shrinking baseline.
//!
//! Measures the reproduction's own machinery, like `bench_sweep`: how fast
//! the seeded campaign runner samples, executes, and audits scenario
//! timelines against the Huang–Li protocol, and how hard the shrinker works
//! when a campaign does find a counterexample (plain 2PC under the
//! resilience audit — the paper's own motivating failure). It prints a
//! table and writes `BENCH_campaign.json` so future performance work has a
//! recorded trajectory to beat.
//!
//! Honors `CRITERION_BUDGET_MS`: the green-campaign phase keeps adding
//! batches of timelines until the budget is spent.

use ptp_bench::{criterion_budget_ms, host_fields, json_escape, write_record};
use ptp_core::report::Table;
use ptp_core::{Campaign, CampaignConfig, ProtocolKind};
use std::fmt::Write as _;
use std::time::Instant;

const PROTOCOL: ProtocolKind = ProtocolKind::HuangLi3pc;
const BATCH: usize = 100;
const SEED: u64 = 0xBE_2026;

/// One timed green-campaign batch.
struct GreenRun {
    timelines: usize,
    wall_ms: f64,
}

/// The shrink-demo phase: a blocking protocol under the resilience audit.
struct ShrinkRun {
    timelines: usize,
    faults: usize,
    shrink_steps: usize,
    shrink_tested: usize,
    original_weight: usize,
    minimal_weight: usize,
    /// Rendered first counterexample: minimal timeline + flight-recorder
    /// event tail of its replay.
    first_rendered: String,
    wall_ms: f64,
}

fn green_phase(budget_ms: u64) -> GreenRun {
    let started = Instant::now();
    let mut timelines = 0usize;
    let mut batch = 0u64;
    loop {
        let config = CampaignConfig::safe(PROTOCOL, 4, BATCH, SEED.wrapping_add(batch));
        let report = Campaign::new(config).run();
        assert!(
            report.all_green(),
            "the safe family must stay green while we benchmark: {:?}",
            report.failures.first()
        );
        timelines += report.executed;
        batch += 1;
        if started.elapsed().as_millis() as u64 >= budget_ms {
            break;
        }
    }
    GreenRun { timelines, wall_ms: started.elapsed().as_secs_f64() * 1000.0 }
}

fn shrink_phase() -> ShrinkRun {
    let started = Instant::now();
    let config = CampaignConfig::safe(ProtocolKind::Plain2pc, 4, 40, SEED);
    let campaign = Campaign::new(config);
    let report = campaign.run_with(|result| {
        (!result.verdict.is_resilient()).then(|| format!("2PC not resilient: {:?}", result.verdict))
    });
    assert!(
        !report.all_green(),
        "plain 2PC must block under some sampled partition (Sec. 2 of the paper)"
    );
    let weight = |t: &ptp_core::Timeline| t.events.len() + t.env_faults.len();
    let first = &report.failures[0];
    ShrinkRun {
        timelines: report.executed,
        faults: report.faults_found(),
        shrink_steps: report.failures.iter().map(|f| f.shrink_steps).sum(),
        shrink_tested: report.failures.iter().map(|f| f.shrink_tested).sum(),
        original_weight: weight(&first.original),
        minimal_weight: weight(&first.minimal),
        first_rendered: first.render(),
        wall_ms: started.elapsed().as_secs_f64() * 1000.0,
    }
}

fn render_json(green: &GreenRun, shrink: &ShrinkRun) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("campaign"));
    let _ = writeln!(out, "  \"protocol\": \"{}\",", json_escape(PROTOCOL.name()));
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"green_timelines\": {},", green.timelines);
    let _ = writeln!(out, "  \"green_wall_ms\": {:.3},", green.wall_ms);
    let _ = writeln!(
        out,
        "  \"timelines_per_sec\": {:.1},",
        green.timelines as f64 * 1000.0 / green.wall_ms.max(f64::MIN_POSITIVE)
    );
    let _ = writeln!(out, "  \"shrink_demo\": {{");
    let _ = writeln!(out, "    \"protocol\": \"{}\",", json_escape(ProtocolKind::Plain2pc.name()));
    let _ = writeln!(out, "    \"timelines\": {},", shrink.timelines);
    let _ = writeln!(out, "    \"faults_found\": {},", shrink.faults);
    let _ = writeln!(out, "    \"shrink_steps\": {},", shrink.shrink_steps);
    let _ = writeln!(out, "    \"shrink_candidates_tested\": {},", shrink.shrink_tested);
    let _ = writeln!(out, "    \"first_original_weight\": {},", shrink.original_weight);
    let _ = writeln!(out, "    \"first_minimal_weight\": {},", shrink.minimal_weight);
    let _ = writeln!(out, "    \"wall_ms\": {:.3}", shrink.wall_ms);
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let budget_ms = criterion_budget_ms(2_000);
    println!("== bench_campaign: seeded chaos campaigns, {budget_ms} ms budget ==");
    println!("safe family (partitions + degrades + duplicates), n = 4, {BATCH}-timeline batches\n");

    let green = green_phase(budget_ms);
    let shrink = shrink_phase();
    assert!(
        shrink.minimal_weight <= shrink.original_weight,
        "shrinking must never grow a counterexample"
    );

    let mut table = Table::new(vec!["phase", "timelines", "wall ms", "timelines/s", "faults"]);
    table.row(vec![
        format!("green ({})", PROTOCOL.name()),
        green.timelines.to_string(),
        format!("{:.1}", green.wall_ms),
        format!("{:.0}", green.timelines as f64 * 1000.0 / green.wall_ms.max(f64::MIN_POSITIVE)),
        "0".into(),
    ]);
    table.row(vec![
        "shrink (2PC, resilience audit)".into(),
        shrink.timelines.to_string(),
        format!("{:.1}", shrink.wall_ms),
        format!("{:.0}", shrink.timelines as f64 * 1000.0 / shrink.wall_ms.max(f64::MIN_POSITIVE)),
        shrink.faults.to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "first counterexample shrank {} -> {} fault events over {} accepted step(s) \
         ({} candidates executed)",
        shrink.original_weight, shrink.minimal_weight, shrink.shrink_steps, shrink.shrink_tested
    );
    println!("\nfirst counterexample, minimal timeline + flight-recorder tail:");
    println!("{}", shrink.first_rendered);

    write_record("BENCH_campaign.json", &render_json(&green, &shrink));
}
