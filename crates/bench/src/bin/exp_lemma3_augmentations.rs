//! E5 — Lemma 3: *no* assignment of timeout and undeliverable-message
//! transitions makes 3PC resilient to optimistic multisite simple
//! partitioning.
//!
//! The paper proves this with an adversary argument over global-state
//! sequences. This experiment reproduces it constructively: it enumerates
//! every one of the `4^6 = 4096` total timeout/UD assignments over 3PC's
//! non-final states and, for each, searches a scenario grid for an
//! execution that violates atomicity. Lemma 3 predicts a counterexample
//! for every single assignment.

use ptp_core::model::augment::{enumerate_augmentations, find_augmentation};
use ptp_core::model::protocols::three_phase;
use ptp_core::model::rules::derive_rules_augmentation;
use ptp_core::model::Augmentation;
use ptp_core::report::Table;
use ptp_protocols::api::Vote;
use ptp_protocols::clusters::fsa_cluster_any;
use ptp_protocols::runner::ClusterRunner;
use ptp_protocols::{TraceMode, Verdict};
use ptp_simnet::{DelayModel, NetConfig, SimTime, SiteId};

/// The scenario grid each augmentation must survive: every boundary, T/2
/// partition instants to 8T, two delay schedules, and both unanimous-yes
/// and one-no vote vectors (the no-vote dimension matters: assignments that
/// blindly commit on every timeout survive all-yes grids but contradict a
/// unilateral abort).
struct Grid {
    boundaries: Vec<Vec<SiteId>>,
    times: Vec<u64>,
    delays: Vec<DelayModel>,
    votes: Vec<[Vote; 2]>,
}

impl Grid {
    fn new() -> Grid {
        Grid {
            boundaries: vec![vec![SiteId(1)], vec![SiteId(2)], vec![SiteId(1), SiteId(2)]],
            times: (0..=16).map(|i| i * 500).collect(),
            delays: vec![DelayModel::Fixed(1000), DelayModel::Fixed(500)],
            votes: vec![[Vote::Yes, Vote::Yes], [Vote::No, Vote::Yes]],
        }
    }

    fn scenarios_per_assignment(&self) -> usize {
        self.boundaries.len() * self.times.len() * self.delays.len() * self.votes.len()
    }
}

/// Searches the grid for a violation; returns the first failing scenario.
///
/// The cluster is built once per augmentation and reset per cell — the
/// session-style hot path (one `ClusterRunner`, reused partition buffers,
/// counters-only tracing) applied to the 4096-assignment search.
fn find_violation(aug: &Augmentation, grid: &Grid) -> Option<(Vec<SiteId>, u64, usize)> {
    let spec = three_phase(3);
    let mut runner = ClusterRunner::new(fsa_cluster_any(spec, &[Vote::Yes; 2], Some(aug.clone())));
    for g2 in &grid.boundaries {
        for &at in &grid.times {
            for (di, delay) in grid.delays.iter().enumerate() {
                for votes in &grid.votes {
                    runner.reset(votes);
                    let groups = runner.partition_mut().reset_single(SimTime(at), None, 2);
                    groups[0].extend((0..3u16).map(SiteId).filter(|s| !g2.contains(s)));
                    groups[1].extend_from_slice(g2);
                    let (outcomes, _, _) =
                        runner.run_borrowed(NetConfig::default(), delay, TraceMode::Counters, &[]);
                    if matches!(Verdict::judge(outcomes), Verdict::Inconsistent { .. }) {
                        return Some((g2.clone(), at, di));
                    }
                }
            }
        }
    }
    None
}

fn main() {
    println!("== E5 / Lemma 3: exhaustive augmentation search ==\n");
    let spec = three_phase(3);
    let augmentations = enumerate_augmentations(&spec);
    let rules_index = find_augmentation(&spec, &derive_rules_augmentation(&spec).augmentation);
    println!(
        "enumerating {} total timeout/UD assignments over 3PC's non-final states",
        augmentations.len()
    );
    let grid = Grid::new();
    println!(
        "scenario grid: 3 boundaries x 17 instants x 2 delay models x 2 vote vectors = {} per assignment\n",
        grid.scenarios_per_assignment()
    );
    let mut broken = 0usize;
    let mut survivors: Vec<usize> = Vec::new();
    let mut sample_rows: Vec<(usize, Vec<SiteId>, u64)> = Vec::new();

    for (i, aug) in augmentations.iter().enumerate() {
        match find_violation(aug, &grid) {
            Some((g2, at, _)) => {
                broken += 1;
                if sample_rows.len() < 5 || Some(i) == rules_index {
                    sample_rows.push((i, g2, at));
                }
            }
            None => survivors.push(i),
        }
    }

    let mut table = Table::new(vec!["assignment #", "violating G2", "partition at"]);
    for (i, g2, at) in &sample_rows {
        let tag = if Some(*i) == rules_index { " (Rule a/b)" } else { "" };
        table.row(vec![
            format!("{i}{tag}"),
            format!("{g2:?}"),
            format!("{:.2}T", *at as f64 / 1000.0),
        ]);
    }

    println!("assignments with an atomicity violation: {broken} / {}", augmentations.len());
    println!("assignments surviving the grid:          {}\n", survivors.len());
    println!("sample counterexamples:\n{}", table.render());

    if survivors.is_empty() {
        println!("Lemma 3 reproduced: every augmentation fails somewhere on the grid.");
    } else {
        println!(
            "note: {} assignments survived this particular grid — Lemma 3 still \
             guarantees counterexamples exist; widen the grid to find them: {:?}",
            survivors.len(),
            &survivors[..survivors.len().min(10)]
        );
    }

    // Phase 2: the paper's own (untimed) adversary — exhaustive abstract
    // partition executions over every reachable global state, every simple
    // boundary, and every interleaving of deliveries/UD receipts/timeouts.
    println!("\n-- abstract adversary (ptp_model::partition_exec), exhaustive --");
    let mut abstract_broken = 0usize;
    let mut abstract_survivors = 0usize;
    for aug in &augmentations {
        if ptp_core::model::partition_exec::find_violation(&spec, aug).is_some() {
            abstract_broken += 1;
        } else {
            abstract_survivors += 1;
        }
    }
    println!(
        "assignments with an abstract violation: {abstract_broken} / {} \
         (survivors: {abstract_survivors})",
        augmentations.len()
    );
    println!("Both adversaries — the timed bounded-delay one and the paper's untimed");
    println!("one — agree: timeout and undeliverable-message transitions cannot make");
    println!("3PC resilient to multisite simple partitioning.");
}
