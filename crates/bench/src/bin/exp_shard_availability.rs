//! Shard-level availability under partition-schedule families.
//!
//! `exp_multi_partition` measured what schedule families beyond the paper's
//! model do to a *single* replica group; this experiment asks the same
//! question one structural layer up, on the sharded store: a 3-shard ×
//! 2-replica cluster over six sites runs a mixed single-/cross-shard
//! workload while each [`ScheduleShape`] family cuts the cluster along a
//! boundary that strands shard 1's replica and all of shard 2. Per-shard
//! **availability** — the fraction of `(transaction, replica)` slots that
//! reached a decision — then quantifies, protocol by protocol, how much of
//! the store each failure family takes offline:
//!
//! * 2PC blocks every participant the split catches mid-protocol;
//! * HL-3PC terminates both sides of simple splits (availability lost only
//!   where outcome shipping cannot reach a stranded replica);
//! * quorum commit terminates only quorum-side fragments.
//!
//! The cross-shard columns show the same comparison at the top-level
//! coordinator: a split severing two shards' groups is terminated — or
//! measurably blocked — by the paper's protocol one layer up.

use ptp_core::ddb::cluster::CommitProtocol;
use ptp_core::ddb::value::{TxnId, Value, WriteOp};
use ptp_core::report::Table;
use ptp_core::{PartitionSchedule, ScheduleShape};
use ptp_shard::{ShardCluster, ShardRun, ShardTopology, ShardTxnSpec};
use ptp_simnet::{PartitionEngine, PartitionSpec, SimTime, SiteId};

const SITES: usize = 6;
const SHARDS: usize = 3;
const REPLICATION: usize = 2;
/// The boundary every family derives its schedule from: G2 = {3, 4, 5}
/// strands shard 1's replica (site 3) from its master and cuts shard 2's
/// whole group away from the coordinator side.
const G2: [SiteId; 3] = [SiteId(3), SiteId(4), SiteId(5)];
/// Split instant: top-level prepares are in flight (the paper's worst
/// window, scaled to this workload).
const SPLIT_AT: u64 = 2000;

const PROTOCOLS: [CommitProtocol; 3] =
    [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority];

fn topology() -> ShardTopology {
    ShardTopology::uniform(SITES, SHARDS, REPLICATION)
}

/// The fixed workload: per shard, three single-shard transactions spread
/// around the split instant, plus one cross-shard transaction per shard
/// pair in the same window — 13 transactions, every one potentially caught
/// by an episode.
fn workload(topo: &ShardTopology) -> Vec<(u64, ShardTxnSpec)> {
    let pools = ptp_bench::shard_key_pool(topo, 8);
    let mut out = Vec::new();
    let mut id = 1u32;
    for pool in pools.iter().take(SHARDS) {
        for (j, at) in [0u64, 1600, 6000].into_iter().enumerate() {
            out.push((
                at,
                ShardTxnSpec {
                    id: TxnId(id),
                    writes: vec![WriteOp {
                        key: pool[j].clone(),
                        value: Value::from_u64(id as u64),
                    }],
                },
            ));
            id += 1;
        }
    }
    for (a, b) in [(0usize, 1usize), (1, 2), (0, 2)] {
        out.push((
            1500,
            ShardTxnSpec {
                id: TxnId(id),
                writes: vec![
                    WriteOp { key: pools[a][4].clone(), value: Value::from_u64(id as u64) },
                    WriteOp { key: pools[b][4].clone(), value: Value::from_u64(id as u64) },
                ],
            },
        ));
        id += 1;
    }
    out.push((
        5500,
        ShardTxnSpec {
            id: TxnId(id),
            writes: vec![
                WriteOp { key: pools[0][5].clone(), value: Value::from_u64(id as u64) },
                WriteOp { key: pools[1][5].clone(), value: Value::from_u64(id as u64) },
                WriteOp { key: pools[2][5].clone(), value: Value::from_u64(id as u64) },
            ],
        },
    ));
    out
}

/// Derives the family's concrete partition engine from the shared boundary.
fn engine_for(shape: ScheduleShape) -> PartitionEngine {
    let mut schedule = PartitionSchedule::new();
    shape.write_schedule(SITES, &G2, SPLIT_AT, None, &mut schedule);
    PartitionEngine::new(
        schedule
            .episodes()
            .iter()
            .map(|e| PartitionSpec {
                at: SimTime(e.at),
                groups: e.groups.clone(),
                heal_at: e.heal_at.map(SimTime),
            })
            .collect(),
    )
}

fn run_cell(shape: ScheduleShape, protocol: CommitProtocol) -> ShardRun {
    let topo = topology();
    let mut cluster = ShardCluster::new(topo.clone(), protocol).partition(engine_for(shape));
    for (at, spec) in workload(&topo) {
        cluster = cluster.submit(at, spec);
    }
    cluster.run()
}

/// When the simple split **heals**: the stranded sites missed every
/// decision shipped while they were severed, and commit-time shipping
/// never retries. The anti-entropy chain is the only way those slots get
/// credited after the heal — this section measures exactly that delta.
const HEAL_AT: u64 = 12_000;
const SYNC_PERIOD: u64 = 3_000;

fn run_healed(protocol: CommitProtocol, anti_entropy: bool) -> ShardRun {
    let topo = topology();
    let mut schedule = PartitionSchedule::new();
    ScheduleShape::Simple.write_schedule(SITES, &G2, SPLIT_AT, Some(HEAL_AT), &mut schedule);
    let engine = PartitionEngine::new(
        schedule
            .episodes()
            .iter()
            .map(|e| PartitionSpec {
                at: SimTime(e.at),
                groups: e.groups.clone(),
                heal_at: e.heal_at.map(SimTime),
            })
            .collect(),
    );
    let mut cluster = ShardCluster::new(topo.clone(), protocol).partition(engine);
    if anti_entropy {
        cluster = cluster.anti_entropy(SYNC_PERIOD);
    }
    for (at, spec) in workload(&topo) {
        cluster = cluster.submit(at, spec);
    }
    cluster.run()
}

fn healed_replica_section() {
    println!(
        "== healed-replica catch-up: simple split heals at t = {HEAL_AT}, \
         anti-entropy off vs on (period {SYNC_PERIOD}) =="
    );
    let mut table = Table::new(vec![
        "protocol",
        "anti-entropy",
        "avail s0",
        "avail s1",
        "avail s2",
        "min avail",
        "atomic?",
    ]);
    for protocol in PROTOCOLS {
        let off = run_healed(protocol, false);
        let on = run_healed(protocol, true);
        for (label, run) in [("off", &off), ("on", &on)] {
            let min = run.shards.iter().map(|s| s.availability()).fold(1.0, f64::min);
            table.row(vec![
                protocol.name().to_string(),
                label.to_string(),
                format!("{:.3}", run.shards[0].availability()),
                format!("{:.3}", run.shards[1].availability()),
                format!("{:.3}", run.shards[2].availability()),
                format!("{min:.3}"),
                if run.metrics.atomicity_violations().is_empty() {
                    "YES".into()
                } else {
                    "no".into()
                },
            ]);
        }
        // The sync chain can only add credited slots, never remove them.
        for (shard_on, shard_off) in on.shards.iter().zip(&off.shards) {
            assert!(
                shard_on.availability() >= shard_off.availability(),
                "{}: anti-entropy lowered shard {} availability ({:.3} -> {:.3})",
                protocol.name(),
                shard_off.shard,
                shard_off.availability(),
                shard_on.availability()
            );
        }
        // Shard 1 is the stranded-replica shard: its master (site 2) kept
        // committing on the coordinator side while its replica (site 3)
        // was severed, so after the heal the sync chain has real decisions
        // to replay there. Under the paper's protocol the improvement must
        // be strict — the committed acceptance anchor of the read-path PR.
        // (Shard 2's whole group was severed together; no decision exists
        // that anti-entropy could credit, so it is not the yardstick.)
        if protocol == CommitProtocol::HuangLi {
            let (a_on, a_off) = (on.shards[1].availability(), off.shards[1].availability());
            assert!(
                a_on > a_off,
                "HL-3PC: healed-replica availability must strictly improve with \
                 anti-entropy on ({a_off:.3} -> {a_on:.3})"
            );
        }
    }
    println!("{}", table.render());
    println!("Reading the table: with the chain off, slots decided while a replica");
    println!("was severed stay uncredited forever (commit-time shipping never");
    println!("retries). With it on, the first post-heal sync round replays the");
    println!("missed decisions — strictly higher availability under HL-3PC.\n");
}

fn main() {
    println!("== exp_shard_availability: per-shard availability across schedule families ==");
    println!(
        "{SHARDS} shards x {REPLICATION} replicas over {SITES} sites; every family splits \
         along G2 = {{3, 4, 5}} at t = {SPLIT_AT}\n"
    );

    let topo = topology();
    for s in 0..SHARDS {
        println!(
            "  shard {s}: group {:?} (master site {})",
            topo.group(s).iter().map(|x| x.0).collect::<Vec<_>>(),
            topo.master(s).0
        );
    }
    println!();

    let mut table = Table::new(vec![
        "family",
        "protocol",
        "avail s0",
        "avail s1",
        "avail s2",
        "x-committed",
        "x-aborted",
        "x-blocked",
        "atomic?",
        "severed groups",
    ]);

    for shape in ScheduleShape::FAMILIES {
        let engine = engine_for(shape);
        let severed: Vec<usize> =
            (0..SHARDS).filter(|&s| engine.severed_episodes(topo.group(s)) > 0).collect();
        // One run per (family, protocol) cell; the sanity anchors below
        // reuse these instead of re-simulating.
        let runs: Vec<(CommitProtocol, ShardRun)> =
            PROTOCOLS.iter().map(|&protocol| (protocol, run_cell(shape, protocol))).collect();
        for (protocol, run) in &runs {
            let atomic = run.metrics.atomicity_violations().is_empty();
            for shard in &run.shards {
                let a = shard.availability();
                assert!((0.0..=1.0).contains(&a), "availability out of range: {shard:?}");
            }
            table.row(vec![
                shape.name().to_string(),
                protocol.name().to_string(),
                format!("{:.3}", run.shards[0].availability()),
                format!("{:.3}", run.shards[1].availability()),
                format!("{:.3}", run.shards[2].availability()),
                run.cross_shard.committed.to_string(),
                run.cross_shard.aborted.to_string(),
                run.cross_shard.blocked.to_string(),
                if atomic { "YES".into() } else { "no".into() },
                format!("{severed:?}"),
            ]);
            if shape.is_simple() {
                assert!(atomic, "{}: simple split broke atomicity", protocol.name());
            }
        }

        // Sanity anchor grounded in the layer-one results: on the simple
        // family the paper's protocol must decide at least as many
        // (txn, replica) slots as blocking 2PC on every shard.
        if shape.is_simple() {
            let shards_of = |p: CommitProtocol| {
                &runs.iter().find(|(q, _)| *q == p).expect("protocol ran").1.shards
            };
            let (hl_shards, base_shards) =
                (shards_of(CommitProtocol::HuangLi), shards_of(CommitProtocol::TwoPhase));
            for (hl, base) in hl_shards.iter().zip(base_shards) {
                assert!(
                    hl.availability() >= base.availability(),
                    "shard {}: HL-3PC ({:.3}) below 2PC ({:.3})",
                    hl.shard,
                    hl.availability(),
                    base.availability()
                );
            }
        }
    }
    println!("{}", table.render());

    healed_replica_section();

    println!("Reading the table: a simple split leaves HL-3PC terminating both sides");
    println!("(availability lost only where a stranded replica is out of shipping");
    println!("reach), while 2PC's caught participants block and quorum commit");
    println!("strands minority fragments. The multi-way and nested families leave");
    println!("the paper's model: there the termination protocol itself can decide");
    println!("inconsistently — the atomicity column, measured at shard level.");
}
