//! Live serving baseline: the multi-threaded shard server under sustained
//! open-loop load, batching off vs on.
//!
//! Runs the same offered load twice through `ptp-live` — once with the
//! simulator's per-record force writes and per-message sends, once with
//! group-commit WAL batching and protocol-message coalescing — and writes
//! `BENCH_live.json`, the **sixth** committed perf record. Both runs must
//! pass the storage audit and drain cleanly; at a full budget the batched
//! run must also beat the unbatched one on achieved commit throughput
//! (that's the point of group commit: the per-flush cost is amortized
//! across every record in the window, so a saturated force-write server
//! turns into an unsaturated batched one at the same offered load).
//!
//! The flush cost is a busy-wait standing in for fsync; the offered rate is
//! chosen so that per-record force writes saturate the recorded machine.
//!
//! `CRITERION_BUDGET_MS` scales the load window, as in the sibling benches
//! (the CI smoke run only checks the invariants, not the ordering — a
//! 300 ms window on a loaded runner is not a measurement).

use ptp_bench::{criterion_budget_ms, host_fields, json_escape, nproc, write_record};
use ptp_core::report::Table;
use ptp_live::{run_server, BatchConfig, KeySkew, LiveOptions, LiveReport};
use std::fmt::Write as _;
use std::time::Duration;

const OFFERED_OPS_PER_SEC: f64 = 300.0;
const FLUSH_COST: Duration = Duration::from_millis(1);
const BATCH_WINDOW: Duration = Duration::from_millis(10);

fn options(duration: Duration) -> LiveOptions {
    let mut opts = LiveOptions::small(OFFERED_OPS_PER_SEC, duration);
    opts.flush_cost = FLUSH_COST;
    opts.skew = KeySkew::HotKey { hot_fraction: 0.1 };
    opts.drain_timeout = Duration::from_secs(20);
    opts
}

fn mode_json(mode: &str, r: &LiveReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "    {{\"mode\": \"{mode}\", \"achieved_commits_per_sec\": {:.1}, \
         \"issued_writes\": {}, \"committed\": {}, \"aborted\": {}, \"completed_reads\": {}, \
         \"write_p50_us\": {}, \"write_p90_us\": {}, \"write_p99_us\": {}, \"write_max_us\": {}, \
         \"read_p50_us\": {}, \"read_p99_us\": {}, \
         \"flushes\": {}, \"channel_sends\": {}, \"protocol_messages\": {}, \
         \"clean_drain\": {}, \"audit_ok\": {}}}",
        r.achieved_rate,
        r.issued_writes,
        r.committed,
        r.aborted,
        r.completed_reads,
        r.writes.p50_us,
        r.writes.p90_us,
        r.writes.p99_us,
        r.writes.max_us,
        r.reads.p50_us,
        r.reads.p99_us,
        r.flushes,
        r.channel_sends,
        r.protocol_messages,
        r.clean_drain,
        r.audit.ok,
    );
    out
}

fn render_json(duration: Duration, off: &LiveReport, on: &LiveReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("live_serving"));
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"sites\": 6,");
    let _ = writeln!(out, "  \"shards\": 3,");
    let _ = writeln!(out, "  \"replication\": 2,");
    let _ = writeln!(out, "  \"protocol\": \"{}\",", json_escape("huang-li-3pc"));
    let _ = writeln!(out, "  \"offered_ops_per_sec\": {OFFERED_OPS_PER_SEC},");
    let _ = writeln!(out, "  \"duration_ms\": {},", duration.as_millis());
    let _ = writeln!(out, "  \"flush_cost_us\": {},", FLUSH_COST.as_micros());
    let _ = writeln!(out, "  \"batch_window_us\": {},", BATCH_WINDOW.as_micros());
    out.push_str("  \"modes\": [\n");
    out.push_str(&mode_json("batching_off", off));
    out.push_str(",\n");
    out.push_str(&mode_json("batching_on", on));
    out.push_str("\n  ]\n}\n");
    out
}

fn summarize(mode: &str, r: &LiveReport, table: &mut Table) {
    table.row(vec![
        mode.to_string(),
        format!("{:.0}", r.achieved_rate),
        format!("{}/{}", r.committed, r.issued_writes),
        format!("{}", r.writes.p50_us),
        format!("{}", r.writes.p99_us),
        r.flushes.to_string(),
        format!("{}", r.channel_sends),
        if r.audit.ok { "ok".into() } else { "VIOLATED".into() },
        if r.clean_drain { "yes".into() } else { "NO".into() },
    ]);
}

/// Pins the Null-sink goodput against the committed record. These runs
/// leave `LiveOptions::obs` at its off default, so the measured goodput
/// *is* the observability-disabled number: at full budget on a container
/// of the same width, batched goodput must stay within 5% of the last
/// committed `BENCH_live.json` (one-sided — faster is never a regression).
fn assert_null_sink_goodput(on: &LiveReport, full_budget: bool) {
    let Ok(prior) = std::fs::read_to_string("BENCH_live.json") else {
        println!("no committed BENCH_live.json; skipping the goodput pin");
        return;
    };
    let field = |from: &str, key: &str| -> Option<f64> {
        let rest = &from[from.find(key)? + key.len()..];
        rest.split([',', '}', '\n']).next()?.trim().parse().ok()
    };
    let prior_nproc = field(&prior, "\"nproc\": ");
    let prior_rate = prior
        .find("\"mode\": \"batching_on\"")
        .and_then(|i| field(&prior[i..], "\"achieved_commits_per_sec\": "));
    let (Some(prior_nproc), Some(prior_rate)) = (prior_nproc, prior_rate) else {
        println!("committed BENCH_live.json predates the goodput pin; skipping");
        return;
    };
    if !full_budget || prior_nproc as usize != nproc() {
        println!(
            "goodput pin skipped (full budget: {full_budget}, recorded nproc {prior_nproc} \
             vs {} here); committed record: {prior_rate:.1} commits/s batched",
            nproc()
        );
        return;
    }
    assert!(
        on.achieved_rate >= prior_rate * 0.95,
        "Null-sink goodput regressed beyond noise: {:.1} commits/s batched vs \
         {prior_rate:.1} committed in BENCH_live.json (tolerance 5%)",
        on.achieved_rate
    );
    println!(
        "Null-sink goodput pin: {:.1} commits/s batched vs {prior_rate:.1} committed (within 5%)",
        on.achieved_rate
    );
}

fn main() {
    let budget_ms = criterion_budget_ms(2_000);
    // A live run needs real wall time regardless of budget: at least 300 ms
    // of load so the schedule has enough arrivals to audit meaningfully.
    let duration = Duration::from_millis(budget_ms.max(300));
    let full_budget = budget_ms >= 1_000;
    println!(
        "== bench_live: {OFFERED_OPS_PER_SEC} ops/s offered for {duration:?}, \
         flush cost {FLUSH_COST:?} =="
    );
    println!("3 shards x 2 replicas over 6 sites, HL-3PC, 20% reads, 10% cross-shard\n");

    let off = run_server(&options(duration));
    println!("batching off: {:.0} commits/s achieved, {} flushes", off.achieved_rate, off.flushes);
    let mut on_opts = options(duration);
    on_opts.batch = BatchConfig::on(BATCH_WINDOW);
    let on = run_server(&on_opts);
    println!(
        "batching on : {:.0} commits/s achieved, {} flushes ({:?} window)\n",
        on.achieved_rate, on.flushes, BATCH_WINDOW
    );

    let mut table = Table::new(vec![
        "mode",
        "commits/s",
        "committed",
        "p50 us",
        "p99 us",
        "flushes",
        "sends",
        "audit",
        "drained",
    ]);
    summarize("batching off", &off, &mut table);
    summarize("batching on", &on, &mut table);
    println!("{}", table.render());

    // The invariants hold at any budget.
    for (mode, r) in [("off", &off), ("on", &on)] {
        assert!(r.audit.ok, "batching-{mode} audit violations: {:?}", r.audit.violations);
        assert!(r.clean_drain, "batching-{mode} run did not drain cleanly");
        assert!(r.committed > 0, "batching-{mode} run committed nothing");
    }
    // Coalescing must actually coalesce, and group commit must actually
    // group: fewer sends than messages, fewer flushes than force writes.
    assert!(
        on.channel_sends < on.protocol_messages,
        "coalescing never packed two messages into one send"
    );
    assert!(on.flushes < off.flushes, "group commit should flush less than force-writing");
    // The ordering claim is only a measurement at full budget.
    if full_budget {
        assert!(
            on.achieved_rate > off.achieved_rate,
            "group commit must beat force-writing at equal offered load: \
             on {:.1} <= off {:.1} commits/s",
            on.achieved_rate,
            off.achieved_rate
        );
    }

    // Compare against the committed record *before* overwriting it.
    assert_null_sink_goodput(&on, full_budget);

    write_record("BENCH_live.json", &render_json(duration, &off, &on));
}
