//! E12 — the Sec. 2 impossibility theorems, demonstrated:
//!
//! * "There exists no protocol resilient to a network partitioning when
//!   messages are lost."  We run the paper's own protocol under the
//!   *pessimistic* model (undeliverable messages silently dropped instead
//!   of returned) and exhibit atomicity violations.
//! * "There exists no protocol resilient to a multiple network
//!   partitioning."  We split the network into three groups and exhibit
//!   violations — including the tell-tale one where a G2 slave's commit
//!   broadcast cannot reach a third group.

use ptp_bench::standard_delays;
use ptp_core::{
    run_scenario_opts, sweep, PartitionShape, ProtocolKind, RunOptions, Scenario, SweepGrid,
    SweepReport,
};
use ptp_protocols::Verdict;
use ptp_simnet::SiteId;

fn pessimistic_sweep() -> SweepReport {
    let mut grid = SweepGrid::standard(3).pessimistic();
    grid.partition_times = (0..=32).map(|i| i * 250).collect();
    grid.delays = standard_delays(1000);
    sweep(ProtocolKind::HuangLi3pc, &grid)
}

fn main() {
    println!("== E12: the impossibility theorems ==\n");

    // Part 1: message loss.
    let report = pessimistic_sweep();
    println!("pessimistic model (messages lost at the boundary), HL-3PC, n = 3:");
    println!(
        "  {} scenarios: {} atomicity violations, {} blocked",
        report.total, report.inconsistent_count, report.blocked_count
    );
    assert!(
        report.inconsistent_count + report.blocked_count > 0,
        "losing messages must break some scenario"
    );
    if let Some(w) = report.inconsistent.first() {
        println!(
            "  example violation: G2 = {:?}, partition at {:.2}T, delay model #{}",
            w.g2,
            w.at as f64 / 1000.0,
            w.delay_index
        );
    }
    println!("  (the protocol's whole design leans on undeliverable messages being");
    println!("   returned; silently dropping them re-opens the window the paper's");
    println!("   Lemma 3 adversary exploits)\n");

    // Part 2: multiple partitioning. Three-way split of a 4-site cluster.
    // The violation needs asymmetric prepare delivery (one fragment's
    // prepare crosses, another's bounces), so we sweep randomized delay
    // schedules plus the paper-style crafted one: prepare->2 arrives just
    // before the cut, prepare->3 is still in flight.
    println!("multiple (3-way) partitioning, HL-3PC, n = 4:");
    let groups = vec![vec![SiteId(0), SiteId(1)], vec![SiteId(2)], vec![SiteId(3)]];
    let mut violations = 0usize;
    let mut blocked = 0usize;
    let mut total = 0usize;
    let mut example: Option<(String, Verdict)> = None;

    // Crafted: message 7 is prepare->2 (sends 0-2 are xacts, 3-5 the yes
    // replies, 6-8 the prepares).
    let crafted = ptp_simnet::ScheduleBuilder::with_default(1000).outbound(7, 400).build();
    let mut scenario = Scenario::new(4).delay(crafted);
    scenario.partition =
        PartitionShape::Multiple { groups: groups.clone(), at: 2500, heal_at: None };
    let result = run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &RunOptions::new());
    total += 1;
    if let Verdict::Inconsistent { .. } = result.verdict {
        violations += 1;
        example = Some(("crafted schedule, split at 2.50T".into(), result.verdict.clone()));
    }

    for seed in 0..30u64 {
        for at in (1500..=4500).step_by(500) {
            let mut scenario =
                Scenario::new(4).delay(ptp_simnet::DelayModel::Uniform { seed, min: 1, max: 1000 });
            scenario.partition =
                PartitionShape::Multiple { groups: groups.clone(), at, heal_at: None };
            let result = run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &RunOptions::new());
            total += 1;
            match result.verdict {
                Verdict::Inconsistent { .. } => {
                    violations += 1;
                    if example.is_none() {
                        example = Some((
                            format!("seed {seed}, split at {:.2}T", at as f64 / 1000.0),
                            result.verdict.clone(),
                        ));
                    }
                }
                Verdict::Blocked { .. } => blocked += 1,
                _ => {}
            }
        }
    }
    println!("  {total} scenarios: {violations} atomicity violations, {blocked} blocked");
    assert!(violations > 0, "multiple partitioning must break the protocol");
    if let Some((desc, v)) = example {
        println!("  example: {desc} -> {v:?}");
        println!("  (a prepared slave alone in its fragment self-commits via UD(probe),");
        println!("   the master commits G1 by the collection rule, but the third fragment");
        println!("   never learns and aborts after its 6T wait — simple partitioning's");
        println!("   two-group structure is essential to Lemma 4)");
    }
}
