//! E8 — Fig. 7: "The longest possible time for a slave to receive a commit
//! after it times out in state w = 6T."
//!
//! The 6T window is what lets a slave that timed out in `w` distinguish
//! "the transaction aborted" from "a committed peer's broadcast is still on
//! its way". We reconstruct the paper's worst case with an explicit
//! adversarial schedule — a G2 peer receives its prepare at the last
//! possible instant, its probe bounces off the boundary with maximal
//! delays, and only then does its commit broadcast reach the waiting slave
//! — and also run a randomized sweep. The measured maximum must stay within
//! 6T of the slave's timeout, or the slave would have aborted against a
//! committed peer.

use ptp_core::report::Table;
use ptp_core::{ProtocolKind, RunOptions, Scenario, Session};
use ptp_simnet::{DelayModel, ScheduleBuilder, SiteId, Trace, TraceEvent};

/// For each slave that noted `slave-timeout-w`, the gap to the first commit
/// delivered to it afterwards. Returns the max across slaves.
fn max_w_wait(trace: &Trace, n: usize) -> Option<u64> {
    let mut max = None;
    for site in 1..n as u16 {
        let site = SiteId(site);
        let Some((timeout_at, _)) = trace.first_note(site, "slave-timeout-w") else { continue };
        let commit_at = trace.events().iter().find_map(|e| match e {
            TraceEvent::Delivered { at, dst, kind: "commit", .. }
                if *dst == site && *at >= timeout_at =>
            {
                Some(at.ticks())
            }
            _ => None,
        });
        if let Some(c) = commit_at {
            let gap = c - timeout_at.ticks();
            max = Some(max.map_or(gap, |m: u64| m.max(gap)));
        }
    }
    max
}

fn main() {
    println!("== E8 / Fig. 7: slave's post-w-timeout commit bound (paper: 6T) ==\n");

    // The paper's worst case, n = 3 with G2 = {1, 2} (master alone in G1).
    // Send order: 0: xact->1, 1: xact->2, 2: yes 2->0, 3: yes 1->0,
    // 4: prepare->1, 5: prepare->2, 6: ack 1->0, 7: probe 1->0,
    // 8/9: slave 1's commit broadcast.
    //
    //  * slave 2 gets its xact instantly (votes at t≈0, times out in w at
    //    ~3T);
    //  * slave 1's prepare arrives just before the partition at 3T, its ack
    //    squeaks through to the master, so the master owes it a commit that
    //    can never cross;
    //  * slave 1 times out in p at ~6T, its probe takes T out and T back
    //    (UD at ~8T), and its commit broadcast lands at slave 2 at ~9T —
    //    6T after slave 2's timeout.
    let schedule = ScheduleBuilder::with_default(1000)
        .outbound(1, 1) // xact->2 instantaneous
        .outbound(4, 998) // prepare->1 arrives at 2998, just inside
        .outbound(6, 1) // ack 1->0 delivered at 2999, before the cut
        .build();
    let scenario = Scenario::new(3).partition_g2(vec![SiteId(1), SiteId(2)], 3000).delay(schedule);
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();
    let result = session.run_with(&scenario, &recording);
    let gap = max_w_wait(&result.trace, 3).expect("worst case must produce the wait");
    println!(
        "adversarial schedule: commit reached the w-waiting slave {:.3}T after its timeout",
        gap as f64 / 1000.0
    );
    println!("verdict: {:?} (paper bound 6T)", result.verdict);
    assert!(gap <= 6000, "gap {gap} exceeds 6T");
    assert!(result.verdict.is_resilient());

    // Randomized sweep over boundaries, instants and delay seeds.
    let mut max_gap = 0u64;
    let mut waits = 0usize;
    let mut table = Table::new(vec!["seed", "G2", "partition at", "gap (T)"]);
    for seed in 0..40u64 {
        for at in (500..=4000).step_by(250) {
            for g2 in [vec![SiteId(2)], vec![SiteId(1), SiteId(2)]] {
                let scenario = Scenario::new(3)
                    .partition_g2(g2.clone(), at)
                    .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
                let result = session.run_with(&scenario, &recording);
                assert!(result.verdict.is_resilient(), "seed {seed} at {at} g2 {g2:?}");
                if let Some(gap) = max_w_wait(&result.trace, 3) {
                    waits += 1;
                    if gap > max_gap {
                        max_gap = gap;
                        table.row(vec![
                            seed.to_string(),
                            format!("{g2:?}"),
                            format!("{:.2}T", at as f64 / 1000.0),
                            format!("{:.3}", gap as f64 / 1000.0),
                        ]);
                    }
                }
            }
        }
    }
    println!("\nrandomized sweep: {waits} runs where a w-waiting slave later got a commit;");
    println!("new maxima:\n\n{}", table.render());
    println!(
        "measured max = {:.3}T  |  paper bound = 6T  |  bound holds: {}",
        max_gap as f64 / 1000.0,
        max_gap <= 6000
    );
    assert!(max_gap <= 6000);
}
