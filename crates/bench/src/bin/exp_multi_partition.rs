//! Partition-schedule resilience: where the simple-partition assumption
//! breaks.
//!
//! The paper restricts itself to *simple* (two-group, single-episode)
//! partitioning and proves the termination protocol resilient there
//! (Theorem 9). This experiment is the quantitative generalization of
//! `tests/impossibility.rs::multiple_partitioning_breaks_the_termination_protocol`:
//! it sweeps every protocol over the [`ScheduleShape::FAMILIES`] schedule
//! families — the simple baseline plus split→heal→re-split, three-way
//! splits and nested secessions — and tabulates per-family resilience and
//! atomicity, so the cost of leaving the paper's model is a number, not an
//! anecdote.
//!
//! The delay axis includes the crafted schedule behind the Sec. 2
//! counterexample, so the multi-way family provably contains the paper's
//! own breaking scenario.
//!
//! Writes `BENCH_schedule.json` (the third committed perf/behaviour record
//! next to `BENCH_sweep.json` and `BENCH_ddb.json`); CI regenerates it in
//! the bench smoke step.

use ptp_bench::{host_fields, json_escape, write_record};
use ptp_core::report::Table;
use ptp_core::{
    sweep_threads, sweep_with_threads, ProtocolKind, ScheduleShape, SweepGrid, SweepReport,
};
use ptp_simnet::{DelayModel, ScheduleBuilder};
use std::fmt::Write as _;
use std::time::Instant;

const N: usize = 4;

/// Protocols worth comparing outside the simple model: the paper's three
/// variants, the blocking baseline and the quorum reference.
const KINDS: [ProtocolKind; 5] = [
    ProtocolKind::Plain2pc,
    ProtocolKind::HuangLi3pc,
    ProtocolKind::HuangLi3pcStatic,
    ProtocolKind::HuangLi4pc,
    ProtocolKind::QuorumMajority,
];

/// One family's grid: all simple boundaries × T/4 instants up to 8T ×
/// {permanent, heal-after-3T} × three delay schedules, with the shape axis
/// pinned to `shape`.
fn family_grid(shape: ScheduleShape) -> SweepGrid {
    let mut grid = SweepGrid::standard(N).with_shapes(vec![shape]);
    grid.heals = vec![None, Some(3000)];
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Uniform { seed: 11, min: 1, max: 1000 },
        // The crafted schedule behind the Sec. 2 multiple-partitioning
        // counterexample: slave 2's prepare crosses into its own fragment.
        ScheduleBuilder::with_default(1000).outbound(7, 400).build(),
    ];
    grid
}

struct Cell {
    kind: ProtocolKind,
    report: SweepReport,
    wall_ms: f64,
}

fn measure_family(shape: ScheduleShape) -> (SweepGrid, Vec<Cell>) {
    let grid = family_grid(shape);
    let threads = sweep_threads();
    let cells = KINDS
        .iter()
        .map(|&kind| {
            let started = Instant::now();
            let report = sweep_with_threads(kind, &grid, threads);
            let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(report.total, grid.size());
            Cell { kind, report, wall_ms }
        })
        .collect();
    (grid, cells)
}

fn render_json(families: &[(ScheduleShape, SweepGrid, Vec<Cell>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("schedule"));
    let _ = writeln!(out, "  \"n\": {N},");
    let _ = writeln!(out, "  \"threads\": {},", sweep_threads());
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"protocols\": {},", KINDS.len());
    out.push_str("  \"families\": [\n");
    for (fi, (shape, grid, cells)) in families.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"family\": \"{}\",", json_escape(shape.name()));
        let _ = writeln!(out, "      \"episodes\": {},", shape.episode_count());
        let _ = writeln!(out, "      \"scenarios_per_protocol\": {},", grid.size());
        out.push_str("      \"protocols\": [\n");
        for (ci, cell) in cells.iter().enumerate() {
            let r = &cell.report;
            out.push_str("        {");
            let _ = write!(
                out,
                "\"protocol\": \"{}\", \"all_commit\": {}, \"all_abort\": {}, \
                 \"blocked\": {}, \"inconsistent\": {}, \"resilient\": {}, \
                 \"atomic\": {}, \"wall_ms\": {:.3}",
                json_escape(cell.kind.name()),
                r.all_commit,
                r.all_abort,
                r.blocked_count,
                r.inconsistent_count,
                r.fully_resilient(),
                r.fully_atomic(),
                cell.wall_ms
            );
            out.push_str(if ci + 1 == cells.len() { "}\n" } else { "},\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if fi + 1 == families.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    println!("== exp_multi_partition: resilience across partition-schedule families ==");
    println!(
        "n = {N}, {} scenarios per protocol per family, {} worker thread(s)\n",
        family_grid(ScheduleShape::Simple).size(),
        sweep_threads()
    );

    let families: Vec<(ScheduleShape, SweepGrid, Vec<Cell>)> = ScheduleShape::FAMILIES
        .iter()
        .map(|&shape| {
            let (grid, cells) = measure_family(shape);
            (shape, grid, cells)
        })
        .collect();

    let mut table = Table::new(vec![
        "family",
        "protocol",
        "scenarios",
        "all-commit",
        "all-abort",
        "blocked",
        "inconsistent",
        "resilient?",
        "atomic?",
        "wall ms",
    ]);
    for (shape, grid, cells) in &families {
        for cell in cells {
            let r = &cell.report;
            table.row(vec![
                shape.name().to_string(),
                cell.kind.name().to_string(),
                grid.size().to_string(),
                r.all_commit.to_string(),
                r.all_abort.to_string(),
                r.blocked_count.to_string(),
                r.inconsistent_count.to_string(),
                if r.fully_resilient() { "YES".into() } else { "no".into() },
                if r.fully_atomic() { "YES".into() } else { "no".into() },
                format!("{:.1}", cell.wall_ms),
            ]);
        }
    }
    println!("{}", table.render());

    // Sanity anchors: Theorem 9 must hold on the simple family, and the
    // multi-way family must exhibit the Sec. 2 impossibility (it contains
    // the crafted counterexample cell).
    for (shape, _, cells) in &families {
        let hl = cells.iter().find(|c| c.kind == ProtocolKind::HuangLi3pc).expect("HL-3PC ran");
        match shape {
            ScheduleShape::Simple => assert!(
                hl.report.fully_resilient(),
                "Theorem 9 violated on the simple family: {:?}",
                hl.report
            ),
            ScheduleShape::MultiWay { .. } => assert!(
                !hl.report.fully_atomic(),
                "the multi-way family must break atomicity for HL-3PC (Sec. 2): {:?}",
                hl.report
            ),
            _ => {}
        }
    }

    write_record("BENCH_schedule.json", &render_json(&families));
}
