//! E7 — Fig. 6: "The longest possible time for a master to receive the
//! probe message after receiving an undeliverable prepare message = 5T."
//!
//! This bound justifies the master's 5T collection window. We measure the
//! gap between the master's *first* UD(prepare) and the *last* probe it
//! receives, in two ways: (1) an adversarial schedule built from the
//! paper's own worst case (UD returns almost instantly; the probing slave
//! is as slow as the delay bound allows), and (2) a randomized sweep.

use ptp_core::report::Table;
use ptp_core::{ProtocolKind, RunOptions, Scenario, Session};
use ptp_simnet::{DelayModel, ScheduleBuilder, SiteId, Trace, TraceEvent};

/// Gap (ticks) between the first UD(prepare) at the master and the last
/// probe delivered to it.
fn probe_gap(trace: &Trace) -> Option<u64> {
    let first_ud = trace.events().iter().find_map(|e| match e {
        TraceEvent::Returned { at, src, kind: "prepare", .. } if *src == SiteId(0) => {
            Some(at.ticks())
        }
        _ => None,
    })?;
    let last_probe = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Delivered { at, dst, kind: "probe", .. } if *dst == SiteId(0) => {
                Some(at.ticks())
            }
            _ => None,
        })
        .max()?;
    Some(last_probe.saturating_sub(first_ud))
}

fn main() {
    println!("== E7 / Fig. 6: master's probe-collection bound (paper: 5T) ==\n");

    // One session for the whole experiment; every run records its trace.
    let mut session = Session::new(ProtocolKind::HuangLi3pc, 3);
    let recording = RunOptions::recording();

    // Adversarial schedule, n = 3, G2 = {2}. Message send order:
    //   0: xact->1   1: xact->2   2: yes 1->0   3: yes 2->0
    //   4: prepare->1   5: prepare->2   6: ack 1->0   7: probe 1->0
    // prepare->2 is caught by the partition at 2T+1 and returned in 1 tick
    // (UD at ~2T); slave 1 receives its prepare at the full 3T, times out at
    // 6T, and its probe takes the full T: arrival 7T. Gap ≈ 5T − ε.
    let schedule = ScheduleBuilder::with_default(1000)
        .outbound(5, 1) // prepare->2 bounces quickly after the partition...
        .return_leg(5, 1) // ...and returns immediately
        .build();
    let scenario = Scenario::new(3).partition_g2(vec![SiteId(2)], 2001).delay(schedule);
    let result = session.run_with(&scenario, &recording);
    let gap = probe_gap(&result.trace).expect("adversarial run must produce UD + probe");
    println!(
        "adversarial schedule: gap = {:.3}T (paper bound 5T), verdict {:?}",
        gap as f64 / 1000.0,
        result.verdict
    );
    assert!(gap <= 5000, "gap {gap} exceeds 5T");
    assert!(result.verdict.is_resilient());

    // Randomized sweep.
    let mut max_gap = 0u64;
    let mut runs = 0usize;
    let mut table = Table::new(vec!["seed", "partition at", "gap (T)"]);
    for seed in 0..40u64 {
        for at in (1500..=3500).step_by(250) {
            let scenario = Scenario::new(3)
                .partition_g2(vec![SiteId(2)], at)
                .delay(DelayModel::Uniform { seed, min: 1, max: 1000 });
            let result = session.run_with(&scenario, &recording);
            assert!(result.verdict.is_resilient(), "seed {seed} at {at}");
            if let Some(gap) = probe_gap(&result.trace) {
                runs += 1;
                if gap > max_gap {
                    max_gap = gap;
                    table.row(vec![
                        seed.to_string(),
                        format!("{:.2}T", at as f64 / 1000.0),
                        format!("{:.3}", gap as f64 / 1000.0),
                    ]);
                }
            }
        }
    }
    println!("\nrandomized sweep: {runs} runs with a UD(prepare)+probe; new maxima:\n");
    println!("{}", table.render());
    println!(
        "measured max gap = {:.3}T  |  paper bound = 5T  |  bound holds: {}",
        max_gap as f64 / 1000.0,
        max_gap <= 5000
    );
    assert!(max_gap <= 5000);
}
