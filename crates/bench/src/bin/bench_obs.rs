//! Stage-attributed live latency: where each microsecond of a commit goes.
//!
//! Runs the threaded shard server three times with observability recording
//! on — fault-free, with a mid-run replica partition, and with the
//! lease + anti-entropy read fast path — and writes `BENCH_obs.json`, the
//! **ninth** committed perf record. Each run's `(path, fault-phase,
//! stage)` attribution table must account for ≥ 95% of the latency the
//! end-to-end histograms measured (the spans are consecutive boundary
//! deltas over one timeline, so only saturating truncation can shave
//! anything off); the partition run shows which stage absorbs the fault
//! tail that the fault-free baseline lacks.
//!
//! A fourth pair of short runs measures the Null-vs-Recording goodput
//! delta — the price of leaving the instruments on.
//!
//! `CRITERION_BUDGET_MS` scales the load window as in the sibling benches;
//! the fault-phase assertions only engage at full budget (a 300 ms smoke
//! window leaves too few completions inside the partition window to
//! measure anything).

use ptp_bench::{criterion_budget_ms, host_fields, json_escape, nproc, write_record};
use ptp_core::report::Table;
use ptp_live::{run_server, LeaseConfig, LiveOptions, LiveReport, ObsConfig};
use std::fmt::Write as _;
use std::time::Duration;

const OFFERED_OPS_PER_SEC: f64 = 250.0;

fn base_options(duration: Duration) -> LiveOptions {
    let mut opts = LiveOptions::small(OFFERED_OPS_PER_SEC, duration);
    opts.drain_timeout = Duration::from_secs(20);
    opts.obs = ObsConfig::recording();
    opts
}

/// The partition run: one replica of shard 0 secedes for the middle
/// quarter of the load window, then heals — writes to that group ride the
/// termination protocol while the episode is open.
fn partition_options(duration: Duration) -> LiveOptions {
    let topo = ptp_shard::ShardTopology::uniform(6, 3, 2);
    let replica = topo.group(0)[1];
    let mut opts = base_options(duration);
    opts.partition = Some(ptp_livenet::LivePartition::new(vec![ptp_livenet::LiveEpisode {
        from: duration / 4,
        until: Some(duration / 2),
        groups: vec![vec![replica]],
    }]));
    opts
}

/// The lease/anti-entropy run: read-heavy, with the master-lease fast path
/// armed and replicas polling for deltas — the `read-lease` path and sync
/// traffic show up in the attribution table and counters.
fn lease_options(duration: Duration) -> LiveOptions {
    let mut opts = base_options(duration);
    opts.read_fraction = 0.5;
    opts.lease = Some(LeaseConfig::new(Duration::from_millis(8), Duration::from_millis(40)));
    opts.anti_entropy = Some(Duration::from_millis(15));
    opts
}

/// Microseconds the stage table attributed vs the end-to-end histograms'
/// measured total, and the coverage ratio between them.
fn coverage(r: &LiveReport) -> (u64, u64, f64) {
    let measured = r.metrics.hist("write_latency_us").map_or(0, |h| h.sum())
        + r.metrics.hist("read_latency_us").map_or(0, |h| h.sum());
    let attributed = r.stages.attributed_us();
    let pct = if measured == 0 { 100.0 } else { attributed as f64 * 100.0 / measured as f64 };
    (attributed, measured, pct)
}

fn run_json(name: &str, r: &LiveReport) -> String {
    let (attributed, measured, pct) = coverage(r);
    let mut out = String::new();
    let _ = writeln!(out, "    {{\"run\": \"{}\",", json_escape(name));
    let _ = writeln!(out, "    \"achieved_commits_per_sec\": {:.1},", r.achieved_rate);
    let _ = writeln!(
        out,
        "    \"committed\": {}, \"aborted\": {}, \"completed_reads\": {},",
        r.committed, r.aborted, r.completed_reads
    );
    let _ = writeln!(
        out,
        "    \"write_p50_us\": {}, \"write_p99_us\": {}, \"read_p50_us\": {}, \"read_p99_us\": {},",
        r.writes.p50_us, r.writes.p99_us, r.reads.p50_us, r.reads.p99_us
    );
    let _ = writeln!(
        out,
        "    \"attributed_us\": {attributed}, \"measured_us\": {measured}, \
         \"coverage_pct\": {pct:.2},"
    );
    let _ = writeln!(out, "    \"clean_drain\": {}, \"audit_ok\": {},", r.clean_drain, r.audit.ok);
    let _ = writeln!(out, "    \"metrics\": {},", r.metrics.to_json());
    let series = r.series.as_ref().map_or_else(|| "[]".to_string(), |s| s.to_json());
    let _ = writeln!(out, "    \"series\": {series},");
    let _ = write!(out, "    \"stages\": {}}}", r.stages.to_json());
    out
}

fn print_run(name: &str, r: &LiveReport) {
    let (attributed, measured, pct) = coverage(r);
    println!(
        "{name}: {:.0} commits/s, coverage {attributed}/{measured} us = {pct:.1}%",
        r.achieved_rate
    );
    let mut table =
        Table::new(vec!["path", "phase", "stage", "count", "total us", "p50 us", "p99 us"]);
    for ((path, phase, stage), cell) in r.stages.rows() {
        table.row(vec![
            path.to_string(),
            phase.to_string(),
            stage.to_string(),
            cell.count.to_string(),
            cell.total_us.to_string(),
            cell.hist.quantile(0.5).to_string(),
            cell.hist.quantile(0.99).to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let budget_ms = criterion_budget_ms(2_000);
    let duration = Duration::from_millis(budget_ms.max(300));
    let full_budget = budget_ms >= 1_000;
    println!(
        "== bench_obs: {OFFERED_OPS_PER_SEC} ops/s offered for {duration:?}, recording sinks =="
    );
    println!("3 shards x 2 replicas over 6 sites, HL-3PC; no-fault / partition / lease runs\n");

    let runs = [
        ("no_fault", run_server(&base_options(duration))),
        ("partition", run_server(&partition_options(duration))),
        ("lease_sync", run_server(&lease_options(duration))),
    ];
    for (name, r) in &runs {
        print_run(name, r);
        assert!(r.audit.ok, "{name} audit violations: {:?}", r.audit.violations);
        assert!(r.clean_drain, "{name} run did not drain cleanly");
        let (attributed, measured, pct) = coverage(r);
        assert!(
            pct >= 95.0,
            "{name}: stage table attributes {attributed} of {measured} us ({pct:.1}%), \
             below the 95% accounting floor"
        );
    }

    let partition = &runs[1].1;
    if full_budget {
        let fault_rows: Vec<_> =
            partition.stages.rows().filter(|((_, phase, _), _)| *phase == "fault").collect();
        assert!(
            !fault_rows.is_empty(),
            "the partition run must classify some completions into the fault phase"
        );
        let ((path, _, stage), cell) =
            fault_rows.iter().max_by_key(|(_, c)| c.total_us).expect("nonempty");
        println!(
            "partition tail: {path}/{stage} absorbs {} us across {} ops during the episode",
            cell.total_us, cell.count
        );
    } else {
        println!("(smoke budget: fault-phase tail attribution not asserted)");
    }

    // The price of the instruments: same fault-free load, Null vs Recording.
    let mut null_opts = base_options(duration);
    null_opts.obs = ObsConfig::off();
    let null_run = run_server(&null_opts);
    let recording_rate = runs[0].1.achieved_rate;
    let delta_pct = (null_run.achieved_rate - recording_rate) * 100.0
        / null_run.achieved_rate.max(f64::MIN_POSITIVE);
    println!(
        "\nNull {:.1} vs Recording {recording_rate:.1} commits/s ({delta_pct:+.1}% sink cost)",
        null_run.achieved_rate
    );

    let multi_core = nproc() > 1;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("obs"));
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"multi_core_validated\": {multi_core},");
    let _ = writeln!(
        out,
        "  \"multi_core_note\": \"{}\",",
        json_escape(&format!(
            "ROADMAP open item 2: live-stack numbers recorded at nproc = {}; \
             thread-per-site parallelism {} been validated on a multi-core container",
            nproc(),
            if multi_core { "has" } else { "has NOT" }
        ))
    );
    let _ = writeln!(out, "  \"offered_ops_per_sec\": {OFFERED_OPS_PER_SEC},");
    let _ = writeln!(out, "  \"duration_ms\": {},", duration.as_millis());
    let _ = writeln!(
        out,
        "  \"null_overhead\": {{\"null_commits_per_sec\": {:.1}, \
         \"recording_commits_per_sec\": {recording_rate:.1}, \"sink_cost_pct\": {delta_pct:.1}}},",
        null_run.achieved_rate
    );
    out.push_str("  \"runs\": [\n");
    for (i, (name, r)) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&run_json(name, r));
    }
    out.push_str("\n  ]\n}\n");

    write_record("BENCH_obs.json", &out);
}
