//! E14 — the paper's motivation, measured: "the locks acquired by the
//! blocked transaction cannot be relinquished, rendering those data
//! inaccessible to other transactions" (Sec. 2).
//!
//! A three-site bank runs a transfer that is mid-commit when the network
//! partitions. For each commit protocol we measure, across partition
//! onsets: transaction outcomes, lock-hold durations, and how many locks
//! are still held when the simulation ends (data inaccessible until the
//! partition heals — potentially forever).

use ptp_core::ddb::cluster::{CommitProtocol, DbCluster};
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_core::report::Table;
use ptp_simnet::{PartitionEngine, PartitionSpec, SimTime, SiteId};
use std::collections::BTreeMap;

fn transfer(id: u32) -> TxnSpec {
    let mut writes = BTreeMap::new();
    writes.insert(1u16, vec![WriteOp { key: Key::from("alice"), value: Value::from_u64(60) }]);
    writes.insert(2u16, vec![WriteOp { key: Key::from("bob"), value: Value::from_u64(90) }]);
    TxnSpec { id: TxnId(id), writes }
}

struct Row {
    committed: usize,
    aborted: usize,
    blocked: usize,
    max_hold_t: f64,
    never_released: usize,
    violations: usize,
}

fn measure(protocol: CommitProtocol, onsets: &[u64]) -> Row {
    let mut row = Row {
        committed: 0,
        aborted: 0,
        blocked: 0,
        max_hold_t: 0.0,
        never_released: 0,
        violations: 0,
    };
    for &at in onsets {
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(at),
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(2)],
        )]);
        let run = DbCluster::new(3, protocol)
            .seed(1, Key::from("alice"), Value::from_u64(100))
            .seed(2, Key::from("bob"), Value::from_u64(50))
            .submit(0, transfer(1))
            .partition(partition)
            .run();

        row.violations += run.metrics.atomicity_violations().len();
        for per_site in run.metrics.decisions.values() {
            for (decision, _) in per_site.values() {
                match decision {
                    ptp_core::model::Decision::Commit => row.committed += 1,
                    ptp_core::model::Decision::Abort => row.aborted += 1,
                }
            }
        }
        row.blocked += run.blocked.iter().map(Vec::len).sum::<usize>();
        // Horizon = 200T (the NetConfig default).
        for (_, _, ticks, still) in run.metrics.hold_durations(SimTime(200_000)) {
            row.max_hold_t = row.max_hold_t.max(ticks as f64 / 1000.0);
            if still {
                row.never_released += 1;
            }
        }
    }
    row
}

fn main() {
    println!("== E14: blocking renders data inaccessible (the paper's motivation) ==\n");
    println!("One in-flight transfer; partition {{0,1}} | {{2}} at each onset in");
    println!("0.25T steps through the whole commit window; horizon 200T.\n");

    let onsets: Vec<u64> = (0..=24).map(|i| i * 250).collect();
    let mut table = Table::new(vec![
        "protocol",
        "site-decisions commit",
        "abort",
        "blocked sites",
        "max lock hold",
        "locks never released",
        "atomicity violations",
    ]);

    for protocol in
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority]
    {
        let row = measure(protocol, &onsets);
        table.row(vec![
            protocol.name().to_string(),
            row.committed.to_string(),
            row.aborted.to_string(),
            row.blocked.to_string(),
            format!("{:.2}T", row.max_hold_t),
            row.never_released.to_string(),
            row.violations.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("2PC and the quorum protocol leave partitioned sites blocked with locks");
    println!("held to the horizon (inaccessible data); the Huang–Li termination");
    println!("protocol terminates every site in bounded time and releases everything —");
    println!("at zero cost to atomicity.");
}
