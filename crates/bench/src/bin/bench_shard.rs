//! Sharded-store throughput baseline.
//!
//! The sibling of `bench_ddb`, one structural layer up: how fast the
//! sharded cluster driver pushes a 200-transaction mixed workload (three
//! quarters single-shard, one quarter cross-shard) through each
//! [`CommitProtocol`] over a 3-shard × 2-replica topology on six sites.
//! Writes `BENCH_shard.json` — the **fourth** committed perf record next to
//! `BENCH_sweep.json`, `BENCH_ddb.json` and `BENCH_schedule.json` — so
//! future performance work on the sharded layer has a recorded trajectory
//! to beat. CI regenerates it in the bench smoke step.
//!
//! `CRITERION_BUDGET_MS` caps the per-measurement sampling time, as in the
//! sibling benches.

use ptp_bench::{criterion_budget_ms, host_fields, json_escape, median_of, write_record};
use ptp_core::ddb::cluster::CommitProtocol;
use ptp_core::ddb::value::{TxnId, Value, WriteOp};
use ptp_core::report::Table;
use ptp_shard::{ShardCluster, ShardRun, ShardTopology, ShardTxnSpec};
use std::fmt::Write as _;
use std::time::Instant;

const SITES: usize = 6;
const SHARDS: usize = 3;
const REPLICATION: usize = 2;
const TXNS: u32 = 200;
const SUBMIT_SPACING: u64 = 400;
const REPEATS: usize = 4;
const MAX_ROUNDS: usize = 41;

fn topology() -> ShardTopology {
    ShardTopology::uniform(SITES, SHARDS, REPLICATION)
}

/// The fixed workload: every 4th transaction spans two shards (the
/// cross-shard share), the rest stay inside one; keys cycle through an
/// 8-key pool per shard so a realistic fraction contend for locks.
fn workload(topo: &ShardTopology) -> Vec<(u64, ShardTxnSpec)> {
    let pools = ptp_bench::shard_key_pool(topo, 8);
    (0..TXNS)
        .map(|i| {
            let shard = i as usize % SHARDS;
            let key = pools[shard][(i as usize * 7) % 8].clone();
            let mut writes = vec![WriteOp { key, value: Value::from_u64(i as u64) }];
            if i % 4 == 0 {
                let other = (shard + 1) % SHARDS;
                let key = pools[other][(i as usize * 5) % 8].clone();
                writes.push(WriteOp { key, value: Value::from_u64(i as u64) });
            }
            (i as u64 * SUBMIT_SPACING, ShardTxnSpec { id: TxnId(i + 1), writes })
        })
        .collect()
}

fn build(protocol: CommitProtocol) -> ShardCluster {
    let topo = topology();
    let mut cluster = ShardCluster::new(topo.clone(), protocol);
    for (at, spec) in workload(&topo) {
        cluster = cluster.submit(at, spec);
    }
    cluster
}

/// One timed observation: `REPEATS` consecutive executions under one clock
/// read (less timer/scheduler jitter than timing runs individually).
fn run_block(protocol: CommitProtocol) -> (f64, ShardRun) {
    let clusters: Vec<ShardCluster> = (0..REPEATS).map(|_| build(protocol)).collect();
    let mut last = None;
    let round = Instant::now();
    for cluster in clusters {
        last = Some(cluster.run());
    }
    let wall = round.elapsed().as_secs_f64() * 1000.0 / REPEATS as f64;
    let run = last.expect("at least one repeat");
    assert!(run.metrics.atomicity_violations().is_empty(), "{}", protocol.name());
    assert_eq!(run.metrics.decisions.len(), TXNS as usize, "every txn must terminate");
    assert!(run.cross_shard.submitted > 0, "the workload must exercise cross-shard commits");
    (wall, run)
}

fn sample(protocol: CommitProtocol, budget_ms: u64) -> (f64, ShardRun) {
    let _ = run_block(protocol); // warmup
    let mut walls = Vec::new();
    let started = Instant::now();
    let mut last = None;
    while walls.is_empty()
        || (walls.len() < MAX_ROUNDS && started.elapsed().as_millis() < budget_ms as u128)
    {
        let (wall, run) = run_block(protocol);
        walls.push(wall);
        last = Some(run);
    }
    (median_of(&mut walls), last.expect("at least one round"))
}

struct Measurement {
    protocol: CommitProtocol,
    wall_ms: f64,
    run: ShardRun,
}

impl Measurement {
    fn txns_per_sec(&self) -> f64 {
        TXNS as f64 * 1000.0 / self.wall_ms.max(f64::MIN_POSITIVE)
    }

    fn min_availability(&self) -> f64 {
        self.run.shards.iter().map(|s| s.availability()).fold(1.0, f64::min)
    }
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("shard_txn_throughput"));
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"sites\": {SITES},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"replication\": {REPLICATION},");
    let _ = writeln!(out, "  \"txns\": {TXNS},");
    out.push_str("  \"protocols\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let cross = &m.run.cross_shard;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"protocol\": \"{}\", \"wall_ms\": {:.3}, \"txns_per_sec\": {:.1}, \
             \"cross_submitted\": {}, \"cross_committed\": {}, \"cross_aborted\": {}, \
             \"cross_blocked\": {}, \"cross_abort_rate\": {:.4}, \
             \"min_shard_availability\": {:.4}, \
             \"participants_constructed\": {}, \"participants_reused\": {}",
            json_escape(m.protocol.name()),
            m.wall_ms,
            m.txns_per_sec(),
            cross.submitted,
            cross.committed,
            cross.aborted,
            cross.blocked,
            cross.abort_rate(),
            m.min_availability(),
            m.run.participants_constructed,
            m.run.participants_reused,
        );
        out.push_str(if i + 1 == measurements.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let budget_ms = criterion_budget_ms(2_000);
    println!(
        "== bench_shard: {TXNS}-txn mixed workload, {SHARDS} shards x {REPLICATION} replicas \
         over {SITES} sites =="
    );
    println!("budget {budget_ms} ms per measurement\n");

    let protocols =
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority];
    let measurements: Vec<Measurement> = protocols
        .iter()
        .map(|&protocol| {
            let (wall_ms, run) = sample(protocol, budget_ms);
            Measurement { protocol, wall_ms, run }
        })
        .collect();

    let mut table = Table::new(vec![
        "protocol",
        "wall ms",
        "txns/s",
        "x-shard",
        "x-committed",
        "x-abort rate",
        "min avail",
        "constructed",
        "reused",
    ]);
    for m in &measurements {
        table.row(vec![
            m.protocol.name().to_string(),
            format!("{:.1}", m.wall_ms),
            format!("{:.0}", m.txns_per_sec()),
            m.run.cross_shard.submitted.to_string(),
            m.run.cross_shard.committed.to_string(),
            format!("{:.2}", m.run.cross_shard.abort_rate()),
            format!("{:.3}", m.min_availability()),
            m.run.participants_constructed.to_string(),
            m.run.participants_reused.to_string(),
        ]);
    }
    println!("{}", table.render());

    write_record("BENCH_shard.json", &render_json(&measurements));
}
