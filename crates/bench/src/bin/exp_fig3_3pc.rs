//! E3 — Fig. 3: the three-phase commit protocol and the failure of its
//! naive Rule (a)/(b) augmentation in the multisite case.
//!
//! Verifies the paper's Sec. 3 concurrency-set facts (`abort ∈ C(w3)`,
//! `commit ∈ C(p2)`, `p2 ∈ C(w3)`), derives the naive augmentation
//! (timeout in `w` → abort, timeout in `p` → commit), and exhibits the
//! inconsistent execution the paper describes.

use ptp_bench::dense_grid;
use ptp_core::model::concurrency::ConcurrencySets;
use ptp_core::model::dot::to_dot;
use ptp_core::model::protocols::three_phase;
use ptp_core::model::rules::derive_rules_augmentation;
use ptp_core::model::{GlobalGraph, Role};
use ptp_core::{sweep, ProtocolKind};

fn main() {
    let spec = three_phase(3);
    println!("== E3 / Fig. 3: three-phase commit ==\n");

    let graph = GlobalGraph::explore(&spec);
    let csets = ConcurrencySets::compute(&spec, &graph);
    let w3 = spec.state_ref(2, "w");
    let p2 = spec.state_ref(1, "p");
    println!("Sec. 3 facts, computed over {} reachable global states:", graph.states.len());
    println!("  abort ∈ C(w3): {}", csets.contains_abort(&spec, w3));
    println!("  commit ∈ C(p2): {}", csets.contains_commit(&spec, p2));
    println!("  p2 ∈ C(w3): {}\n", csets.of(w3).contains(&p2));
    assert!(csets.contains_abort(&spec, w3));
    assert!(csets.contains_commit(&spec, p2));
    assert!(csets.of(w3).contains(&p2));

    let derivation = derive_rules_augmentation(&spec);
    let aug = &derivation.augmentation;
    println!("naive Rule (a)/(b) augmentation at n = 3:");
    println!(
        "  timeout slave:w -> {:?} (paper: abort)",
        aug.timeout_for(Role::Slave, "w").unwrap()
    );
    println!(
        "  timeout slave:p -> {:?} (paper: commit)",
        aug.timeout_for(Role::Slave, "p").unwrap()
    );
    println!("  timeout master:p1 -> {:?}", aug.timeout_for(Role::Master, "p1").unwrap());
    println!();

    let report = sweep(ProtocolKind::Naive3pc, &dense_grid(3));
    println!(
        "sweep: {} scenarios, {} atomicity violations (first: G2={:?} at {:.2}T)",
        report.total,
        report.inconsistent_count,
        report.inconsistent[0].g2,
        report.inconsistent[0].at as f64 / 1000.0,
    );
    assert!(report.inconsistent_count > 0);
    println!("\npaper: \"site3 will timeout and abort while site2 will timeout and commit\" —");
    println!("timeout and UD transitions alone cannot fix 3PC (motivating Lemma 3).");

    println!("\n--- DOT (Fig. 3) ---\n{}", to_dot(&spec, None));
}
