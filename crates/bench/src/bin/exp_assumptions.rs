//! E13 — Sec. 7: why the paper assumes network partitioning and site
//! failures never occur concurrently.
//!
//! The conclusion gives two counterexamples; both are reproduced here with
//! crash injection:
//!
//! 1. "if the only slave in G2 that receives a prepare message fails before
//!    it sends out commit messages, then all slaves in G2 will abort while
//!    all participating sites in G1 will commit."
//! 2. "if none of the slaves in G2 receives a prepare message and one of
//!    the slaves in G1 fails after receiving a prepare message but before
//!    sending a probe message, then all slaves in G2 will abort while all
//!    participating sites in G1 will commit."

use ptp_core::{run_scenario_opts, ProtocolKind, RunOptions, Scenario};
use ptp_model::Decision;
use ptp_simnet::{FailureSpec, ScheduleBuilder, SimTime, SiteId};

fn print_outcomes(label: &str, result: &ptp_core::ScenarioResult) {
    println!("{label}:");
    for (i, o) in result.outcomes.iter().enumerate() {
        match o.decision {
            Some(Decision::Commit) => println!("  site {i}: commit"),
            Some(Decision::Abort) => println!("  site {i}: ABORT"),
            None => println!("  site {i}: blocked/crashed"),
        }
    }
    println!("  verdict: {:?}\n", result.verdict);
}

fn main() {
    println!("== E13 / Sec. 7: the assumptions are necessary ==\n");

    // Counterexample 1 — n = 4, G2 = {2, 3}. The schedule delivers slave
    // 2's prepare just before the cut (it is "the only slave in G2 that
    // receives a prepare"); slave 3's prepare bounces. Slave 2 then crashes
    // before its UD(ack) would have triggered the commit broadcast.
    //
    // Send order: 0-2: xact->1,2,3; 3-5: yes; 6-8: prepare->1,2,3; ...
    let schedule = ScheduleBuilder::with_default(1000)
        .outbound(7, 400) // prepare->2 arrives at 2.4T, before the 2.5T cut
        .build();
    let scenario = Scenario::new(4)
        .partition_g2(vec![SiteId(2), SiteId(3)], 2500)
        .delay(schedule)
        .fail(FailureSpec::crash(SiteId(2), SimTime(3000)));
    let result = run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &RunOptions::new());
    print_outcomes(
        "counterexample 1 (lone prepared G2 slave crashes before broadcasting)",
        &result,
    );
    // G1 (master + slave 1) commits; slave 3 aborts after its 6T wait.
    assert_eq!(result.outcomes[0].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[1].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[3].decision, Some(Decision::Abort));
    println!("  -> the crash had the effect of a lost commit broadcast: G1 committed,");
    println!("     G2's surviving slave aborted. Exactly the paper's point.\n");

    // Counterexample 2 — n = 4, G2 = {3}; no G2 slave gets a prepare.
    // Slave 1 (in G1) receives its prepare at 3T and crashes at 3.5T,
    // before its probe (due at ~6T). The master's rule sees
    // slaves − UD = {1, 2} but PB = {2}: the sets differ, so it commits —
    // wrongly concluding a prepare crossed the boundary.
    let scenario = Scenario::new(4)
        .partition_g2(vec![SiteId(3)], 2500)
        .fail(FailureSpec::crash(SiteId(1), SimTime(3500)));
    let result = run_scenario_opts(ProtocolKind::HuangLi3pc, &scenario, &RunOptions::new());
    print_outcomes(
        "counterexample 2 (G1 slave crashes between prepare receipt and probe)",
        &result,
    );
    assert_eq!(result.outcomes[0].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[2].decision, Some(Decision::Commit));
    assert_eq!(result.outcomes[3].decision, Some(Decision::Abort));
    println!("  -> the missing probe is indistinguishable from \"his prepare crossed B\",");
    println!("     so the master commits while the cut-off slave aborts.");
    println!("\nBoth crashes act exactly like lost messages — and no protocol survives");
    println!("message loss (Sec. 2). Hence the paper's assumption 3.");
}
