//! Per-phase / per-kind / per-actor attribution of simulator work.
//!
//! `BENCH_schedule.json` says *how long* each protocol takes per schedule
//! family; this binary says *where that time goes*. It sweeps every
//! protocol over the same per-family grid as `exp_multi_partition` with the
//! [`ProfSink`](ptp_simnet::ProfSink) recording, attributing each
//! dispatched event (delivery, undeliverable return, timer expiry, start
//! callback) to the acting site, the message kind or timer tag, and the
//! protocol phase the actor was in — with wall-clock nanoseconds per
//! handler.
//!
//! This is the measurement that justified the Quorum hot-path rewrite (see
//! `crates/protocols/src/quorum.rs`): the naive rendition spent the bulk of
//! its samples on `state-req`/`state-rep`/`quorum-collect` rounds issued by
//! blocked minorities.
//!
//! Profiled sweeps are serial on purpose — one actor set, stable
//! attribution, no cross-thread merge noise. Writes `BENCH_profile.json`;
//! CI regenerates it in the bench smoke step.

use ptp_bench::{host_fields, json_escape, write_record};
use ptp_core::{sweep_profiled, ProtocolKind, ScheduleShape, SweepGrid};
use ptp_simnet::{DelayModel, Profile, ScheduleBuilder};
use std::fmt::Write as _;
use std::time::Instant;

const N: usize = 4;

/// The `exp_multi_partition` protocol set: the paper's variants, the
/// blocking baseline and the quorum reference.
const KINDS: [ProtocolKind; 5] = [
    ProtocolKind::Plain2pc,
    ProtocolKind::HuangLi3pc,
    ProtocolKind::HuangLi3pcStatic,
    ProtocolKind::HuangLi4pc,
    ProtocolKind::QuorumMajority,
];

/// One family's grid, identical to `exp_multi_partition`'s.
fn family_grid(shape: ScheduleShape) -> SweepGrid {
    let mut grid = SweepGrid::standard(N).with_shapes(vec![shape]);
    grid.heals = vec![None, Some(3000)];
    grid.delays = vec![
        DelayModel::Fixed(1000),
        DelayModel::Uniform { seed: 11, min: 1, max: 1000 },
        ScheduleBuilder::with_default(1000).outbound(7, 400).build(),
    ];
    grid
}

struct Row {
    kind: ProtocolKind,
    scenarios: usize,
    wall_ms: f64,
    profile: Profile,
}

fn rollup_json(out: &mut String, label: &str, rows: &[(&'static str, ptp_simnet::ProfEntry)]) {
    let _ = write!(out, "        \"{label}\": [");
    for (i, (name, e)) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"key\": \"{}\", \"count\": {}, \"nanos\": {}}}",
            if i == 0 { "" } else { ", " },
            json_escape(name),
            e.count,
            e.nanos
        );
    }
    out.push_str("],\n");
}

fn render_json(families: &[(ScheduleShape, Vec<Row>)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"profile\",");
    let _ = writeln!(out, "  \"n\": {N},");
    let _ = writeln!(out, "  \"threads\": 1,");
    let _ = writeln!(out, "  {},", host_fields());
    out.push_str("  \"families\": [\n");
    for (fi, (shape, rows)) in families.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"family\": \"{}\",", json_escape(shape.name()));
        out.push_str("      \"protocols\": [\n");
        for (ri, row) in rows.iter().enumerate() {
            let total = row.profile.total();
            let _ = writeln!(out, "      {{");
            let _ = writeln!(
                out,
                "        \"protocol\": \"{}\", \"scenarios\": {}, \"wall_ms\": {:.3},",
                json_escape(row.kind.name()),
                row.scenarios,
                row.wall_ms
            );
            let _ = writeln!(
                out,
                "        \"events\": {}, \"handler_nanos\": {},",
                total.count, total.nanos
            );
            rollup_json(&mut out, "by_event", &row.profile.by_event());
            rollup_json(&mut out, "by_kind", &row.profile.by_kind());
            rollup_json(&mut out, "by_phase", &row.profile.by_phase());
            let _ = write!(out, "        \"by_site\": [");
            for (i, (site, e)) in row.profile.by_site().iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"site\": {}, \"count\": {}, \"nanos\": {}}}",
                    if i == 0 { "" } else { ", " },
                    site.0,
                    e.count,
                    e.nanos
                );
            }
            out.push_str("]\n");
            out.push_str(if ri + 1 == rows.len() { "      }\n" } else { "      },\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if fi + 1 == families.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    println!("== bench_profile: event attribution across schedule families ==");
    println!("n = {N}, serial profiled sweeps (profiling forces one worker)\n");

    let families: Vec<(ScheduleShape, Vec<Row>)> = ScheduleShape::FAMILIES
        .iter()
        .map(|&shape| {
            let grid = family_grid(shape);
            let rows = KINDS
                .iter()
                .map(|&kind| {
                    let started = Instant::now();
                    let (report, profile) = sweep_profiled(kind, &grid);
                    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
                    assert_eq!(report.total, grid.size());
                    assert!(!profile.is_empty(), "profiled sweep recorded nothing");
                    Row { kind, scenarios: report.total, wall_ms, profile }
                })
                .collect();
            (shape, rows)
        })
        .collect();

    for (shape, rows) in &families {
        println!("family {}:", shape.name());
        for row in rows {
            let total = row.profile.total();
            let top_kind = row
                .profile
                .by_kind()
                .first()
                .map(|(k, e)| format!("{k} ({} events)", e.count))
                .unwrap_or_default();
            println!(
                "  {:<16} {:>9} events  {:>8.3} ms handlers  hottest kind: {}",
                row.kind.name(),
                total.count,
                total.nanos as f64 / 1e6,
                top_kind
            );
        }
    }

    write_record("BENCH_profile.json", &render_json(&families));
}
