//! E2 — Fig. 2: the extended two-phase commit protocol.
//!
//! Two parts:
//! 1. At `n = 2`, the Rule (a)/(b) augmentation (derived mechanically from
//!    the concurrency sets, exactly as Skeen & Stonebraker prescribe) makes
//!    the protocol resilient: an exhaustive two-site sweep finds no
//!    violation and no blocking.
//! 2. At `n = 3`, the same protocol breaks — the paper's Sec. 3
//!    observation. The sweep locates the counterexamples; the first one is
//!    replayed and its decisive events printed.

use ptp_bench::{dense_grid, print_scorecard, standard_delays};
use ptp_core::model::dot::to_dot;
use ptp_core::model::protocols::extended_two_phase;
use ptp_core::model::rules::derive_rules_augmentation;
use ptp_core::{
    run_scenario_opts, sweep, PartitionShape, ProtocolKind, RunOptions, Scenario, SweepGrid,
};
use ptp_protocols::api::Vote;
use ptp_protocols::Verdict;

fn main() {
    println!("== E2 / Fig. 2: extended two-phase commit ==\n");

    let derivation = derive_rules_augmentation(&extended_two_phase(2));
    println!("Rule (a)/(b) augmentation derived at n = 2:");
    for ((role, state), d) in &derivation.augmentation.timeout {
        println!("  timeout {role:?}:{state:<3} -> {d}");
    }
    for ((role, state), d) in &derivation.augmentation.ud {
        println!("  UD      {role:?}:{state:<3} -> {d}");
    }
    println!();

    // Part 1: two sites — resilient.
    let mut grid2 = SweepGrid::standard(2);
    grid2.partition_times = (0..=80).map(|i| i * 100).collect();
    grid2.delays = standard_delays(1000);
    print_scorecard(
        "n = 2: the rules are sufficient (Skeen–Stonebraker)",
        &[ProtocolKind::Extended2pc],
        &grid2,
    );

    // Part 2: three sites — the Sec. 3 counterexample.
    let grid3 = dense_grid(3);
    let report = sweep(ProtocolKind::Extended2pc, &grid3);
    println!(
        "n = 3: {} scenarios, {} atomicity violations, {} blocked",
        report.total, report.inconsistent_count, report.blocked_count
    );
    assert!(report.inconsistent_count > 0, "Sec. 3 counterexample must appear");

    let witness = &report.inconsistent[0];
    println!(
        "\nfirst counterexample: G2 = {:?}, partition at {:.2}T, delay model #{}",
        witness.g2,
        witness.at as f64 / 1000.0,
        witness.delay_index
    );
    let mut scenario =
        Scenario::new(3).votes(vec![Vote::Yes; 2]).delay(grid3.delays[witness.delay_index].clone());
    scenario.partition =
        PartitionShape::Simple { g2: witness.g2.clone(), at: witness.at, heal_at: None };
    let result = run_scenario_opts(ProtocolKind::Extended2pc, &scenario, &RunOptions::new());
    match &result.verdict {
        Verdict::Inconsistent { committed, aborted } => {
            println!("replayed: committed = {committed:?}, aborted = {aborted:?}");
            println!("(the paper's narrative: one slave receives its commit, the cut slave");
            println!(" times out in w and aborts — \"site2 will receive commit2 and commit");
            println!(" while site3 will make a timeout transition and abort\")");
        }
        other => println!("unexpected verdict on replay: {other:?}"),
    }

    println!(
        "\n--- DOT (Fig. 2, augmented) ---\n{}",
        to_dot(&extended_two_phase(3), Some(&derivation.augmentation))
    );
}
