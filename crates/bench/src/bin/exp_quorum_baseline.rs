//! E15 — the quorum-commit baseline (the paper's reference \[5\], Skeen
//! 1982) against the Huang–Li termination protocol.
//!
//! Quorum termination preserves atomicity through intersecting quorums but
//! can only terminate the side of the partition that holds a quorum; the
//! paper's protocol terminates *both* sides (without tolerating master
//! failure, which quorum protocols handle — that is the actual trade).
//! This experiment sweeps every boundary of a five-site cluster and counts,
//! per side, who terminates.

use ptp_core::report::Table;
use ptp_core::{all_simple_boundaries, ProtocolKind, Scenario, SessionPool};
use ptp_simnet::SiteId;

fn main() {
    println!("== E15: quorum commit vs the termination protocol (n = 5) ==\n");
    println!("Partition at 2.5T (prepares in flight). Majority quorums Vc = Va = 3.\n");

    let mut table = Table::new(vec![
        "G2 (cut from master)",
        "protocol",
        "G1 terminated",
        "G2 terminated",
        "verdict",
    ]);

    // One pooled cluster per protocol; every boundary runs through it.
    let mut pool = SessionPool::new();
    for g2 in all_simple_boundaries(5) {
        for kind in [ProtocolKind::QuorumMajority, ProtocolKind::HuangLi3pc] {
            let scenario = Scenario::new(5).partition_g2(g2.clone(), 2500);
            let result = pool.session(kind, 5).run(&scenario);
            let g1_terminated = result
                .outcomes
                .iter()
                .enumerate()
                .filter(|(i, _)| !g2.contains(&SiteId(*i as u16)))
                .all(|(_, o)| o.decision.is_some());
            let g2_terminated = g2.iter().all(|s| result.outcomes[s.index()].decision.is_some());
            table.row(vec![
                format!("{:?}", g2.iter().map(|s| s.0).collect::<Vec<_>>()),
                kind.name().to_string(),
                if g1_terminated { "yes" } else { "NO" }.to_string(),
                if g2_terminated { "yes" } else { "NO" }.to_string(),
                format!("{:?}", result.verdict),
            ]);
            assert!(result.verdict.is_atomic(), "atomicity must hold for both");
            if kind == ProtocolKind::HuangLi3pc {
                assert!(g1_terminated && g2_terminated, "Theorem 9");
            }
        }
    }
    println!("{}", table.render());
    println!("The quorum protocol strands every minority fragment (and both fragments");
    println!("when neither holds a quorum); the termination protocol terminates all");
    println!("sites in every split — the paper's headline advantage. Its price is the");
    println!("set of Sec. 5.1 assumptions: a reliable master and no concurrent site");
    println!("failures, which quorum commit does not need.");
}
