//! E6 — Fig. 5: adequacy of the commit-protocol timeout intervals
//! (2T at the master, 3T at slaves).
//!
//! Two checks:
//! 1. With the paper's constants, no failure-free execution ever fires a
//!    protocol timeout — even on the slowest admissible network (every
//!    message taking exactly `T`), where the triggering messages arrive at
//!    the very edge of the window.
//! 2. With undersized timers the protocol *stays safe* (it aborts
//!    consistently) but live transactions are spuriously killed — the cost
//!    the paper's 2T/3T constants are chosen to avoid.

use ptp_core::report::Table;
use ptp_protocols::api::Vote;
use ptp_protocols::clusters::huang_li_3pc_cluster_with_timing_any;
use ptp_protocols::runner::run_protocol;
use ptp_protocols::termination::{ProtocolTiming, TerminationVariant};
use ptp_protocols::Verdict;
use ptp_simnet::{DelayModel, NetConfig, PartitionEngine, TraceEvent};

fn run_once(timing: ProtocolTiming, delay: &DelayModel) -> (Verdict, usize) {
    let parts = huang_li_3pc_cluster_with_timing_any(
        4,
        &[Vote::Yes; 3],
        TerminationVariant::Transient,
        timing,
    );
    let run = run_protocol(
        parts,
        NetConfig::default(),
        PartitionEngine::always_connected(),
        delay,
        vec![],
    );
    let timeouts = run
        .trace
        .events()
        .iter()
        .filter(|e| {
            matches!(e, TraceEvent::Note { label, .. }
                if label.starts_with("master-timeout") || label.starts_with("slave-timeout"))
        })
        .count();
    (Verdict::judge(&run.outcomes), timeouts)
}

fn main() {
    println!("== E6 / Fig. 5: timeout-interval adequacy (master 2T, slave 3T) ==\n");

    let delays: Vec<(&str, DelayModel)> = vec![
        ("all messages exactly T (worst case)", DelayModel::Fixed(1000)),
        ("all messages T/2", DelayModel::Fixed(500)),
        ("near-instant", DelayModel::Fixed(1)),
        ("uniform (0,T], seed 1", DelayModel::Uniform { seed: 1, min: 1, max: 1000 }),
        ("uniform (0,T], seed 2", DelayModel::Uniform { seed: 2, min: 1, max: 1000 }),
        ("uniform [T/2,T], seed 3", DelayModel::Uniform { seed: 3, min: 500, max: 1000 }),
    ];

    let mut table = Table::new(vec!["network", "verdict", "spurious timeouts"]);
    for (name, delay) in &delays {
        let (verdict, timeouts) = run_once(ProtocolTiming::default(), delay);
        table.row(vec![name.to_string(), format!("{verdict:?}"), timeouts.to_string()]);
        assert_eq!(timeouts, 0, "paper constants must never fire failure-free");
        assert_eq!(verdict, Verdict::AllCommit);
    }
    println!("paper constants (2T / 3T): failure-free, n = 4\n{}", table.render());

    println!("undersized timers on the all-T network:\n");
    let mut table = Table::new(vec!["timing", "verdict", "spurious timeouts"]);
    for (name, timing) in [
        ("master 1T (< 2T)", ProtocolTiming { master_proto: 1, ..Default::default() }),
        ("slave 2T", ProtocolTiming { slave_proto: 2, ..Default::default() }),
        ("slave 1T (< 2T)", ProtocolTiming { slave_proto: 1, ..Default::default() }),
        ("paper 2T/3T", ProtocolTiming::default()),
    ] {
        let (verdict, timeouts) = run_once(timing, &DelayModel::Fixed(1000));
        table.row(vec![name.to_string(), format!("{verdict:?}"), timeouts.to_string()]);
    }
    println!("{}", table.render());
    println!("Undersized timers remain atomic but kill live transactions — the paper's");
    println!("values are the smallest that cover a full round trip. (Note on arming:");
    println!("the paper measures from phase start at the master, this implementation");
    println!("arms on local state entry — so a slave needs 2T from entering w, which");
    println!("is exactly the paper's 3T minus the xact leg it has already absorbed.)");
}
