//! Database-workload throughput baseline.
//!
//! The sibling of `bench_sweep`, one layer down: how fast the ddb cluster
//! driver pushes a 200-transaction workload through each [`CommitProtocol`]
//! with the per-site participant free-lists doing the recycling. Writes
//! `BENCH_ddb.json` next to the working directory so future performance
//! work on the database layer has a recorded trajectory to beat.
//!
//! Modes:
//!
//! * default — the production path: pooled participants.
//! * `--compare` — additionally times the construct-per-transaction
//!   baseline (the pre-pool behaviour), yielding the speedup column.
//!
//! `CRITERION_BUDGET_MS` caps the per-measurement sampling time (as in the
//! criterion shim), so the CI smoke run finishes in milliseconds while a
//! real baseline run samples enough rounds for a stable median.

use ptp_bench::{criterion_budget_ms, host_fields, json_escape, median_of, write_record};
use ptp_core::ddb::cluster::{CommitProtocol, DbCluster, DbRun};
use ptp_core::ddb::site::TxnSpec;
use ptp_core::ddb::value::{Key, TxnId, Value, WriteOp};
use ptp_core::report::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

const SITES: usize = 4;
const TXNS: u32 = 200;
const SUBMIT_SPACING: u64 = 400;
const REPEATS: usize = 4;
const MAX_ROUNDS: usize = 41;

/// The fixed 200-transaction workload: every transaction writes one key on
/// each slave, keys drawn from an 8-key pool per site so a realistic share
/// of transactions contend for locks.
fn workload() -> Vec<(u64, TxnSpec)> {
    (0..TXNS)
        .map(|i| {
            let mut writes = BTreeMap::new();
            for site in 1..SITES as u16 {
                writes.insert(
                    site,
                    vec![WriteOp {
                        key: Key::from(format!("k{}", (i as u64 * 7 + site as u64) % 8)),
                        value: Value::from_u64(i as u64),
                    }],
                );
            }
            (i as u64 * SUBMIT_SPACING, TxnSpec { id: TxnId(i + 1), writes })
        })
        .collect()
}

fn build(protocol: CommitProtocol, pooled: bool) -> DbCluster {
    let mut cluster = DbCluster::new(SITES, protocol);
    if !pooled {
        cluster = cluster.construct_per_txn();
    }
    for (at, spec) in workload() {
        cluster = cluster.submit(at, spec);
    }
    cluster
}

/// One timed observation: `REPEATS` consecutive executions of the workload
/// under one clock read, so a single run's wall time comes out with far
/// less timer/scheduler jitter than timing runs individually.
fn run_block(protocol: CommitProtocol, pooled: bool) -> (f64, DbRun) {
    let clusters: Vec<DbCluster> = (0..REPEATS).map(|_| build(protocol, pooled)).collect();
    let mut last = None;
    let round = Instant::now();
    for cluster in clusters {
        last = Some(cluster.run());
    }
    let wall = round.elapsed().as_secs_f64() * 1000.0 / REPEATS as f64;
    let run = last.expect("at least one repeat");
    assert!(run.metrics.atomicity_violations().is_empty(), "{}", protocol.name());
    assert_eq!(run.metrics.decisions.len(), TXNS as usize, "every txn must terminate");
    (wall, run)
}

/// Samples pooled (and, in compare mode, per-txn) wall times within the
/// budget.
///
/// The comparison is *paired*: each round times both modes back to back
/// (order alternating between rounds), and the reported speedup is the
/// median of the per-round ratios. Adjacent observations see the same
/// container load, so the pairing cancels the slow CPU-contention drift
/// that dwarfs the few-percent construction cost on a shared box.
fn sample(
    protocol: CommitProtocol,
    compare: bool,
    budget_ms: u64,
) -> (f64, Option<(f64, f64)>, DbRun) {
    let _ = run_block(protocol, true); // warmup
    let mut pooled_walls = Vec::new();
    let mut per_txn_walls = Vec::new();
    let mut ratios = Vec::new();
    let started = Instant::now();
    let mut last = None;
    while pooled_walls.is_empty()
        || (pooled_walls.len() < MAX_ROUNDS && started.elapsed().as_millis() < budget_ms as u128)
    {
        let pooled_first = pooled_walls.len() % 2 == 0;
        if compare && !pooled_first {
            per_txn_walls.push(run_block(protocol, false).0);
        }
        let (wall, run) = run_block(protocol, true);
        pooled_walls.push(wall);
        last = Some(run);
        if compare {
            if pooled_first {
                per_txn_walls.push(run_block(protocol, false).0);
            }
            ratios.push(per_txn_walls.last().unwrap() / wall.max(f64::MIN_POSITIVE));
        }
    }
    let per_txn = compare.then(|| (median_of(&mut per_txn_walls), median_of(&mut ratios)));
    (median_of(&mut pooled_walls), per_txn, last.expect("at least one round"))
}

struct Measurement {
    protocol: CommitProtocol,
    pooled_ms: f64,
    constructed: usize,
    reused: usize,
    /// Compare mode: `(median per-txn wall ms, paired median speedup)`.
    per_txn: Option<(f64, f64)>,
}

impl Measurement {
    fn txns_per_sec(&self) -> f64 {
        TXNS as f64 * 1000.0 / self.pooled_ms.max(f64::MIN_POSITIVE)
    }
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("ddb_txn_throughput"));
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"sites\": {SITES},");
    let _ = writeln!(out, "  \"txns\": {TXNS},");
    out.push_str("  \"protocols\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"protocol\": \"{}\", \"wall_ms\": {:.3}, \"txns_per_sec\": {:.1}, \
             \"participants_constructed\": {}, \"participants_reused\": {}",
            json_escape(m.protocol.name()),
            m.pooled_ms,
            m.txns_per_sec(),
            m.constructed,
            m.reused
        );
        if let Some((per_txn_ms, speedup)) = m.per_txn {
            let _ = write!(
                out,
                ", \"per_txn_wall_ms\": {per_txn_ms:.3}, \"speedup_vs_per_txn\": {speedup:.3}"
            );
        }
        out.push_str(if i + 1 == measurements.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let compare = std::env::args().any(|a| a == "--compare");
    let budget_ms = criterion_budget_ms(2_000);
    println!("== bench_ddb: {TXNS}-txn workload throughput, n = {SITES} ==");
    println!(
        "budget {budget_ms} ms per measurement{}\n",
        if compare { ", with construct-per-txn baseline" } else { "" }
    );

    let protocols =
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority];
    let measurements: Vec<Measurement> = protocols
        .iter()
        .map(|&protocol| {
            let (pooled_ms, per_txn, run) = sample(protocol, compare, budget_ms);
            Measurement {
                protocol,
                pooled_ms,
                constructed: run.participants_constructed,
                reused: run.participants_reused,
                per_txn,
            }
        })
        .collect();

    let mut headers = vec!["protocol", "wall ms", "txns/s", "constructed", "reused"];
    if compare {
        headers.extend(["per-txn ms", "vs per-txn"]);
    }
    let mut table = Table::new(headers);
    for m in &measurements {
        let mut row = vec![
            m.protocol.name().to_string(),
            format!("{:.1}", m.pooled_ms),
            format!("{:.0}", m.txns_per_sec()),
            m.constructed.to_string(),
            m.reused.to_string(),
        ];
        if let Some((per_txn_ms, speedup)) = m.per_txn {
            row.push(format!("{per_txn_ms:.1}"));
            row.push(format!("{speedup:.2}x"));
        }
        table.row(row);
    }
    println!("{}", table.render());

    write_record("BENCH_ddb.json", &render_json(&measurements));
}
