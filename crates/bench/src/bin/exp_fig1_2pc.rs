//! E1 — Fig. 1: the two-phase commit protocol.
//!
//! Regenerates the figure (as DOT), computes the formal facts behind the
//! paper's Sec. 2 narrative — `C(w_slave)` contains both a commit and an
//! abort, so 2PC blocks when the master is unreachable — and demonstrates
//! the blocking behaviour on the simulated network.

use ptp_core::model::concurrency::ConcurrencySets;
use ptp_core::model::dot::to_dot;
use ptp_core::model::protocols::two_phase;
use ptp_core::model::GlobalGraph;
use ptp_core::report::Table;
use ptp_core::{run_scenario_opts, ProtocolKind, RunOptions, Scenario};
use ptp_simnet::SiteId;

fn main() {
    let spec = two_phase(3);
    println!("== E1 / Fig. 1: two-phase commit ==\n");
    println!("{spec}");

    let graph = GlobalGraph::explore(&spec);
    let csets = ConcurrencySets::compute(&spec, &graph);
    println!("reachable global states (n=3): {}\n", graph.states.len());

    let mut table = Table::new(vec!["state", "C(s) ∋ commit", "C(s) ∋ abort"]);
    for (site, name) in [(0usize, "w1"), (1usize, "w")] {
        let s = spec.state_ref(site, name);
        table.row(vec![
            format!("site{site}:{name}"),
            csets.contains_commit(&spec, s).to_string(),
            csets.contains_abort(&spec, s).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper: the slave wait state has both a commit and an abort concurrent —");
    println!("the blocking diagnosis behind the move to 3PC.\n");

    // Behavioural witness: partition the slaves away after they voted.
    let scenario = Scenario::new(3).partition_g2(vec![SiteId(1), SiteId(2)], 1500);
    let result = run_scenario_opts(ProtocolKind::Plain2pc, &scenario, &RunOptions::new());
    println!("partition {{0}} | {{1,2}} at 1.5T: verdict = {:?}", result.verdict);
    assert!(!result.verdict.is_resilient());

    println!("\n--- DOT (Fig. 1) ---\n{}", to_dot(&spec, None));
}
