//! Read-path throughput baseline.
//!
//! `bench_shard` measures the *write* side of the sharded store; this
//! bench measures the **read** side introduced with the elastic read path:
//! the same 3-shard × 2-replica topology over six sites serves a
//! 960-read workload three ways (large enough that per-read cost, not
//! cluster setup, dominates the wall time) —
//!
//! * `lease` — master leases armed, single-shard reads served on the
//!   lock-free lease fast path;
//! * `lock_local` — no leases, single-shard reads served at the master
//!   under shared locks, still with no protocol round;
//! * `protocol` — cross-shard reads driven through a top-level commit
//!   round over the involved masters.
//!
//! Writes `BENCH_read.json`. The committed record must show the local
//! paths (lease and lock-local) at **≥ 5×** the throughput of the
//! commit-round path on the same topology — the number that justifies
//! routing single-shard reads around the protocol in the first place.
//!
//! `CRITERION_BUDGET_MS` caps the per-measurement sampling time, as in
//! the sibling benches.

use ptp_bench::{criterion_budget_ms, host_fields, json_escape, median_of, write_record};
use ptp_core::ddb::cluster::CommitProtocol;
use ptp_core::ddb::value::{TxnId, Value, WriteOp};
use ptp_core::report::Table;
use ptp_shard::{ShardCluster, ShardReadSpec, ShardRun, ShardTopology, ShardTxnSpec};
use std::fmt::Write as _;
use std::time::Instant;

const SITES: usize = 6;
const SHARDS: usize = 3;
const REPLICATION: usize = 2;
const READS: u32 = 960;
/// Read ids start above every write id (the plan layer requires disjoint
/// namespaces).
const READ_BASE: u32 = 10_000;
/// First read instant: late enough for the seeding writes to commit and
/// the first lease renewal round to arm every grant.
const READS_FROM: u64 = 8_000;
/// Tight spacing: reads take shared locks only (every write commits before
/// `READS_FROM`), so overlapping rounds cannot conflict — and the whole
/// schedule must finish inside the simulator's 200k-tick horizon.
const SUBMIT_SPACING: u64 = 150;
const REPEATS: usize = 4;
const MAX_ROUNDS: usize = 41;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Lease,
    LockLocal,
    Protocol,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Lease => "lease",
            Mode::LockLocal => "lock_local",
            Mode::Protocol => "protocol",
        }
    }
}

fn topology() -> ShardTopology {
    ShardTopology::uniform(SITES, SHARDS, REPLICATION)
}

/// Seeds one committed write per shard so every read observes data, then
/// the read workload: single-shard reads cycling an 8-key pool for the
/// local modes, all-shard reads (a full commit round over every master)
/// for the protocol mode.
fn build(mode: Mode) -> ShardCluster {
    let topo = topology();
    let pools = ptp_bench::shard_key_pool(&topo, 8);
    let mut cluster = ShardCluster::new(topo, CommitProtocol::HuangLi);
    for (shard, pool) in pools.iter().enumerate().take(SHARDS) {
        cluster = cluster.submit(
            (shard as u64) * 500,
            ShardTxnSpec {
                id: TxnId(shard as u32 + 1),
                writes: (0..8)
                    .map(|k| WriteOp {
                        key: pool[k].clone(),
                        value: Value::from_u64((shard * 8 + k) as u64),
                    })
                    .collect(),
            },
        );
    }
    if mode == Mode::Lease {
        cluster = cluster.leases(2_000, 6_500);
    }
    for i in 0..READS {
        let shard = i as usize % SHARDS;
        let mut keys = vec![pools[shard][(i as usize * 7) % 8].clone()];
        if mode == Mode::Protocol {
            for step in 1..SHARDS {
                let other = (shard + step) % SHARDS;
                keys.push(pools[other][(i as usize * 5) % 8].clone());
            }
        }
        cluster = cluster.submit_read(
            READS_FROM + i as u64 * SUBMIT_SPACING,
            ShardReadSpec { id: TxnId(READ_BASE + i), keys },
        );
    }
    cluster
}

/// One timed observation: `REPEATS` consecutive executions under one clock
/// read (less timer/scheduler jitter than timing runs individually).
fn run_block(mode: Mode) -> (f64, ShardRun) {
    let clusters: Vec<ShardCluster> = (0..REPEATS).map(|_| build(mode)).collect();
    let mut last = None;
    let round = Instant::now();
    for cluster in clusters {
        last = Some(cluster.run());
    }
    let wall = round.elapsed().as_secs_f64() * 1000.0 / REPEATS as f64;
    let run = last.expect("at least one repeat");
    let reads = &run.reads;
    assert_eq!(reads.submitted, READS as usize, "{}: every read must be submitted", mode.name());
    assert_eq!(
        reads.served() + reads.aborted,
        READS as usize,
        "{}: reads left behind",
        mode.name()
    );
    match mode {
        // The fast path carries the bulk; reads that land before the first
        // renewal round arms fall back to the lock path, never the protocol.
        Mode::Lease => {
            assert!(reads.lease * 2 > READS as usize, "lease path barely used: {reads:?}");
            assert_eq!(reads.protocol, 0, "single-shard read took a protocol round: {reads:?}");
        }
        Mode::LockLocal => assert_eq!(reads.lock_local, READS as usize, "{reads:?}"),
        Mode::Protocol => {
            assert_eq!(reads.lease + reads.lock_local, 0, "cross-shard read served locally");
            assert!(reads.protocol * 10 >= READS as usize * 9, "protocol reads lost: {reads:?}");
        }
    }
    (wall, run)
}

fn sample(mode: Mode, budget_ms: u64) -> (f64, ShardRun) {
    let _ = run_block(mode); // warmup
    let mut walls = Vec::new();
    let started = Instant::now();
    let mut last = None;
    while walls.is_empty()
        || (walls.len() < MAX_ROUNDS && started.elapsed().as_millis() < budget_ms as u128)
    {
        let (wall, run) = run_block(mode);
        walls.push(wall);
        last = Some(run);
    }
    (median_of(&mut walls), last.expect("at least one round"))
}

struct Measurement {
    mode: Mode,
    wall_ms: f64,
    run: ShardRun,
}

impl Measurement {
    fn reads_per_sec(&self) -> f64 {
        READS as f64 * 1000.0 / self.wall_ms.max(f64::MIN_POSITIVE)
    }
}

fn render_json(measurements: &[Measurement], speedups: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"benchmark\": \"{}\",", json_escape("shard_read_throughput"));
    let _ = writeln!(out, "  {},", host_fields());
    let _ = writeln!(out, "  \"sites\": {SITES},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"replication\": {REPLICATION},");
    let _ = writeln!(out, "  \"reads\": {READS},");
    out.push_str("  \"paths\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let r = &m.run.reads;
        out.push_str("    {");
        let _ = write!(
            out,
            "\"path\": \"{}\", \"wall_ms\": {:.3}, \"reads_per_sec\": {:.1}, \
             \"served_lease\": {}, \"served_lock_local\": {}, \"served_protocol\": {}, \
             \"aborted\": {}, \"blocked\": {}",
            json_escape(m.mode.name()),
            m.wall_ms,
            m.reads_per_sec(),
            r.lease,
            r.lock_local,
            r.protocol,
            r.aborted,
            r.blocked,
        );
        out.push_str(if i + 1 == measurements.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedup_vs_protocol\": {");
    for (i, (name, x)) in speedups.iter().enumerate() {
        let _ = write!(out, "{}\"{}\": {:.2}", if i == 0 { " " } else { ", " }, name, x);
    }
    out.push_str(" }\n}\n");
    out
}

fn main() {
    let budget_ms = criterion_budget_ms(2_000);
    println!(
        "== bench_read: {READS}-read workload per path, {SHARDS} shards x {REPLICATION} \
         replicas over {SITES} sites =="
    );
    println!("budget {budget_ms} ms per measurement\n");

    let measurements: Vec<Measurement> = [Mode::Lease, Mode::LockLocal, Mode::Protocol]
        .into_iter()
        .map(|mode| {
            let (wall_ms, run) = sample(mode, budget_ms);
            Measurement { mode, wall_ms, run }
        })
        .collect();

    let protocol_rps = measurements
        .iter()
        .find(|m| m.mode == Mode::Protocol)
        .expect("protocol path measured")
        .reads_per_sec();
    let speedups: Vec<(String, f64)> = measurements
        .iter()
        .filter(|m| m.mode != Mode::Protocol)
        .map(|m| (m.mode.name().to_string(), m.reads_per_sec() / protocol_rps))
        .collect();

    let mut table = Table::new(vec![
        "path",
        "wall ms",
        "reads/s",
        "lease",
        "lock-local",
        "protocol",
        "x vs protocol",
    ]);
    for m in &measurements {
        let x = speedups
            .iter()
            .find(|(name, _)| name == m.mode.name())
            .map(|(_, x)| format!("{x:.1}x"))
            .unwrap_or_else(|| "1.0x".into());
        table.row(vec![
            m.mode.name().to_string(),
            format!("{:.1}", m.wall_ms),
            format!("{:.0}", m.reads_per_sec()),
            m.run.reads.lease.to_string(),
            m.run.reads.lock_local.to_string(),
            m.run.reads.protocol.to_string(),
            x,
        ]);
    }
    println!("{}", table.render());

    for (name, x) in &speedups {
        assert!(
            *x >= 5.0,
            "{name} path only {x:.1}x the protocol path — the local read paths must \
             clear 5x to justify routing around the commit round"
        );
    }
    println!("local read paths clear the 5x bar over the commit-round path");

    write_record("BENCH_read.json", &render_json(&measurements, &speedups));
}
