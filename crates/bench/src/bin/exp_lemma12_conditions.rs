//! E4 — Lemmas 1 and 2: the necessary conditions for partition resilience,
//! checked mechanically over every protocol's reachable global states.

use ptp_core::model::protocols::{
    extended_two_phase, four_phase, modified_three_phase, three_phase, two_phase,
};
use ptp_core::model::resilience::check_conditions;
use ptp_core::report::Table;

fn main() {
    println!("== E4: Lemma 1 & Lemma 2 necessary conditions ==\n");
    println!("Lemma 1: no state may have both a commit and an abort in its concurrency set.");
    println!("Lemma 2: no noncommittable state may have a commit in its concurrency set.\n");

    let mut table = Table::new(vec![
        "protocol",
        "n",
        "lemma-1 violations",
        "lemma-2 violations",
        "conditions hold?",
    ]);

    for n in [2usize, 3, 4] {
        for spec in [
            two_phase(n),
            extended_two_phase(n),
            three_phase(n),
            modified_three_phase(n),
            four_phase(n),
        ] {
            let report = check_conditions(&spec);
            table.row(vec![
                spec.name.clone(),
                n.to_string(),
                report.lemma1.len().to_string(),
                report.lemma2.len().to_string(),
                if report.satisfies_conditions() { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    println!("{}", table.render());

    println!("paper: 2PC fails both conditions at every n; the extended 2PC fails them");
    println!("for n ≥ 3 (the Sec. 3 observation); 3PC/M3PC/4PC satisfy both, so a");
    println!("termination protocol *can* make them resilient (and Sec. 5 builds it).");
}
