//! E9 — Fig. 9 and the Sec. 6 case table: transient network partitioning.
//!
//! The paper enumerates what a transient partition can do to an in-flight
//! 3PC by which messages cross the boundary B, and bounds the time a slave
//! can wait after timing out in `p` before something terminates it:
//!
//! ```text
//! case      2.1: T     2.2.1: 4T   2.2.2: 5T
//! case      3.1: T     3.2.2.1: 4T   3.2.2.2: unbounded -> 5T commit rule
//! ```
//!
//! This experiment sweeps transient partitions (boundary × onset × heal ×
//! delay seed), classifies every run into the case tree, measures the
//! actual post-`p`-timeout waits, and prints measured-vs-paper per case.

use ptp_core::cases::{classify, max_wait_after_p_timeout, TransientCase};
use ptp_core::report::Table;
use ptp_core::{ProtocolKind, RunOptions, Scenario, SessionPool};
use ptp_simnet::{DelayModel, SiteId};
use std::collections::BTreeMap;

fn main() {
    println!("== E9 / Fig. 9 + Sec. 6: transient-partition case table ==\n");

    let mut per_case: BTreeMap<TransientCase, (usize, u64)> = BTreeMap::new();
    let mut total = 0usize;
    // One pooled cluster for the ~2600-run sweep; traces recorded for the
    // classifier.
    let mut pool = SessionPool::new();
    let recording = RunOptions::recording();

    let boundaries: Vec<Vec<SiteId>> =
        vec![vec![SiteId(2)], vec![SiteId(1)], vec![SiteId(1), SiteId(2)]];
    for g2 in &boundaries {
        for at in (1500..=4750).step_by(250) {
            for heal_after in [500u64, 1000, 2000, 3000, 5000, 8000] {
                for seed in 0..12u64 {
                    let delay = if seed == 0 {
                        DelayModel::Fixed(1000)
                    } else {
                        DelayModel::Uniform { seed, min: 1, max: 1000 }
                    };
                    let scenario = Scenario::new(3)
                        .transient_partition(g2.clone(), at, at + heal_after)
                        .delay(delay);
                    let result =
                        pool.session(ProtocolKind::HuangLi3pc, 3).run_with(&scenario, &recording);
                    assert!(
                        result.verdict.is_resilient(),
                        "violation: g2={g2:?} at={at} heal=+{heal_after} seed={seed}: {:?}",
                        result.verdict
                    );
                    total += 1;
                    let case = classify(&result.trace, g2);
                    let wait = max_wait_after_p_timeout(&result.trace, 3).unwrap_or(0);
                    let entry = per_case.entry(case).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 = entry.1.max(wait);
                }
            }
        }
    }

    println!("{total} transient-partition scenarios, all resilient.\n");
    let mut table = Table::new(vec!["case", "runs", "max wait after p-timeout", "paper bound"]);
    for (case, (count, max_wait)) in &per_case {
        let bound = match case.paper_bound_t() {
            Some(0) => "—".to_string(),
            Some(t) => format!("{t}T"),
            None => "∞ → 5T rule".to_string(),
        };
        table.row(vec![
            case.label().to_string(),
            count.to_string(),
            format!("{:.3}T", *max_wait as f64 / 1000.0),
            bound,
        ]);
    }
    println!("{}", table.render());

    // Every measured wait must respect the Sec. 6 analysis: nothing beyond
    // 5T (the p-wait rule guarantees it).
    for (case, (_, max_wait)) in &per_case {
        assert!(*max_wait <= 5000, "case {case:?} waited {:.3}T > 5T", *max_wait as f64 / 1000.0);
    }
    println!("All waits ≤ 5T: the Sec. 6 transient rule (commit 5T after the p timeout)");
    println!("bounds case 3.2.2.2, and every other case terminates within its stated bound.");
}
