//! # ptp-shard — a sharded, partially-replicated store over the commit
//! protocols
//!
//! The paper decides one transaction across one fully-replicated site
//! group. This crate adds the next structural layer on the road to the
//! ROADMAP's north star: a keyspace split into `S` shards, each mapped to
//! a replica group of sites (configurable replication factor; groups may
//! overlap), all hosted in **one** deterministic simulation — so a single
//! partition schedule or `FailureSpec` cuts across every group at once.
//!
//! * [`topology`] — the shard map: shards → replica groups, key routing.
//! * [`plan`] — the router: classifies each transaction as single-shard
//!   (commit protocol inside its replica group) or cross-shard (a
//!   top-level instance of the *same* protocol over the involved groups'
//!   masters, plus outcome shipping to out-of-group replicas).
//! * [`node`] — the site actor: `ptp-ddb`'s storage/WAL/locks/participant
//!   pools, generalized to per-transaction protocol groups via virtual
//!   site ids.
//! * [`cluster`] — the [`ShardCluster`] driver, mirroring
//!   [`ptp_ddb::DbCluster`], with aggregate and per-shard [`Metrics`]
//!   (`committed`, cross-shard abort rate, lock-hold time, per-shard
//!   availability).
//!
//! The sharded path must not fork behaviour: a 1-shard topology with
//! replication `n` runs byte-for-byte the flat cluster's message schedule,
//! and the `tests/shard_equivalence.rs` suite pins its
//! `Metrics`/storages/WALs field-identical to [`ptp_ddb::DbCluster`] for
//! every commit protocol.
//!
//! ```
//! use ptp_ddb::cluster::CommitProtocol;
//! use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
//! use ptp_shard::{ShardCluster, ShardTopology, ShardTxnSpec};
//!
//! let topo = ShardTopology::uniform(6, 3, 2);
//! let key = Key::from("k");
//! let run = ShardCluster::new(topo, CommitProtocol::HuangLi)
//!     .submit(0, ShardTxnSpec {
//!         id: TxnId(1),
//!         writes: vec![WriteOp { key: key.clone(), value: Value::from_u64(7) }],
//!     })
//!     .run();
//! assert!(run.metrics.atomicity_violations().is_empty());
//! assert_eq!(run.cross_shard.submitted, 0); // one key = single-shard
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod lease;
pub mod lineariz;
pub mod node;
pub mod plan;
pub mod topology;

pub use cluster::{CrossShardReport, ReadReport, ShardCluster, ShardMetrics, ShardRun};
pub use lease::{LeaseConfig, LeaseTable};
pub use lineariz::{check_read_history, ReadViolation};
pub use node::{
    ShardNode, ShardNodeOpts, LEASE_ACK, LEASE_RENEW, SHARD_ABORT, SHARD_APPLY, SYNC_REQ, SYNC_RESP,
};
pub use plan::{PlanTable, ReadPlan, ShardReadSpec, ShardTxnSpec, TxnPlan};
pub use topology::ShardTopology;

// Re-exported so downstream code can name the shared metrics type without
// a direct ptp-ddb dependency.
pub use ptp_ddb::site::Metrics;

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_ddb::cluster::CommitProtocol;
    use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
    use ptp_simnet::{FailureSpec, PartitionEngine, PartitionSpec, SimTime, SiteId};

    const PROTOCOLS: [CommitProtocol; 3] =
        [CommitProtocol::TwoPhase, CommitProtocol::HuangLi, CommitProtocol::QuorumMajority];

    fn w(key: &Key, v: u64) -> WriteOp {
        WriteOp { key: key.clone(), value: Value::from_u64(v) }
    }

    /// A key routed to `shard` under `topo`.
    fn key_in(topo: &ShardTopology, shard: usize) -> Key {
        (0..512)
            .map(|i| Key::from(format!("key-{i}")))
            .find(|k| topo.shard_of(k) == shard)
            .expect("probe key")
    }

    #[test]
    fn single_shard_txns_commit_in_their_groups() {
        for protocol in PROTOCOLS {
            let topo = ShardTopology::uniform(6, 3, 2);
            let (k0, k2) = (key_in(&topo, 0), key_in(&topo, 2));
            let run = ShardCluster::new(topo.clone(), protocol)
                .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 10)] })
                .submit(0, ShardTxnSpec { id: TxnId(2), writes: vec![w(&k2, 20)] })
                .run();
            assert!(run.metrics.atomicity_violations().is_empty(), "{}", protocol.name());
            assert!(run.blocked.iter().all(|b| b.is_empty()));
            // Both replicas of each touched shard hold the committed value.
            for &site in topo.group(0) {
                assert_eq!(
                    run.storages[site.index()].get(&k0).unwrap().as_u64(),
                    Some(10),
                    "{} at {site}",
                    protocol.name()
                );
            }
            for &site in topo.group(2) {
                assert_eq!(run.storages[site.index()].get(&k2).unwrap().as_u64(), Some(20));
            }
            // Untouched shard 1 never sees either key.
            for &site in topo.group(1) {
                assert_eq!(run.storages[site.index()].get(&k0), None);
            }
            assert_eq!(run.cross_shard, CrossShardReport::default());
            for shard in &run.shards {
                assert_eq!(shard.availability(), 1.0, "{:?}", shard);
            }
        }
    }

    #[test]
    fn cross_shard_txn_commits_at_masters_and_replicas() {
        for protocol in PROTOCOLS {
            let topo = ShardTopology::uniform(6, 3, 2);
            let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
            let run = ShardCluster::new(topo.clone(), protocol)
                .seed(k0.clone(), Value::from_u64(100))
                .seed(k1.clone(), Value::from_u64(0))
                .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 70), w(&k1, 30)] })
                .run();
            assert!(run.metrics.atomicity_violations().is_empty(), "{}", protocol.name());
            assert_eq!(run.cross_shard.submitted, 1);
            assert_eq!(run.cross_shard.committed, 1, "{}", protocol.name());
            // All four replicas across the two groups converge, shipped
            // replicas included.
            for &site in topo.group(0) {
                assert_eq!(run.storages[site.index()].get(&k0).unwrap().as_u64(), Some(70));
            }
            for &site in topo.group(1) {
                assert_eq!(run.storages[site.index()].get(&k1).unwrap().as_u64(), Some(30));
            }
            assert_eq!(run.shards[0].availability(), 1.0);
            assert_eq!(run.shards[1].availability(), 1.0);
        }
    }

    #[test]
    fn partition_between_groups_blocks_2pc_but_not_huang_li() {
        // Split the two involved groups apart right as the top-level
        // prepares are in flight: the paper's scenario, one layer up.
        let topo = ShardTopology::uniform(6, 3, 2);
        let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(1500),
            vec![SiteId(0), SiteId(1), SiteId(4), SiteId(5)],
            vec![SiteId(2), SiteId(3)],
        )]);
        let mut outcomes = Vec::new();
        for protocol in PROTOCOLS {
            let run = ShardCluster::new(topo.clone(), protocol)
                .partition(partition.clone())
                .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 1), w(&k1, 2)] })
                .run();
            assert!(run.metrics.atomicity_violations().is_empty(), "{}", protocol.name());
            let stranded_master_decided =
                run.metrics.decisions.get(&TxnId(1)).is_some_and(|d| d.contains_key(&2));
            outcomes.push((protocol, stranded_master_decided));
        }
        // HL-3PC terminates the stranded group master; 2PC leaves it blocked.
        assert!(
            outcomes.iter().any(|(p, decided)| *p == CommitProtocol::HuangLi && *decided),
            "{outcomes:?}"
        );
        assert!(
            outcomes.iter().any(|(p, decided)| *p == CommitProtocol::TwoPhase && !*decided),
            "{outcomes:?}"
        );
    }

    #[test]
    fn partition_inside_a_group_strands_the_replica() {
        // Cut shard 1's replica (site 3) from everyone before the txn: the
        // group master still terminates (HL), but the replica cannot learn
        // the outcome — visible as < 1.0 availability on shard 1 only.
        let topo = ShardTopology::uniform(6, 3, 2);
        let k1 = key_in(&topo, 1);
        let partition = PartitionEngine::new(vec![PartitionSpec::simple(
            SimTime(100),
            vec![SiteId(0), SiteId(1), SiteId(2), SiteId(4), SiteId(5)],
            vec![SiteId(3)],
        )]);
        let run = ShardCluster::new(topo.clone(), CommitProtocol::HuangLi)
            .partition(partition)
            .submit(500, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k1, 5)] })
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        let shard1 = &run.shards[1];
        assert!(shard1.availability() < 1.0, "{shard1:?}");
        assert_eq!(run.shards[0].availability(), 1.0);
        assert_eq!(run.shards[2].availability(), 1.0);
    }

    #[test]
    fn shipped_apply_waits_for_conflicting_locks() {
        // Replication-1 shards make every commit a local decision plus a
        // ship...  instead use a replication-2 cross-shard commit whose
        // shipped apply lands on a replica busy with a conflicting local
        // txn: the apply must park, then install once the lock frees.
        let topo = ShardTopology::uniform(4, 2, 2);
        let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
        let run = ShardCluster::new(topo.clone(), CommitProtocol::HuangLi)
            // Txn 1 is cross-shard: commits at masters 0 and 2, ships k1's
            // writes to replica 3 (and k0's to replica 1).
            .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 1), w(&k1, 1)] })
            // Txn 2 is single-shard on shard 1 and contends for k1.
            .submit(100, ShardTxnSpec { id: TxnId(2), writes: vec![w(&k1, 2)] })
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        // Everything terminates; replica 3 converges with master 2 on k1.
        assert!(run.blocked.iter().all(|b| b.is_empty()), "{:?}", run.blocked);
        assert_eq!(run.storages[2].get(&k1), run.storages[3].get(&k1));
    }

    #[test]
    fn replication_one_commits_locally_and_cross_shard_ships_nothing() {
        let topo = ShardTopology::uniform(4, 4, 1);
        let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
        let run = ShardCluster::new(topo.clone(), CommitProtocol::HuangLi)
            .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 9)] })
            .submit(0, ShardTxnSpec { id: TxnId(2), writes: vec![w(&k0, 3), w(&k1, 4)] })
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        assert_eq!(run.cross_shard.submitted, 1);
        assert_eq!(run.cross_shard.committed, 1);
        assert_eq!(run.storages[topo.master(1).index()].get(&k1).unwrap().as_u64(), Some(4));
    }

    #[test]
    fn replica_serving_two_involved_shards_installs_both_write_sets() {
        // Regression: uniform(4, 3, 2) wraps shard 2's group onto {0, 1},
        // so a cross-shard txn over shards 0 and 2 collapses to sole
        // master 0 with replica 1 serving *both* shards. Shipping per
        // shard sent replica 1 two SHARD_APPLY messages; the second was
        // dropped as a duplicate and one shard's write was silently lost.
        // The ship must carry the replica's full union.
        let topo = ShardTopology::uniform(4, 3, 2);
        assert_eq!(topo.master(0), topo.master(2), "layout shares the master");
        let (k0, k2) = (key_in(&topo, 0), key_in(&topo, 2));
        for protocol in PROTOCOLS {
            let run = ShardCluster::new(topo.clone(), protocol)
                .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 7), w(&k2, 9)] })
                .run();
            assert!(run.metrics.atomicity_violations().is_empty(), "{}", protocol.name());
            assert_eq!(run.cross_shard.committed, 1, "{}", protocol.name());
            // Replica 1 converges with master 0 on BOTH keys.
            assert_eq!(
                run.storages[1].get(&k0),
                run.storages[0].get(&k0),
                "{}: shard-0 write lost at the replica",
                protocol.name()
            );
            assert_eq!(
                run.storages[1].get(&k2),
                run.storages[0].get(&k2),
                "{}: shard-2 write lost at the replica",
                protocol.name()
            );
            assert_eq!(run.storages[1].get(&k0).unwrap().as_u64(), Some(7));
            assert_eq!(run.storages[1].get(&k2).unwrap().as_u64(), Some(9));
        }
    }

    #[test]
    fn replica_shipped_by_two_masters_installs_everything_once() {
        // The two-shipper variant: shards {0,3} and {2,3} share replica 3
        // under different masters. Both masters ship the full union; the
        // first arrival installs both shards, the second is a duplicate.
        let topo =
            ShardTopology::new(4, vec![vec![SiteId(0), SiteId(3)], vec![SiteId(2), SiteId(3)]]);
        let (k0, k1) = (key_in(&topo, 0), key_in(&topo, 1));
        let run = ShardCluster::new(topo.clone(), CommitProtocol::HuangLi)
            .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 3), w(&k1, 4)] })
            .run();
        assert!(run.metrics.atomicity_violations().is_empty());
        assert_eq!(run.cross_shard.committed, 1);
        assert_eq!(run.storages[3].get(&k0).unwrap().as_u64(), Some(3));
        assert_eq!(run.storages[3].get(&k1).unwrap().as_u64(), Some(4));
        // Exactly one install at the replica: one Begin record for txn 1.
        let begins = run.wals[3]
            .durable()
            .iter()
            .filter(|r| matches!(r, ptp_ddb::wal::Record::Begin { txn, .. } if *txn == TxnId(1)))
            .count();
        assert_eq!(begins, 1, "duplicate ship must not re-install");
    }

    #[test]
    fn crashed_replica_recovers_and_stays_consistent() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let k0 = key_in(&topo, 0);
        let replica = topo.group(0)[1];
        let run = ShardCluster::new(topo.clone(), CommitProtocol::HuangLi)
            .seed(k0.clone(), Value::from_u64(1))
            .submit(0, ShardTxnSpec { id: TxnId(1), writes: vec![w(&k0, 2)] })
            .fail(FailureSpec::crash_recover(replica, SimTime(1200), SimTime(20_000)))
            .run();
        assert!(run.trace.first_note(replica, "recovered").is_some());
        assert!(run.metrics.atomicity_violations().is_empty());
        assert!(run.blocked.iter().all(|b| b.is_empty()));
        // The replica presumed the staged txn aborted on recovery; the
        // master aborted on timeout — consistent, value unchanged there.
        assert_eq!(run.storages[replica.index()].get(&k0).unwrap().as_u64(), Some(1));
    }

    #[test]
    fn pooled_matches_per_txn_and_constructs_less() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let k0 = key_in(&topo, 0);
        let build = |pooled: bool| {
            let mut cluster = ShardCluster::new(topo.clone(), CommitProtocol::HuangLi);
            if !pooled {
                cluster = cluster.construct_per_txn();
            }
            for i in 0..6u32 {
                cluster = cluster.submit(
                    i as u64 * 8000,
                    ShardTxnSpec { id: TxnId(i + 1), writes: vec![w(&k0, i as u64)] },
                );
            }
            cluster.run()
        };
        let pooled = build(true);
        let baseline = build(false);
        assert_eq!(pooled.metrics, baseline.metrics);
        assert_eq!(pooled.storages, baseline.storages);
        assert_eq!(pooled.wals, baseline.wals);
        assert!(pooled.participants_reused > 0);
        assert!(pooled.participants_constructed < baseline.participants_constructed);
    }
}
