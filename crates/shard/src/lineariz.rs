//! A read-history linearizability checker for the elastic read path.
//!
//! The read layer claims that every served read — lease fast path,
//! local shared-lock path, or cross-shard protocol round — is consistent
//! with *some* linearization of the committed writes. This module checks
//! that claim against a finished run's history, exploiting two structural
//! facts of the sharded design:
//!
//! 1. **Per-key commit points are totally ordered.** Every write to a key
//!    commits through the key's shard master under strict 2PL, so the
//!    coordinator's commit instant is a valid linearization point and the
//!    per-key write history is a sequence, not a partial order.
//! 2. **Applies never run ahead of the commit point.** A participant
//!    master applies a cross-shard write at its *own* decision instant,
//!    which the protocols place at or after the coordinator's — so a read
//!    can never observe a value whose write has not yet committed.
//!
//! A read of key `k` served at instant `t` must therefore observe the
//! value of the *last* write to `k` whose commit point is `< t` (or the
//! seed value if none committed yet). Writes committing at exactly `t`
//! are concurrent with the read — the checker accepts either side of the
//! tie. Anything else is a [`ReadViolation`].

use crate::plan::{PlanTable, ShardTxnSpec};
use crate::topology::ShardTopology;
use ptp_ddb::site::Metrics;
use ptp_ddb::value::{Key, TxnId, Value};
use ptp_model::Decision;
use ptp_simnet::{SimTime, SiteId};
use std::collections::BTreeMap;

/// One read observation the committed-write history cannot explain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadViolation {
    /// The offending read-only transaction.
    pub read: TxnId,
    /// The site that served (this slice of) the read.
    pub site: SiteId,
    /// Serve instant.
    pub at: SimTime,
    /// The key whose observation is inconsistent.
    pub key: Key,
    /// What the read returned.
    pub observed: Option<Value>,
    /// The admissible values at that instant (latest committed write
    /// strictly before `at`, plus any write committing at exactly `at`).
    pub admissible: Vec<Option<Value>>,
}

/// Checks every [`ptp_ddb::site::ReadRecord`] in `metrics` against the
/// committed-write history of `specs` (commit points judged at each write
/// plan's top-level coordinator). Returns all violations, in read order —
/// empty means the run's reads linearize.
pub fn check_read_history(
    topology: &ShardTopology,
    seeds: &[(Key, Value)],
    specs: &[ShardTxnSpec],
    metrics: &Metrics,
) -> Vec<ReadViolation> {
    let plans = PlanTable::compile(topology.clone(), specs);

    // Per-key committed-write history: (commit instant, value), sorted by
    // instant. Later writes within one transaction's list win.
    let mut history: BTreeMap<Key, Vec<(SimTime, Option<Value>)>> = BTreeMap::new();
    for spec in specs {
        let plan = plans.get(spec.id).expect("just compiled");
        let coordinator = plan.master().0;
        let Some(&(Decision::Commit, at)) =
            metrics.decisions.get(&spec.id).and_then(|d| d.get(&coordinator))
        else {
            continue;
        };
        let mut last: BTreeMap<&Key, &Value> = BTreeMap::new();
        for w in &spec.writes {
            last.insert(&w.key, &w.value);
        }
        for (key, value) in last {
            history.entry(key.clone()).or_default().push((at, Some(value.clone())));
        }
    }
    for writes in history.values_mut() {
        writes.sort_by_key(|(at, _)| *at);
    }
    let seed_of = |key: &Key| -> Option<Value> {
        seeds.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };

    let mut violations = Vec::new();
    for record in &metrics.reads {
        for (key, observed) in &record.values {
            let writes = history.get(key).map(Vec::as_slice).unwrap_or(&[]);
            let before = writes.iter().rev().find(|(at, _)| *at < record.at);
            let latest = before.map(|(_, v)| v.clone()).unwrap_or_else(|| seed_of(key));
            let mut admissible = vec![latest];
            for (at, v) in writes {
                if *at == record.at {
                    admissible.push(v.clone());
                }
            }
            if !admissible.contains(observed) {
                violations.push(ReadViolation {
                    read: record.id,
                    site: record.site,
                    at: record.at,
                    key: key.clone(),
                    observed: observed.clone(),
                    admissible,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_ddb::site::{ReadPath, ReadRecord};
    use ptp_ddb::value::WriteOp;

    fn spec(id: u32, key: &Key, v: u64) -> ShardTxnSpec {
        ShardTxnSpec {
            id: TxnId(id),
            writes: vec![WriteOp { key: key.clone(), value: Value::from_u64(v) }],
        }
    }

    fn commit(metrics: &mut Metrics, id: u32, site: u16, at: u64) {
        metrics
            .decisions
            .entry(TxnId(id))
            .or_default()
            .insert(site, (Decision::Commit, SimTime(at)));
    }

    fn observe(metrics: &mut Metrics, id: u32, site: u16, at: u64, key: &Key, v: Option<u64>) {
        metrics.reads.push(ReadRecord {
            id: TxnId(id),
            site: SiteId(site),
            at: SimTime(at),
            path: ReadPath::Lease,
            values: vec![(key.clone(), v.map(Value::from_u64))],
        });
    }

    /// A key routed to `shard` under `topo`.
    fn key_in(topo: &ShardTopology, shard: usize) -> Key {
        (0..512)
            .map(|i| Key::from(format!("key-{i}")))
            .find(|k| topo.shard_of(k) == shard)
            .expect("probe key")
    }

    #[test]
    fn latest_committed_write_is_the_only_admissible_value_between_commits() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let k = key_in(&topo, 0);
        let master = topo.master(0).0;
        let specs = vec![spec(1, &k, 10), spec(2, &k, 20)];
        let mut metrics = Metrics::default();
        commit(&mut metrics, 1, master, 1000);
        commit(&mut metrics, 2, master, 3000);
        observe(&mut metrics, 100, master, 500, &k, None); // before both
        observe(&mut metrics, 101, master, 2000, &k, Some(10));
        observe(&mut metrics, 102, master, 4000, &k, Some(20));
        assert!(check_read_history(&topo, &[], &specs, &metrics).is_empty());

        observe(&mut metrics, 103, master, 4000, &k, Some(10)); // stale
        let violations = check_read_history(&topo, &[], &specs, &metrics);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].read, TxnId(103));
        assert_eq!(violations[0].observed, Some(Value::from_u64(10)));
    }

    #[test]
    fn a_write_committing_at_the_read_instant_is_concurrent() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let k = key_in(&topo, 0);
        let master = topo.master(0).0;
        let specs = vec![spec(1, &k, 10)];
        let mut metrics = Metrics::default();
        commit(&mut metrics, 1, master, 1000);
        observe(&mut metrics, 100, master, 1000, &k, None); // old side of tie
        observe(&mut metrics, 101, master, 1000, &k, Some(10)); // new side
        assert!(check_read_history(&topo, &[], &specs, &metrics).is_empty());
    }

    #[test]
    fn seeds_and_uncommitted_writes_shape_the_baseline() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let k = key_in(&topo, 0);
        let master = topo.master(0).0;
        // Txn 1 never commits (no decision recorded): its value is never
        // admissible, and the seed stays the baseline.
        let specs = vec![spec(1, &k, 10)];
        let mut metrics = Metrics::default();
        observe(&mut metrics, 100, master, 5000, &k, Some(7));
        let seeds = vec![(k.clone(), Value::from_u64(7))];
        assert!(check_read_history(&topo, &seeds, &specs, &metrics).is_empty());

        observe(&mut metrics, 101, master, 6000, &k, Some(10));
        let violations = check_read_history(&topo, &seeds, &specs, &metrics);
        assert_eq!(violations.len(), 1, "uncommitted write observed");
    }
}
