//! Master leases for linearizable local reads (the LARK argument).
//!
//! A shard master may serve a read straight from its committed store —
//! without even touching the lock table — as long as it can prove no other
//! site could have committed a write it has not seen. In this replication
//! scheme every write commits *through* the master, so the only hazard is a
//! partition that cuts the master off while the rest of the group elects a
//! new configuration. The lease closes exactly that hole: the master
//! periodically asks every replica of the shard for a time-bounded promise
//! (the ack arms a grant lasting [`LeaseConfig::duration`] ticks). While
//! every replica's grant is live the master is provably connected to the
//! whole group and serves lease reads; when a partition swallows the
//! renewals the grants lapse and reads fall back to the shared-lock path.
//!
//! The lease fast path still probes `LockTable::is_locked` per key: a
//! locked key means a commit round is in flight whose coordinator may
//! already have acked the client, so a lock-free snapshot could read
//! backwards in time. The probe is read-only — no queueing, no allocation —
//! so the fast path does zero lock-table mutation.

use ptp_simnet::{SimTime, SiteId};
use std::collections::BTreeMap;

/// Lease timing knobs, in simulation ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// Renewal period: how often a master solicits acks from its replicas.
    pub period: u64,
    /// Grant lifetime: how long one ack keeps a replica's grant live. Must
    /// exceed `period` (plus a round trip) or the lease flaps between
    /// renewals.
    pub duration: u64,
}

impl LeaseConfig {
    /// A config with `duration` ticks of validity renewed every `period`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < period < duration`.
    pub fn new(period: u64, duration: u64) -> LeaseConfig {
        assert!(period > 0 && duration > period, "need 0 < period < duration");
        LeaseConfig { period, duration }
    }
}

/// Master-side lease state: one grant expiry per `(shard, replica)`.
#[derive(Debug, Default)]
pub struct LeaseTable {
    grants: BTreeMap<(usize, u16), SimTime>,
}

impl LeaseTable {
    /// An empty table (no grants — every lease check fails until acks
    /// arrive).
    pub fn new() -> LeaseTable {
        LeaseTable::default()
    }

    /// Records a replica's ack: the grant for `(shard, replica)` now lasts
    /// until `expiry`.
    pub fn grant(&mut self, shard: usize, replica: SiteId, expiry: SimTime) {
        self.grants.insert((shard, replica.0), expiry);
    }

    /// True if every listed replica's grant is live at `now`. An empty
    /// replica list (replication factor 1) is trivially valid — the master
    /// IS the group.
    pub fn valid(&self, shard: usize, replicas: &[SiteId], now: SimTime) -> bool {
        replicas.iter().all(|r| self.grants.get(&(shard, r.0)).is_some_and(|e| *e >= now))
    }

    /// Drops every grant (crash recovery: leases are volatile state).
    pub fn clear(&mut self) {
        self.grants.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_valid_only_while_every_replica_grant_is_live() {
        let mut t = LeaseTable::new();
        let replicas = [SiteId(1), SiteId(2)];
        assert!(!t.valid(0, &replicas, SimTime(10)), "no grants yet");
        t.grant(0, SiteId(1), SimTime(100));
        assert!(!t.valid(0, &replicas, SimTime(10)), "replica 2 missing");
        t.grant(0, SiteId(2), SimTime(50));
        assert!(t.valid(0, &replicas, SimTime(50)), "inclusive expiry");
        assert!(!t.valid(0, &replicas, SimTime(51)), "replica 2 lapsed");
        t.grant(0, SiteId(2), SimTime(200));
        assert!(t.valid(0, &replicas, SimTime(51)), "renewal restores it");
    }

    #[test]
    fn replication_factor_one_is_trivially_valid() {
        let t = LeaseTable::new();
        assert!(t.valid(3, &[], SimTime(0)));
    }

    #[test]
    fn grants_are_per_shard() {
        let mut t = LeaseTable::new();
        t.grant(0, SiteId(1), SimTime(100));
        assert!(t.valid(0, &[SiteId(1)], SimTime(10)));
        assert!(!t.valid(1, &[SiteId(1)], SimTime(10)));
    }

    #[test]
    #[should_panic(expected = "period < duration")]
    fn degenerate_config_rejected() {
        let _ = LeaseConfig::new(500, 500);
    }
}
