//! Transaction routing: compiling key-addressed transactions into
//! per-group commit-protocol plans.
//!
//! This is the router layer of the sharded store. Every submitted
//! [`ShardTxnSpec`] is classified at build time:
//!
//! * **single-shard** — all keys land in one shard; the commit protocol
//!   runs *inside* that shard's replica group (master = the group's first
//!   member), exactly like a small [`ptp_ddb::DbCluster`];
//! * **cross-shard** — keys span several shards; a **top-level** instance
//!   of the same commit protocol runs over the involved groups' masters
//!   (coordinator = the lowest involved shard's master), so a partition
//!   severing two shards' groups is terminated — or measurably blocked —
//!   by the paper's protocol one layer up. When a group master decides, it
//!   ships the outcome (and, on commit, the shard's writes) to its replicas
//!   that were not part of the top-level group.

use crate::topology::ShardTopology;
use ptp_ddb::value::{Key, TxnId, WriteOp};
use ptp_simnet::SiteId;
use std::collections::BTreeMap;

/// A transaction addressed by key, before routing: the shard map decides
/// which sites it touches.
#[derive(Debug, Clone)]
pub struct ShardTxnSpec {
    /// Globally unique id.
    pub id: TxnId,
    /// The write set, routed per key by [`ShardTopology::shard_of`].
    pub writes: Vec<WriteOp>,
}

/// One transaction's compiled routing: which shards it touches, which sites
/// run its commit protocol (and under which virtual identities), what each
/// participant stages, and which replicas get the decided outcome shipped.
#[derive(Debug, Clone)]
pub struct TxnPlan {
    /// The transaction.
    pub id: TxnId,
    /// Involved shards, ascending.
    pub shards: Vec<usize>,
    /// The commit-protocol group: physical sites, master/coordinator first.
    /// Participants run under *virtual* ids `0..group.len()` — index in
    /// this vector — so the unmodified protocol machinery coordinates any
    /// subset of the cluster.
    pub group: Vec<SiteId>,
    /// What each protocol participant stages: the union of the write sets
    /// of every involved shard whose replica group contains that site.
    pub writes: BTreeMap<u16, Vec<WriteOp>>,
    /// Outcome shipping, keyed by shipper: when that group master decides,
    /// it sends each listed replica the decision (plus, on commit, the
    /// replica's **full** write set from [`TxnPlan::replica_writes`]).
    /// Targets are involved-group replicas outside the protocol group. A
    /// replica serving several involved shards is listed under *each* of
    /// their masters — every ship carries everything the replica needs, so
    /// the first arrival installs the complete outcome and later arrivals
    /// are true duplicates (and a replica reachable from any one involved
    /// master still converges).
    pub ships: BTreeMap<u16, Vec<SiteId>>,
    /// Per out-of-group replica: the union of the write sets of every
    /// involved shard whose group contains it (in shard order — the same
    /// order participants stage).
    pub replica_writes: BTreeMap<u16, Vec<WriteOp>>,
    /// Per-shard write sets, in submission order.
    pub shard_writes: BTreeMap<usize, Vec<WriteOp>>,
}

impl TxnPlan {
    /// Routes `spec` through `topology`.
    ///
    /// # Panics
    ///
    /// Panics if the write set is empty (nothing to route).
    pub fn compile(topology: &ShardTopology, spec: &ShardTxnSpec) -> TxnPlan {
        assert!(!spec.writes.is_empty(), "{} has an empty write set", spec.id);
        let mut shard_writes: BTreeMap<usize, Vec<WriteOp>> = BTreeMap::new();
        for w in &spec.writes {
            shard_writes.entry(topology.shard_of(&w.key)).or_default().push(w.clone());
        }
        let shards: Vec<usize> = shard_writes.keys().copied().collect();

        let group: Vec<SiteId> = if shards.len() == 1 {
            topology.group(shards[0]).to_vec()
        } else {
            // Masters of the involved shards, in shard order, deduplicated
            // (overlapping groups can share a master).
            let mut masters = Vec::new();
            for &s in &shards {
                let m = topology.master(s);
                if !masters.contains(&m) {
                    masters.push(m);
                }
            }
            masters
        };

        let mut writes: BTreeMap<u16, Vec<WriteOp>> = BTreeMap::new();
        for &site in &group {
            let mut local = Vec::new();
            for &s in &shards {
                if topology.group(s).contains(&site) {
                    local.extend(shard_writes[&s].iter().cloned());
                }
            }
            writes.insert(site.0, local);
        }

        let mut ships: BTreeMap<u16, Vec<SiteId>> = BTreeMap::new();
        let mut replica_writes: BTreeMap<u16, Vec<WriteOp>> = BTreeMap::new();
        if shards.len() > 1 {
            for &s in &shards {
                let master = topology.master(s);
                for &replica in topology.group(s) {
                    if !group.contains(&replica) {
                        let targets = ships.entry(master.0).or_default();
                        if !targets.contains(&replica) {
                            targets.push(replica);
                        }
                        replica_writes.entry(replica.0).or_default();
                    }
                }
            }
            // Each out-of-group replica needs every involved shard it
            // serves, regardless of which master's ship reaches it first.
            for (&replica, local) in &mut replica_writes {
                for &s in &shards {
                    if topology.group(s).contains(&SiteId(replica)) {
                        local.extend(shard_writes[&s].iter().cloned());
                    }
                }
            }
        }

        TxnPlan { id: spec.id, shards, group, writes, ships, replica_writes, shard_writes }
    }

    /// True if the transaction spans more than one shard.
    pub fn is_cross_shard(&self) -> bool {
        self.shards.len() > 1
    }

    /// The stage-attribution path tag for this plan's write route
    /// (`"write-single"` / `"write-cross"`) — a `&'static str` so span
    /// tables can key on it without allocating.
    pub fn path_tag(&self) -> &'static str {
        if self.is_cross_shard() {
            "write-cross"
        } else {
            "write-single"
        }
    }

    /// The protocol group's master (the top-level coordinator for
    /// cross-shard transactions).
    pub fn master(&self) -> SiteId {
        self.group[0]
    }

    /// `site`'s virtual id within the protocol group, if it participates.
    pub fn virtual_of(&self, site: SiteId) -> Option<usize> {
        self.group.iter().position(|&s| s == site)
    }
}

/// A read-only transaction addressed by key, before routing.
#[derive(Debug, Clone)]
pub struct ShardReadSpec {
    /// Globally unique id — disjoint from write-transaction ids.
    pub id: TxnId,
    /// Keys to read, routed per key by [`ShardTopology::shard_of`].
    pub keys: Vec<Key>,
}

/// One read-only transaction's compiled routing. Single-shard reads are
/// served at the shard master under shared locks with **no protocol
/// round** (group = the master alone); cross-shard reads run a top-level
/// instance of the commit protocol over the involved masters so the
/// snapshot is atomic across shards. Replicas never serve reads — only a
/// master's store is guaranteed current (the LARK master-lease argument).
#[derive(Debug, Clone)]
pub struct ReadPlan {
    /// The read transaction.
    pub id: TxnId,
    /// Involved shards, ascending.
    pub shards: Vec<usize>,
    /// The serving group: involved masters, coordinator first. A
    /// single-shard read's group is just its master — no protocol runs.
    pub group: Vec<SiteId>,
    /// Per serving site: the keys it snapshots (the keys of every involved
    /// shard that site masters).
    pub keys: BTreeMap<u16, Vec<Key>>,
}

impl ReadPlan {
    /// Routes `spec` through `topology`.
    ///
    /// # Panics
    ///
    /// Panics if the key set is empty (nothing to read).
    pub fn compile(topology: &ShardTopology, spec: &ShardReadSpec) -> ReadPlan {
        assert!(!spec.keys.is_empty(), "{} has an empty key set", spec.id);
        let mut shard_keys: BTreeMap<usize, Vec<Key>> = BTreeMap::new();
        for k in &spec.keys {
            shard_keys.entry(topology.shard_of(k)).or_default().push(k.clone());
        }
        let shards: Vec<usize> = shard_keys.keys().copied().collect();

        let mut group = Vec::new();
        for &s in &shards {
            let m = topology.master(s);
            if !group.contains(&m) {
                group.push(m);
            }
        }

        let mut keys: BTreeMap<u16, Vec<Key>> = BTreeMap::new();
        for &site in &group {
            let mut local = Vec::new();
            for &s in &shards {
                if topology.master(s) == site {
                    local.extend(shard_keys[&s].iter().cloned());
                }
            }
            keys.insert(site.0, local);
        }

        ReadPlan { id: spec.id, shards, group, keys }
    }

    /// True if the read spans more than one shard master.
    pub fn is_cross_shard(&self) -> bool {
        self.group.len() > 1
    }

    /// The stage-attribution path tag for this plan's read route
    /// (`"read-single"` / `"read-cross"`).
    pub fn path_tag(&self) -> &'static str {
        if self.is_cross_shard() {
            "read-cross"
        } else {
            "read-single"
        }
    }

    /// The serving master (the top-level coordinator for cross-shard
    /// reads).
    pub fn master(&self) -> SiteId {
        self.group[0]
    }

    /// `site`'s virtual id within the serving group, if it participates.
    pub fn virtual_of(&self, site: SiteId) -> Option<usize> {
        self.group.iter().position(|&s| s == site)
    }
}

/// The compiled routing of a whole workload, shared read-only by every
/// site actor of the cluster.
#[derive(Debug)]
pub struct PlanTable {
    /// The shard map the plans were compiled against.
    pub topology: ShardTopology,
    plans: BTreeMap<TxnId, TxnPlan>,
    reads: BTreeMap<TxnId, ReadPlan>,
}

impl PlanTable {
    /// Compiles every spec. Duplicate transaction ids are rejected.
    pub fn compile(topology: ShardTopology, specs: &[ShardTxnSpec]) -> PlanTable {
        let mut plans = BTreeMap::new();
        for spec in specs {
            let plan = TxnPlan::compile(&topology, spec);
            assert!(plans.insert(spec.id, plan).is_none(), "duplicate {}", spec.id);
        }
        PlanTable { topology, plans, reads: BTreeMap::new() }
    }

    /// Compiles and installs a read-only workload. Read ids must not
    /// collide with each other or with write-transaction ids.
    pub fn with_reads(mut self, specs: &[ShardReadSpec]) -> PlanTable {
        for spec in specs {
            assert!(!self.plans.contains_key(&spec.id), "read id collides with write {}", spec.id);
            let plan = ReadPlan::compile(&self.topology, spec);
            assert!(self.reads.insert(spec.id, plan).is_none(), "duplicate read {}", spec.id);
        }
        self
    }

    /// The plan of `txn`, if the workload contains it.
    pub fn get(&self, txn: TxnId) -> Option<&TxnPlan> {
        self.plans.get(&txn)
    }

    /// All plans, by transaction id.
    pub fn iter(&self) -> impl Iterator<Item = (&TxnId, &TxnPlan)> {
        self.plans.iter()
    }

    /// The read plan of `txn`, if the read workload contains it.
    pub fn get_read(&self, txn: TxnId) -> Option<&ReadPlan> {
        self.reads.get(&txn)
    }

    /// All read plans, by transaction id.
    pub fn iter_reads(&self) -> impl Iterator<Item = (&TxnId, &ReadPlan)> {
        self.reads.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptp_ddb::value::{Key, Value};

    fn w(key: &str) -> WriteOp {
        WriteOp { key: Key::from(key), value: Value::from_u64(1) }
    }

    /// A key that routes to `shard` under `topo` (probed deterministically).
    fn key_in(topo: &ShardTopology, shard: usize) -> WriteOp {
        for i in 0..256 {
            let k = format!("probe-{i}");
            if topo.shard_of(&Key::from(k.as_str())) == shard {
                return w(&k);
            }
        }
        panic!("no probe key found for shard {shard}");
    }

    #[test]
    fn single_shard_txn_runs_in_its_replica_group() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let spec = ShardTxnSpec { id: TxnId(1), writes: vec![key_in(&topo, 1)] };
        let plan = TxnPlan::compile(&topo, &spec);
        assert!(!plan.is_cross_shard());
        assert_eq!(plan.group, vec![SiteId(2), SiteId(3)]);
        assert_eq!(plan.master(), SiteId(2));
        // Every group member stages the full shard write set; nothing ships.
        assert_eq!(plan.writes[&2], plan.writes[&3]);
        assert!(plan.ships.is_empty());
        assert_eq!(plan.virtual_of(SiteId(3)), Some(1));
        assert_eq!(plan.virtual_of(SiteId(0)), None);
        assert_eq!(plan.path_tag(), "write-single");
    }

    #[test]
    fn path_tags_follow_the_route_shape() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let cross = TxnPlan::compile(
            &topo,
            &ShardTxnSpec { id: TxnId(9), writes: vec![key_in(&topo, 0), key_in(&topo, 2)] },
        );
        assert_eq!(cross.path_tag(), "write-cross");
        let k0 = key_in(&topo, 0).key;
        let k2 = key_in(&topo, 2).key;
        let single =
            ReadPlan::compile(&topo, &ShardReadSpec { id: TxnId(10), keys: vec![k0.clone()] });
        assert_eq!(single.path_tag(), "read-single");
        let multi = ReadPlan::compile(&topo, &ShardReadSpec { id: TxnId(11), keys: vec![k0, k2] });
        assert_eq!(multi.path_tag(), "read-cross");
    }

    #[test]
    fn cross_shard_txn_coordinates_over_masters_and_ships_to_replicas() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let spec = ShardTxnSpec { id: TxnId(2), writes: vec![key_in(&topo, 0), key_in(&topo, 2)] };
        let plan = TxnPlan::compile(&topo, &spec);
        assert!(plan.is_cross_shard());
        assert_eq!(plan.shards, vec![0, 2]);
        // Coordinator = master of the lowest involved shard.
        assert_eq!(plan.group, vec![SiteId(0), SiteId(4)]);
        // Each master stages only its own shard's writes here (disjoint
        // groups), and ships its out-of-group replica that replica's full
        // planned write set.
        assert_eq!(plan.writes[&0].len(), 1);
        assert_eq!(plan.writes[&4].len(), 1);
        assert_eq!(plan.ships[&0], vec![SiteId(1)]);
        assert_eq!(plan.ships[&4], vec![SiteId(5)]);
        assert_eq!(plan.replica_writes[&1].len(), 1);
        assert_eq!(plan.replica_writes[&5].len(), 1);
    }

    #[test]
    fn overlapping_groups_deduplicate_masters_and_union_writes() {
        // Shards 0 and 2 share master 0 (3 shards × 2 replicas over 4 sites).
        let topo = ShardTopology::uniform(4, 3, 2);
        assert_eq!(topo.master(0), topo.master(2));
        let spec = ShardTxnSpec { id: TxnId(3), writes: vec![key_in(&topo, 0), key_in(&topo, 2)] };
        let plan = TxnPlan::compile(&topo, &spec);
        assert_eq!(plan.group, vec![SiteId(0)], "shared master listed once");
        // The shared master stages both shards' writes.
        assert_eq!(plan.writes[&0].len(), 2);
        // Site 1 replicates both shards but sits outside the top-level
        // group: it is listed ONCE as a ship target, and the single ship
        // carries both shards' writes (a per-shard ship would be dropped as
        // a duplicate by the replica after the first one installed).
        assert_eq!(plan.ships[&0], vec![SiteId(1)]);
        assert_eq!(plan.replica_writes[&1].len(), 2);
    }

    #[test]
    fn replica_of_two_masters_gets_the_full_union_from_each() {
        // Shards 0 = {0, 3} and 1 = {2, 3}: replica 3 serves both involved
        // shards but masters 0 and 2 differ. Each master lists 3 as a
        // target, and both ships carry the complete two-shard union — so
        // whichever arrives first installs everything and the other is a
        // true duplicate.
        let topo =
            ShardTopology::new(4, vec![vec![SiteId(0), SiteId(3)], vec![SiteId(2), SiteId(3)]]);
        let spec = ShardTxnSpec { id: TxnId(5), writes: vec![key_in(&topo, 0), key_in(&topo, 1)] };
        let plan = TxnPlan::compile(&topo, &spec);
        assert_eq!(plan.group, vec![SiteId(0), SiteId(2)]);
        assert_eq!(plan.ships[&0], vec![SiteId(3)]);
        assert_eq!(plan.ships[&2], vec![SiteId(3)]);
        assert_eq!(plan.replica_writes[&3].len(), 2, "each ship carries both shards");
    }

    #[test]
    fn participant_in_two_involved_groups_is_not_shipped_to() {
        // Shard 1 = {2,3}, shard 2 = {0,1} under this wrap-around layout:
        // make site 0 both shard-2 master and a shard-1 replica by hand.
        let topo =
            ShardTopology::new(4, vec![vec![SiteId(2), SiteId(3)], vec![SiteId(0), SiteId(2)]]);
        let spec = ShardTxnSpec { id: TxnId(4), writes: vec![key_in(&topo, 0), key_in(&topo, 1)] };
        let plan = TxnPlan::compile(&topo, &spec);
        assert_eq!(plan.group, vec![SiteId(2), SiteId(0)]);
        // Site 2 masters shard 0 and replicates shard 1: it stages both
        // write sets as a participant, so shard 1's master must not ship
        // to it — only to site 3 (shard 0's true out-of-group replica).
        assert_eq!(plan.writes[&2].len(), 2);
        assert_eq!(plan.ships.get(&0), None, "no out-of-group replica for shard 1");
        assert_eq!(plan.ships[&2], vec![SiteId(3)]);
        assert_eq!(plan.replica_writes[&3].len(), 1, "site 3 serves only shard 0");
    }

    #[test]
    fn plan_table_compiles_and_indexes() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let specs = vec![
            ShardTxnSpec { id: TxnId(1), writes: vec![key_in(&topo, 0)] },
            ShardTxnSpec { id: TxnId(2), writes: vec![key_in(&topo, 1), key_in(&topo, 2)] },
        ];
        let table = PlanTable::compile(topo, &specs);
        assert!(table.get(TxnId(1)).is_some());
        assert!(table.get(TxnId(9)).is_none());
        assert_eq!(table.iter().count(), 2);
    }

    #[test]
    fn single_shard_read_is_served_by_its_master_alone() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let probe = key_in(&topo, 1).key;
        let spec = ShardReadSpec { id: TxnId(10), keys: vec![probe.clone()] };
        let plan = ReadPlan::compile(&topo, &spec);
        assert!(!plan.is_cross_shard());
        assert_eq!(plan.group, vec![SiteId(2)], "master only — no protocol round");
        assert_eq!(plan.keys[&2], vec![probe]);
    }

    #[test]
    fn cross_shard_read_coordinates_over_involved_masters() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let k0 = key_in(&topo, 0).key;
        let k2 = key_in(&topo, 2).key;
        let spec = ShardReadSpec { id: TxnId(11), keys: vec![k0.clone(), k2.clone()] };
        let plan = ReadPlan::compile(&topo, &spec);
        assert!(plan.is_cross_shard());
        assert_eq!(plan.group, vec![SiteId(0), SiteId(4)]);
        assert_eq!(plan.master(), SiteId(0));
        assert_eq!(plan.keys[&0], vec![k0]);
        assert_eq!(plan.keys[&4], vec![k2]);
        assert_eq!(plan.virtual_of(SiteId(4)), Some(1));
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn read_id_colliding_with_write_id_rejected() {
        let topo = ShardTopology::uniform(4, 2, 2);
        let write = ShardTxnSpec { id: TxnId(1), writes: vec![key_in(&topo, 0)] };
        let read = ShardReadSpec { id: TxnId(1), keys: vec![key_in(&topo, 0).key] };
        let _ = PlanTable::compile(topo, &[write]).with_reads(&[read]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_txn_ids_rejected() {
        let topo = ShardTopology::uniform(4, 2, 2);
        let specs = vec![
            ShardTxnSpec { id: TxnId(1), writes: vec![w("a")] },
            ShardTxnSpec { id: TxnId(1), writes: vec![w("b")] },
        ];
        let _ = PlanTable::compile(topo, &specs);
    }
}
