//! Shard topology: the keyspace → shard → replica-group mapping.
//!
//! A [`ShardTopology`] splits the keyspace into `S` shards and maps each
//! shard to a *replica group* of sites, all hosted in one simulation. The
//! first member of a group is its **master** (the paper's site 1 — every
//! intra-group commit protocol runs with it as coordinator). Groups may
//! overlap: one site can serve several shards, which is how small clusters
//! host many shards (per-key replica groups à la partial replication).

use ptp_ddb::value::Key;
use ptp_simnet::SiteId;

/// The shard map: `S` replica groups over `n` sites, plus the key router.
///
/// # Examples
///
/// ```
/// use ptp_shard::ShardTopology;
/// use ptp_ddb::value::Key;
/// use ptp_simnet::SiteId;
///
/// // 3 shards over 6 sites, 2 replicas each: groups {0,1}, {2,3}, {4,5}.
/// let topo = ShardTopology::uniform(6, 3, 2);
/// assert_eq!(topo.shards(), 3);
/// assert_eq!(topo.group(1), &[SiteId(2), SiteId(3)]);
/// assert_eq!(topo.master(2), SiteId(4));
/// // Every key routes to exactly one shard, deterministically.
/// let s = topo.shard_of(&Key::from("acct-a"));
/// assert_eq!(topo.shard_of(&Key::from("acct-a")), s);
/// assert!(s < 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTopology {
    /// Total sites in the cluster.
    n: usize,
    /// Replica group per shard, master first.
    groups: Vec<Vec<SiteId>>,
}

impl ShardTopology {
    /// A topology from explicit replica groups (master first in each).
    ///
    /// # Panics
    ///
    /// Panics if there are no groups, a group is empty, a member is outside
    /// `0..n`, or a group lists a site twice.
    pub fn new(n: usize, groups: Vec<Vec<SiteId>>) -> ShardTopology {
        assert!(!groups.is_empty(), "a topology needs at least one shard");
        for (shard, group) in groups.iter().enumerate() {
            assert!(!group.is_empty(), "shard {shard} has an empty replica group");
            for site in group {
                assert!(site.index() < n, "shard {shard} lists {site} outside 0..{n}");
            }
            let mut dedup = group.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), group.len(), "shard {shard} lists a site twice");
        }
        ShardTopology { n, groups }
    }

    /// `shards` shards over `n` sites, `replication` replicas each, laid out
    /// round-robin: shard `i`'s group is sites `i*replication .. +replication`
    /// (mod `n`), so groups tile the cluster and overlap exactly when
    /// `shards * replication > n`. With `shards == 1` and `replication == n`
    /// this is the fully-replicated flat cluster [`ptp_ddb::DbCluster`]
    /// models — the configuration the equivalence suite pins.
    pub fn uniform(n: usize, shards: usize, replication: usize) -> ShardTopology {
        assert!(replication >= 1 && replication <= n, "replication must be in 1..=n");
        let groups = (0..shards)
            .map(|i| (0..replication).map(|j| SiteId(((i * replication + j) % n) as u16)).collect())
            .collect();
        ShardTopology::new(n, groups)
    }

    /// Total sites.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.groups.len()
    }

    /// The replica group of `shard`, master first.
    pub fn group(&self, shard: usize) -> &[SiteId] {
        &self.groups[shard]
    }

    /// The master of `shard`'s replica group.
    pub fn master(&self, shard: usize) -> SiteId {
        self.groups[shard][0]
    }

    /// The shard a key belongs to: FNV-1a over the key bytes, mod `S` —
    /// stable across runs and processes (no random hasher state).
    pub fn shard_of(&self, key: &Key) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in key.0.as_ref() {
            h ^= *b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        (h % self.groups.len() as u64) as usize
    }

    /// Shards whose replica group contains `site`, ascending.
    pub fn shards_of_site(&self, site: SiteId) -> Vec<usize> {
        (0..self.shards()).filter(|&s| self.groups[s].contains(&site)).collect()
    }

    /// `per_shard` keys per shard, found by probing the router with
    /// `key-{i}` names: a deterministic workload vocabulary shared by the
    /// bench binaries and the live load driver. `pools[s]` holds keys that
    /// route to shard `s`, in discovery order.
    pub fn key_pool(&self, per_shard: usize) -> Vec<Vec<Key>> {
        let mut pools: Vec<Vec<Key>> = vec![Vec::new(); self.shards()];
        let mut i = 0u64;
        while pools.iter().any(|p| p.len() < per_shard) {
            let key = Key::from(format!("key-{i}"));
            let shard = self.shard_of(&key);
            if pools[shard].len() < per_shard {
                pools[shard].push(key);
            }
            i += 1;
        }
        pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tiles_without_overlap_when_it_fits() {
        let topo = ShardTopology::uniform(6, 3, 2);
        assert_eq!(topo.group(0), &[SiteId(0), SiteId(1)]);
        assert_eq!(topo.group(1), &[SiteId(2), SiteId(3)]);
        assert_eq!(topo.group(2), &[SiteId(4), SiteId(5)]);
        assert_eq!(topo.shards_of_site(SiteId(3)), vec![1]);
    }

    #[test]
    fn uniform_overlaps_when_oversubscribed() {
        // 3 shards × 2 replicas over 4 sites wraps around.
        let topo = ShardTopology::uniform(4, 3, 2);
        assert_eq!(topo.group(2), &[SiteId(0), SiteId(1)]);
        assert_eq!(topo.shards_of_site(SiteId(0)), vec![0, 2]);
    }

    #[test]
    fn single_shard_full_replication_is_the_flat_cluster() {
        let topo = ShardTopology::uniform(4, 1, 4);
        assert_eq!(topo.group(0), &[SiteId(0), SiteId(1), SiteId(2), SiteId(3)]);
        assert_eq!(topo.master(0), SiteId(0));
        assert_eq!(topo.shard_of(&Key::from("anything")), 0);
    }

    #[test]
    fn shard_of_is_stable_and_spreads() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let mut hit = [false; 3];
        for i in 0..32 {
            let key = Key::from(format!("k{i}"));
            let s = topo.shard_of(&key);
            assert_eq!(topo.shard_of(&key), s, "routing must be deterministic");
            hit[s] = true;
        }
        assert!(hit.iter().all(|h| *h), "32 keys should touch all 3 shards: {hit:?}");
    }

    #[test]
    fn key_pool_routes_back_to_its_shard() {
        let topo = ShardTopology::uniform(6, 3, 2);
        let pools = topo.key_pool(4);
        assert_eq!(pools.len(), 3);
        for (shard, pool) in pools.iter().enumerate() {
            assert_eq!(pool.len(), 4);
            for key in pool {
                assert_eq!(topo.shard_of(key), shard);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty replica group")]
    fn empty_group_rejected() {
        let _ = ShardTopology::new(3, vec![vec![SiteId(0)], vec![]]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_member_rejected() {
        let _ = ShardTopology::new(2, vec![vec![SiteId(0), SiteId(5)]]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_member_rejected() {
        let _ = ShardTopology::new(3, vec![vec![SiteId(1), SiteId(1)]]);
    }
}
