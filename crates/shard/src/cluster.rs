//! The sharded cluster driver: builds one [`crate::ShardNode`] per site,
//! routes seeds and workload through the shard map, runs everything in
//! **one** simulation — so a single partition schedule or failure spec cuts
//! across every replica group deterministically — and aggregates global
//! plus per-shard metrics.

use crate::lease::LeaseConfig;
use crate::node::{ShardNode, ShardNodeOpts};
use crate::plan::{PlanTable, ShardReadSpec, ShardTxnSpec};
use crate::topology::ShardTopology;
use ptp_ddb::cluster::CommitProtocol;
use ptp_ddb::site::{DbMsg, Metrics, ParticipantFactory, ReadPath};
use ptp_ddb::storage::Storage;
use ptp_ddb::value::{Key, TxnId, Value};
use ptp_ddb::wal::Wal;
use ptp_model::Decision;
use ptp_simnet::{
    Actor, DelayModel, NetConfig, PartitionEngine, RunReport, Simulation, SiteId, Trace,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A sharded cluster specification, mirroring [`ptp_ddb::DbCluster`] one
/// structural level up: instead of one fully-replicated site group, a
/// keyspace split over `S` replica groups.
///
/// # Examples
///
/// ```
/// use ptp_ddb::cluster::CommitProtocol;
/// use ptp_ddb::value::{Key, TxnId, Value, WriteOp};
/// use ptp_shard::{ShardCluster, ShardTopology, ShardTxnSpec};
///
/// // 3 shards × 2 replicas over 6 sites; transfer between two keys.
/// let topo = ShardTopology::uniform(6, 3, 2);
/// let (a, b) = (Key::from("acct-a"), Key::from("acct-b"));
/// let run = ShardCluster::new(topo, CommitProtocol::HuangLi)
///     .seed(a.clone(), Value::from_u64(100))
///     .seed(b.clone(), Value::from_u64(0))
///     .submit(0, ShardTxnSpec {
///         id: TxnId(1),
///         writes: vec![
///             WriteOp { key: a.clone(), value: Value::from_u64(70) },
///             WriteOp { key: b.clone(), value: Value::from_u64(30) },
///         ],
///     })
///     .run();
/// assert!(run.metrics.atomicity_violations().is_empty());
/// // Every replica of each touched shard holds the committed value.
/// for shard in &run.shards {
///     assert_eq!(shard.availability(), 1.0, "shard {}", shard.shard);
/// }
/// ```
pub struct ShardCluster {
    /// The shard map.
    pub topology: ShardTopology,
    /// The commit protocol — used both inside replica groups and for the
    /// top-level cross-shard coordinator.
    pub protocol: CommitProtocol,
    /// Initial committed data, routed to every replica of the key's shard.
    pub seed: Vec<(Key, Value)>,
    /// Client workload: `(submit tick, spec)`; each transaction is
    /// submitted at its plan's master.
    pub workload: Vec<(u64, ShardTxnSpec)>,
    /// Read-only workload: `(submit tick, spec)`; each read is submitted
    /// at its plan's serving master.
    pub read_workload: Vec<(u64, ShardReadSpec)>,
    /// Network partition schedule (cuts across all groups).
    pub partition: PartitionEngine,
    /// Message delays.
    pub delay: DelayModel,
    /// Network configuration.
    pub config: NetConfig,
    /// Site failures to inject.
    pub failures: Vec<ptp_simnet::FailureSpec>,
    /// Recycle protocol participants through per-site pools (default), or
    /// construct per transaction (the equivalence/bench baseline).
    pub reuse_participants: bool,
    /// Master-lease fast path for local reads (off by default).
    pub lease: Option<LeaseConfig>,
    /// Anti-entropy catch-up period in ticks (off by default).
    pub anti_entropy: Option<u64>,
}

/// Per-shard outcome accounting, derived from the shared [`Metrics`] after
/// the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetrics {
    /// The shard index.
    pub shard: usize,
    /// Its replica group (master first).
    pub group: Vec<SiteId>,
    /// Transactions that wrote this shard.
    pub txns: usize,
    /// Of those, how many also wrote other shards.
    pub cross_shard_txns: usize,
    /// Transactions this shard's master decided `Commit`.
    pub committed: usize,
    /// Transactions this shard's master decided `Abort`.
    pub aborted: usize,
    /// Transactions this shard's master never decided (blocked at the
    /// master by the end of the run).
    pub undecided: usize,
    /// Observed `(transaction, group member)` decisions.
    pub member_decisions: usize,
    /// Expected `(transaction, group member)` decisions
    /// (`txns × group size`).
    pub member_slots: usize,
    /// Total lock-hold ticks attributed to this shard (horizon stands in
    /// for still-held locks).
    pub lock_hold_ticks: u64,
    /// Lock-hold intervals still open at the end of the run.
    pub locks_still_held: usize,
}

impl ShardMetrics {
    /// Shard-level availability: the fraction of `(transaction, member)`
    /// slots that reached a decision. `1.0` means every replica of this
    /// shard learned the outcome of every transaction that touched it; a
    /// partition that strands replicas (or blocks the protocol) drags it
    /// down.
    pub fn availability(&self) -> f64 {
        if self.member_slots == 0 {
            return 1.0;
        }
        self.member_decisions as f64 / self.member_slots as f64
    }
}

/// Cross-shard traffic accounting, judged at each transaction's top-level
/// coordinator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrossShardReport {
    /// Cross-shard transactions submitted.
    pub submitted: usize,
    /// Coordinator decided `Commit`.
    pub committed: usize,
    /// Coordinator decided `Abort`.
    pub aborted: usize,
    /// Coordinator never decided (blocked).
    pub blocked: usize,
}

impl CrossShardReport {
    /// Abort rate among decided cross-shard transactions.
    pub fn abort_rate(&self) -> f64 {
        let decided = self.committed + self.aborted;
        if decided == 0 {
            return 0.0;
        }
        self.aborted as f64 / decided as f64
    }
}

/// Read-path accounting, judged at each read plan's serving master.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Read-only transactions actually submitted (a crashed master never
    /// submits its queued reads).
    pub submitted: usize,
    /// Served on the master-lease fast path (no locks, no protocol).
    pub lease: usize,
    /// Served locally under shared locks (no protocol round).
    pub lock_local: usize,
    /// Served through a top-level cross-shard protocol round.
    pub protocol: usize,
    /// Aborted by the protocol round.
    pub aborted: usize,
    /// Submitted but never served nor aborted (parked or blocked at the
    /// horizon).
    pub blocked: usize,
}

impl ReadReport {
    /// Total reads served, on any path.
    pub fn served(&self) -> usize {
        self.lease + self.lock_local + self.protocol
    }

    /// Fraction of served reads that skipped the commit protocol entirely.
    pub fn fast_fraction(&self) -> f64 {
        let served = self.served();
        if served == 0 {
            return 0.0;
        }
        (self.lease + self.lock_local) as f64 / served as f64
    }
}

/// Everything a sharded run produces.
pub struct ShardRun {
    /// Global decisions, submissions, lock-hold intervals (all sites).
    pub metrics: Metrics,
    /// Per-shard outcome accounting.
    pub shards: Vec<ShardMetrics>,
    /// Cross-shard traffic accounting.
    pub cross_shard: CrossShardReport,
    /// Read-path accounting.
    pub reads: ReadReport,
    /// Full network trace.
    pub trace: Trace,
    /// Simulator report.
    pub report: RunReport,
    /// Final committed storage per site.
    pub storages: Vec<Storage>,
    /// Final write-ahead log per site.
    pub wals: Vec<Wal>,
    /// Transactions with a commit protocol still in flight per site.
    pub blocked: Vec<Vec<TxnId>>,
    /// Protocol participants constructed across all sites and pools.
    pub participants_constructed: usize,
    /// Pool acquisitions served off free-lists.
    pub participants_reused: usize,
}

impl ShardCluster {
    /// A fresh cluster over `topology` with no seed data and no workload.
    pub fn new(topology: ShardTopology, protocol: CommitProtocol) -> ShardCluster {
        ShardCluster {
            topology,
            protocol,
            seed: Vec::new(),
            workload: Vec::new(),
            read_workload: Vec::new(),
            partition: PartitionEngine::always_connected(),
            delay: DelayModel::Fixed(700),
            config: NetConfig::default(),
            failures: Vec::new(),
            reuse_participants: true,
            lease: None,
            anti_entropy: None,
        }
    }

    /// Constructs one participant per transaction instead of pooling.
    pub fn construct_per_txn(mut self) -> ShardCluster {
        self.reuse_participants = false;
        self
    }

    /// Seeds a key at every replica of its shard.
    pub fn seed(mut self, key: Key, value: Value) -> ShardCluster {
        self.seed.push((key, value));
        self
    }

    /// Adds a transaction submitted at tick `at` (at its plan's master).
    pub fn submit(mut self, at: u64, spec: ShardTxnSpec) -> ShardCluster {
        self.workload.push((at, spec));
        self
    }

    /// Adds a read-only transaction submitted at tick `at` (at its plan's
    /// serving master). Read ids must be disjoint from write ids.
    pub fn submit_read(mut self, at: u64, spec: ShardReadSpec) -> ShardCluster {
        self.read_workload.push((at, spec));
        self
    }

    /// Enables the master-lease fast path: masters renew replica grants
    /// every `period` ticks, each ack arming a `duration`-tick grant.
    pub fn leases(mut self, period: u64, duration: u64) -> ShardCluster {
        self.lease = Some(LeaseConfig::new(period, duration));
        self
    }

    /// Enables anti-entropy catch-up: replicas poll their shard master
    /// every `period` ticks for missed decisions and a version-stamped
    /// delta.
    pub fn anti_entropy(mut self, period: u64) -> ShardCluster {
        self.anti_entropy = Some(period);
        self
    }

    /// Sets the partition schedule.
    pub fn partition(mut self, partition: PartitionEngine) -> ShardCluster {
        self.partition = partition;
        self
    }

    /// Sets the delay model.
    pub fn delay(mut self, delay: DelayModel) -> ShardCluster {
        self.delay = delay;
        self
    }

    /// Injects a site failure (crash or crash-recover).
    pub fn fail(mut self, spec: ptp_simnet::FailureSpec) -> ShardCluster {
        self.failures.push(spec);
        self
    }

    /// Runs the cluster to quiescence (or the horizon).
    pub fn run(self) -> ShardRun {
        let n = self.topology.sites();
        let specs: Vec<ShardTxnSpec> = self.workload.iter().map(|(_, spec)| spec.clone()).collect();
        let read_specs: Vec<ShardReadSpec> =
            self.read_workload.iter().map(|(_, spec)| spec.clone()).collect();
        let plans =
            Rc::new(PlanTable::compile(self.topology.clone(), &specs).with_reads(&read_specs));

        // Route seeds: every replica of the key's shard holds it.
        let mut seeds: BTreeMap<u16, Storage> = BTreeMap::new();
        for (key, value) in &self.seed {
            let shard = self.topology.shard_of(key);
            for site in self.topology.group(shard) {
                seeds.entry(site.0).or_default().seed(key.clone(), value.clone());
            }
        }

        // Route submissions to each plan's master, preserving order
        // (reads after writes at each site, each in submission order).
        let mut workloads: Vec<Vec<(u64, TxnId)>> = vec![Vec::new(); n];
        for (at, spec) in &self.workload {
            let master = plans.get(spec.id).expect("just compiled").master();
            workloads[master.index()].push((*at, spec.id));
        }
        for (at, spec) in &self.read_workload {
            let master = plans.get_read(spec.id).expect("just compiled").master();
            workloads[master.index()].push((*at, spec.id));
        }

        let metrics = Rc::new(RefCell::new(Metrics::default()));
        let builder = self.protocol.participant_builder();
        let factory = if self.reuse_participants {
            ParticipantFactory::pooled(builder)
        } else {
            ParticipantFactory::construct_per_txn(builder)
        };

        let opts = ShardNodeOpts { lease: self.lease, anti_entropy: self.anti_entropy };
        let actors: Vec<Box<dyn Actor<DbMsg>>> = (0..n as u16)
            .map(|i| {
                Box::new(ShardNode::new(
                    SiteId(i),
                    plans.clone(),
                    factory.clone(),
                    metrics.clone(),
                    std::mem::take(&mut workloads[i as usize]),
                    seeds.remove(&i).unwrap_or_default(),
                    opts,
                )) as Box<dyn Actor<DbMsg>>
            })
            .collect();

        let horizon = self.config.max_time;
        let sim = Simulation::new(self.config, actors, self.partition, &self.delay, self.failures);
        let (actors, trace, report) = sim.run();

        let mut storages = Vec::with_capacity(n);
        let mut wals = Vec::with_capacity(n);
        let mut blocked = Vec::with_capacity(n);
        let mut participants_constructed = 0;
        let mut participants_reused = 0;
        for actor in &actors {
            let node = actor
                .as_any()
                .and_then(|a| a.downcast_ref::<ShardNode>())
                .expect("cluster actors are ShardNodes");
            storages.push(node.storage().clone());
            wals.push(node.wal().clone());
            blocked.push(node.active_txns());
            participants_constructed += node.participants_constructed();
            participants_reused += node.participants_reused();
        }
        drop(actors);
        let metrics = Rc::try_unwrap(metrics).expect("metrics uniquely owned").into_inner();

        let (shards, cross_shard) = aggregate(&plans, &metrics, horizon);
        let reads = aggregate_reads(&plans, &metrics);
        ShardRun {
            metrics,
            shards,
            cross_shard,
            reads,
            trace,
            report,
            storages,
            wals,
            blocked,
            participants_constructed,
            participants_reused,
        }
    }
}

/// Derives the per-shard and cross-shard reports from the shared metrics.
fn aggregate(
    plans: &PlanTable,
    metrics: &Metrics,
    horizon: ptp_simnet::SimTime,
) -> (Vec<ShardMetrics>, CrossShardReport) {
    let topology = &plans.topology;
    let mut shards: Vec<ShardMetrics> = (0..topology.shards())
        .map(|s| ShardMetrics {
            shard: s,
            group: topology.group(s).to_vec(),
            txns: 0,
            cross_shard_txns: 0,
            committed: 0,
            aborted: 0,
            undecided: 0,
            member_decisions: 0,
            member_slots: 0,
            lock_hold_ticks: 0,
            locks_still_held: 0,
        })
        .collect();
    let mut cross = CrossShardReport::default();

    for (txn, plan) in plans.iter() {
        let decisions = metrics.decisions.get(txn);
        if plan.is_cross_shard() {
            cross.submitted += 1;
            match decisions.and_then(|d| d.get(&plan.master().0)) {
                Some((Decision::Commit, _)) => cross.committed += 1,
                Some((Decision::Abort, _)) => cross.aborted += 1,
                None => cross.blocked += 1,
            }
        }
        for &s in &plan.shards {
            let m = &mut shards[s];
            m.txns += 1;
            if plan.is_cross_shard() {
                m.cross_shard_txns += 1;
            }
            m.member_slots += topology.group(s).len();
            match decisions.and_then(|d| d.get(&topology.master(s).0)) {
                Some((Decision::Commit, _)) => m.committed += 1,
                Some((Decision::Abort, _)) => m.aborted += 1,
                None => m.undecided += 1,
            }
            if let Some(d) = decisions {
                m.member_decisions +=
                    topology.group(s).iter().filter(|site| d.contains_key(&site.0)).count();
            }
        }
    }

    // Attribute each lock-hold interval to the first involved shard whose
    // replica group contains the holding site.
    for hold in &metrics.lock_holds {
        let Some(plan) = plans.get(hold.txn) else { continue };
        let Some(&shard) = plan.shards.iter().find(|&&s| topology.group(s).contains(&hold.site))
        else {
            continue;
        };
        let end = hold.to.unwrap_or(horizon);
        shards[shard].lock_hold_ticks += end.ticks().saturating_sub(hold.from.ticks());
        if hold.to.is_none() {
            shards[shard].locks_still_held += 1;
        }
    }

    (shards, cross)
}

/// Folds per-read outcomes into a [`ReadReport`], judging each read at its
/// plan's serving master (cross-shard commits snapshot at every member, but
/// only the coordinator's record counts the read as served).
fn aggregate_reads(plans: &PlanTable, metrics: &Metrics) -> ReadReport {
    let mut report = ReadReport::default();
    for (id, plan) in plans.iter_reads() {
        let submitted = metrics.reads_submitted.contains_key(id);
        if submitted {
            report.submitted += 1;
        }
        let master = plan.master();
        let record = metrics.reads.iter().find(|r| r.id == *id && r.site == master);
        match record.map(|r| r.path) {
            Some(ReadPath::Lease) => report.lease += 1,
            Some(ReadPath::LockLocal) => report.lock_local += 1,
            Some(ReadPath::Protocol) => report.protocol += 1,
            None if metrics.read_aborts.contains_key(id) => report.aborted += 1,
            None if submitted => report.blocked += 1,
            None => {}
        }
    }
    report
}
