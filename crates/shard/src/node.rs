//! The sharded site actor: `ptp-ddb`'s storage engine, WAL, lock table and
//! participant pools, driven by per-transaction *group routing*.
//!
//! A [`ShardNode`] is [`ptp_ddb::SiteNode`] generalized from "site 0
//! coordinates everyone" to "each transaction names its own protocol
//! group". Participants run under **virtual** site ids — index `j` within
//! the plan's group vector means virtual `SiteId(j)`, with virtual 0 the
//! master — so the unmodified protocol state machines (2PC FSA, the
//! Huang–Li termination master/slave, quorum sites) coordinate any subset
//! of the cluster at any group size. The node translates on the boundary:
//! outgoing [`Action::Send`]/[`Action::Broadcast`] targets map
//! virtual → physical through the group vector, incoming envelope sources
//! map physical → virtual.
//!
//! On top of the participant path, the node implements the cross-shard
//! outcome shipping of [`crate::plan`]: a group master that decides a
//! cross-shard transaction sends `shard-apply` (with the shard's writes) or
//! `shard-abort` to its out-of-group replicas, which install the decided
//! outcome under their own locks and WAL discipline — committed log
//! shipping, the primary-copy half of the two-level design.

use crate::plan::PlanTable;
use ptp_ddb::locks::{LockGrant, LockMode, LockTable};
use ptp_ddb::site::{DbMsg, LockHold, Metrics, ParticipantFactory, ParticipantPool};
use ptp_ddb::storage::Storage;
use ptp_ddb::value::{TxnId, WriteOp};
use ptp_ddb::wal::{Record, Wal};
use ptp_model::Decision;
use ptp_protocols::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use ptp_simnet::{Actor, Ctx, Envelope, SiteId, TimerHandle};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Message kind a group master ships to its out-of-group replicas when a
/// cross-shard transaction commits (carries the shard's write set).
pub const SHARD_APPLY: &str = "shard-apply";
/// Message kind shipped on a cross-shard abort (no writes; the replica
/// only records the outcome).
pub const SHARD_ABORT: &str = "shard-abort";

/// Timer-tag encoding, identical to `ptp_ddb::site`: protocol timers are
/// `(txn + 1) << 8 | tag`; client submission timers use this low byte.
const CLIENT_TAG: u64 = 0xfe;

/// Per-transaction protocol state at one site. The participant lives in one
/// of the node's per-`(virtual id, group size)` pools; this records where.
struct TxnSlot {
    pool: (u16, u16),
    participant: usize,
    timers: HashMap<TimerTag, TimerHandle>,
    hold_index: Option<usize>,
}

/// A transaction waiting for locks at this site.
enum Parked {
    /// An in-flight xact: the commit protocol has not started, so the
    /// master's timeout will abort the transaction if the wait outlasts it.
    Xact { from: SiteId, writes: Vec<WriteOp> },
    /// A *decided* cross-shard commit shipped by a group master: it must
    /// apply as soon as the locks free up (the decision is already durable
    /// at the master — there is nothing left to vote on).
    Apply { writes: Vec<WriteOp> },
}

/// A sharded database site.
pub struct ShardNode {
    me: SiteId,
    plans: Rc<PlanTable>,
    factory: ParticipantFactory,
    /// One participant arena per `(virtual id, group size)` this site plays:
    /// a site can be slave 2 of its own 3-replica group and coordinator of a
    /// 2-master top level at once, and the machines are not interchangeable.
    pools: BTreeMap<(u16, u16), ParticipantPool>,
    storage: Storage,
    wal: Wal,
    locks: LockTable,
    metrics: Rc<RefCell<Metrics>>,
    slots: BTreeMap<TxnId, TxnSlot>,
    parked: BTreeMap<TxnId, Parked>,
    finished: BTreeMap<TxnId, Decision>,
    /// Transactions this site submits (it is their plan's master): `(tick,
    /// txn)` in submission order.
    workload: Vec<(u64, TxnId)>,
}

impl ShardNode {
    /// Creates a site. `workload` holds the submissions whose plans name
    /// this site as master/coordinator.
    pub fn new(
        me: SiteId,
        plans: Rc<PlanTable>,
        factory: ParticipantFactory,
        metrics: Rc<RefCell<Metrics>>,
        workload: Vec<(u64, TxnId)>,
        storage: Storage,
    ) -> ShardNode {
        assert!(me.index() < plans.topology.sites());
        for (_, txn) in &workload {
            let plan = plans.get(*txn).expect("workload transactions are planned");
            assert_eq!(plan.master(), me, "{txn} submitted away from its master");
        }
        ShardNode {
            me,
            plans,
            factory,
            pools: BTreeMap::new(),
            storage,
            wal: Wal::new(),
            locks: LockTable::new(),
            metrics,
            slots: BTreeMap::new(),
            parked: BTreeMap::new(),
            finished: BTreeMap::new(),
            workload,
        }
    }

    /// Read access to the committed store (post-run inspection).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Read access to the WAL (post-run inspection).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Still-active (undecided, protocol in flight) transactions here.
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.slots.keys().copied().collect()
    }

    /// Participants constructed across all of this site's pools.
    pub fn participants_constructed(&self) -> usize {
        self.pools.values().map(ParticipantPool::constructed).sum()
    }

    /// Pool acquisitions served off free-lists across all pools.
    pub fn participants_reused(&self) -> usize {
        self.pools.values().map(ParticipantPool::reused).sum()
    }

    fn apply_actions(&mut self, txn: TxnId, actions: Vec<Action>, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        let Some(plan) = plans.get(txn) else { return };
        let my_v = plan.virtual_of(self.me);
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let dst = plan.group[to.index()];
                    let writes = self.xact_writes_for(plan, &msg, dst, my_v);
                    ctx.send(dst, DbMsg { txn, inner: msg, writes });
                }
                Action::Broadcast { msg } => {
                    for (v, &dst) in plan.group.iter().enumerate() {
                        if Some(v) != my_v {
                            let writes = self.xact_writes_for(plan, &msg, dst, my_v);
                            ctx.send(dst, DbMsg { txn, inner: msg, writes });
                        }
                    }
                }
                Action::SetTimer { t_units, tag } => {
                    let raw = ((txn.0 as u64 + 1) << 8) | tag.encode();
                    let handle = ctx.set_timer(ctx.t(t_units), raw);
                    if let Some(slot) = self.slots.get_mut(&txn) {
                        if let Some(old) = slot.timers.insert(tag, handle) {
                            ctx.cancel_timer(old);
                        }
                    }
                }
                Action::CancelTimer { tag } => {
                    if let Some(slot) = self.slots.get_mut(&txn) {
                        if let Some(old) = slot.timers.remove(&tag) {
                            ctx.cancel_timer(old);
                        }
                    }
                }
                Action::Decide(decision) => self.finish(txn, decision, ctx),
                Action::Note(label, detail) => ctx.note(label, detail),
            }
        }
    }

    /// The group master attaches each destination's planned write set to
    /// its xact (mirrors `SiteNode::xact_writes_for`, routed by plan).
    fn xact_writes_for(
        &self,
        plan: &crate::plan::TxnPlan,
        msg: &CommitMsg,
        dst: SiteId,
        my_v: Option<usize>,
    ) -> Option<Vec<WriteOp>> {
        if my_v != Some(0) || !matches!(msg, CommitMsg::Kind("xact")) {
            return None;
        }
        plan.writes.get(&dst.0).cloned()
    }

    /// Terminates a protocol transaction locally: WAL, storage, locks,
    /// metrics — then ships the outcome to any out-of-group replicas this
    /// site masters for.
    fn finish(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(mut slot) = self.slots.remove(&txn) else { return };
        for (_, handle) in slot.timers.drain() {
            ctx.cancel_timer(handle);
        }
        match decision {
            Decision::Commit => {
                self.wal.append_durable(Record::Commit { txn });
                self.storage.apply(txn);
                self.wal.append_durable(Record::Applied { txn });
            }
            Decision::Abort => {
                self.wal.append_durable(Record::Abort { txn });
                self.storage.discard(txn);
            }
        }
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (decision, now));
            if let Some(idx) = slot.hold_index {
                m.lock_holds[idx].to = Some(now);
            }
        }
        self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        self.finished.insert(txn, decision);
        self.ship(txn, decision, ctx);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// Ships a decided cross-shard outcome to this master's out-of-group
    /// replicas (no-op for single-shard transactions and non-masters).
    /// Every ship carries the replica's *complete* planned write set, so a
    /// replica serving several involved shards installs everything from
    /// whichever master's ship arrives first and drops the rest as
    /// duplicates.
    fn ship(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        let Some(plan) = plans.get(txn) else { return };
        let Some(targets) = plan.ships.get(&self.me.0) else { return };
        for replica in targets {
            let (kind, writes) = match decision {
                Decision::Commit => (SHARD_APPLY, plan.replica_writes.get(&replica.0).cloned()),
                Decision::Abort => (SHARD_ABORT, None),
            };
            ctx.send(*replica, DbMsg { txn, inner: CommitMsg::Kind(kind), writes });
        }
    }

    /// Attempts to restart a parked transaction whose locks may now be free.
    fn try_unpark(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(parked) = self.parked.remove(&txn) else { return };
        let writes = match &parked {
            Parked::Xact { writes, .. } | Parked::Apply { writes } => writes,
        };
        let all_held = writes.iter().all(|w| self.locks.holds(txn, &w.key, LockMode::Exclusive));
        if !all_held {
            self.parked.insert(txn, parked);
            return;
        }
        match parked {
            Parked::Xact { from, writes } => self.begin_local(txn, from, writes, ctx),
            Parked::Apply { writes } => self.do_apply(txn, writes, ctx),
        }
    }

    /// Locks held: stage the writes and start the commit protocol (or, for
    /// a sole-member group, decide on the spot — there is no one to poll).
    fn begin_local(
        &mut self,
        txn: TxnId,
        from: SiteId,
        writes: Vec<WriteOp>,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        self.wal.flush();
        self.storage.stage(txn, writes);

        let hold_index = {
            let mut m = self.metrics.borrow_mut();
            m.lock_holds.push(LockHold { site: self.me, txn, from: ctx.now(), to: None });
            Some(m.lock_holds.len() - 1)
        };

        let plans = self.plans.clone();
        let plan = plans.get(txn).expect("admitted transactions are planned");
        let k = plan.group.len();
        let my_v = plan.virtual_of(self.me).expect("participants are group members");

        if k == 1 {
            // A replication-1 shard (or a cross-shard group that collapsed
            // to one shared master): the only voter is this site, so the
            // transaction commits locally and ships straight away.
            self.complete_sole(txn, hold_index, ctx);
            return;
        }

        let pool_key = (my_v as u16, k as u16);
        let factory = self.factory.clone();
        let pool =
            self.pools.entry(pool_key).or_insert_with(|| factory.pool(SiteId(my_v as u16), k));
        let slot = pool.acquire(Vote::Yes);
        let mut out = Vec::new();
        let participant = pool.get_mut(slot);
        participant.start(&mut out);
        if my_v != 0 {
            let from_v = plan.virtual_of(from).unwrap_or(0);
            participant.on_msg(SiteId(from_v as u16), &CommitMsg::Kind("xact"), &mut out);
        }
        self.slots.insert(
            txn,
            TxnSlot { pool: pool_key, participant: slot, timers: HashMap::new(), hold_index },
        );
        self.apply_actions(txn, out, ctx);
    }

    /// Commits a staged transaction whose protocol group is this site alone.
    fn complete_sole(&mut self, txn: TxnId, hold_index: Option<usize>, ctx: &mut Ctx<'_, DbMsg>) {
        self.wal.append_durable(Record::Commit { txn });
        self.storage.apply(txn);
        self.wal.append_durable(Record::Applied { txn });
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (Decision::Commit, now));
            if let Some(idx) = hold_index {
                m.lock_holds[idx].to = Some(now);
            }
        }
        self.finished.insert(txn, Decision::Commit);
        self.ship(txn, Decision::Commit, ctx);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// A brand-new xact arrived (or this master submits one): acquire locks
    /// or park.
    fn admit_xact(
        &mut self,
        txn: TxnId,
        from: SiteId,
        writes: Vec<WriteOp>,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            // Duplicate delivery (see SiteNode::admit_xact for why the
            // `parked` guard is load-bearing).
            return;
        }
        if self.plans.get(txn).is_none() {
            return;
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.begin_local(txn, from, writes, ctx);
        } else {
            ctx.note("lock-wait", txn.0 as u64);
            self.parked.insert(txn, Parked::Xact { from, writes });
        }
    }

    /// A decided cross-shard commit arrived from a group master: install it
    /// under locks (parking behind conflicting holders if need be).
    fn admit_apply(&mut self, txn: TxnId, writes: Vec<WriteOp>, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            return;
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.do_apply(txn, writes, ctx);
        } else {
            ctx.note("apply-wait", txn.0 as u64);
            self.parked.insert(txn, Parked::Apply { writes });
        }
    }

    /// Installs a shipped commit: full WAL discipline, momentary lock hold.
    fn do_apply(&mut self, txn: TxnId, writes: Vec<WriteOp>, ctx: &mut Ctx<'_, DbMsg>) {
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        self.wal.flush();
        self.storage.stage(txn, writes);
        self.wal.append_durable(Record::Commit { txn });
        self.storage.apply(txn);
        self.wal.append_durable(Record::Applied { txn });
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (Decision::Commit, now));
            // The hold opens and closes at the apply instant: the replica
            // never voted, so the interval records contention only.
            m.lock_holds.push(LockHold { site: self.me, txn, from: now, to: Some(now) });
        }
        self.finished.insert(txn, Decision::Commit);
        ctx.note("shard-applied", txn.0 as u64);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// Records a shipped abort (nothing was ever staged here).
    fn admit_abort_ship(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            return;
        }
        let now = ctx.now();
        self.metrics
            .borrow_mut()
            .decisions
            .entry(txn)
            .or_default()
            .insert(self.me.0, (Decision::Abort, now));
        self.finished.insert(txn, Decision::Abort);
        ctx.note("shard-aborted", txn.0 as u64);
    }
}

impl Actor<DbMsg> for ShardNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        for &(at, txn) in &self.workload {
            let raw = ((txn.0 as u64 + 1) << 8) | CLIENT_TAG;
            ctx.set_timer(ptp_simnet::SimDuration(at), raw);
        }
    }

    fn on_message(&mut self, env: Envelope<DbMsg>, ctx: &mut Ctx<'_, DbMsg>) {
        let DbMsg { txn, inner, writes } = env.payload;
        match inner {
            CommitMsg::Kind("xact") => {
                self.admit_xact(txn, env.src, writes.unwrap_or_default(), ctx);
                return;
            }
            CommitMsg::Kind(SHARD_APPLY) => {
                self.admit_apply(txn, writes.unwrap_or_default(), ctx);
                return;
            }
            CommitMsg::Kind(SHARD_ABORT) => {
                self.admit_abort_ship(txn, ctx);
                return;
            }
            _ => {}
        }
        if let Some(slot) = self.slots.get(&txn) {
            let (pool_key, participant) = (slot.pool, slot.participant);
            let plans = self.plans.clone();
            let Some(from_v) = plans.get(txn).and_then(|p| p.virtual_of(env.src)) else {
                return; // not a member of this transaction's group
            };
            let mut out = Vec::new();
            self.pools.get_mut(&pool_key).expect("slot pool exists").get_mut(participant).on_msg(
                SiteId(from_v as u16),
                &inner,
                &mut out,
            );
            self.apply_actions(txn, out, ctx);
        } else if self.parked.contains_key(&txn) {
            // Decision for a transaction still waiting on locks: only an
            // abort is possible for a parked xact (the master gave up on
            // us); shipped applies never race their own decision.
            if matches!(inner, CommitMsg::Kind("abort"))
                && matches!(self.parked.get(&txn), Some(Parked::Xact { .. }))
            {
                self.parked.remove(&txn);
                let promoted = self.locks.release_all(txn);
                self.finished.insert(txn, Decision::Abort);
                let now = ctx.now();
                self.metrics
                    .borrow_mut()
                    .decisions
                    .entry(txn)
                    .or_default()
                    .insert(self.me.0, (Decision::Abort, now));
                ctx.note("parked-abort", txn.0 as u64);
                // The parked txn may have held granted locks other waiters
                // queued behind; restart whatever its release promoted
                // (mirrors every other release_all site in this file).
                for t in promoted {
                    self.try_unpark(t, ctx);
                }
            }
        }
    }

    fn on_undeliverable(&mut self, env: Envelope<DbMsg>, ctx: &mut Ctx<'_, DbMsg>) {
        let DbMsg { txn, inner, .. } = env.payload;
        if let Some(slot) = self.slots.get(&txn) {
            let (pool_key, participant) = (slot.pool, slot.participant);
            let plans = self.plans.clone();
            let Some(dst_v) = plans.get(txn).and_then(|p| p.virtual_of(env.dst)) else {
                return; // a bounced ship message has no participant to tell
            };
            let mut out = Vec::new();
            self.pools.get_mut(&pool_key).expect("slot pool exists").get_mut(participant).on_ud(
                SiteId(dst_v as u16),
                &inner,
                &mut out,
            );
            self.apply_actions(txn, out, ctx);
        }
    }

    fn on_timer(&mut self, raw: u64, ctx: &mut Ctx<'_, DbMsg>) {
        let txn = TxnId((raw >> 8).saturating_sub(1) as u32);
        let low = raw & 0xff;
        if low == CLIENT_TAG {
            let plans = self.plans.clone();
            let Some(plan) = plans.get(txn) else { return };
            self.metrics.borrow_mut().submitted.insert(txn, ctx.now());
            ctx.note("txn-submitted", txn.0 as u64);
            let local = plan.writes.get(&self.me.0).cloned().unwrap_or_default();
            self.admit_xact(txn, self.me, local, ctx);
            return;
        }
        let Some(tag) = TimerTag::decode(low) else { return };
        if let Some(slot) = self.slots.get_mut(&txn) {
            slot.timers.remove(&tag);
            let (pool_key, participant) = (slot.pool, slot.participant);
            let mut out = Vec::new();
            self.pools
                .get_mut(&pool_key)
                .expect("slot pool exists")
                .get_mut(participant)
                .on_timer(tag, &mut out);
            self.apply_actions(txn, out, ctx);
        }
    }

    /// Mirror of `SiteNode::on_crash`: close the crashed site's in-flight
    /// lock-hold intervals at the crash instant (metrics bookkeeping only).
    fn on_crash(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        let now = ctx.now();
        let mut m = self.metrics.borrow_mut();
        for slot in self.slots.values() {
            if let Some(idx) = slot.hold_index {
                if m.lock_holds[idx].to.is_none() {
                    m.lock_holds[idx].to = Some(now);
                }
            }
        }
    }

    /// Crash recovery: volatile state is gone; the durable log decides what
    /// to redo and what to presume aborted (Sec. 2), exactly as at a flat
    /// site. Parked shipped applies are lost with the rest of the volatile
    /// state — the replica stays stale, which the per-shard availability
    /// metrics surface.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        for (_, slot) in std::mem::take(&mut self.slots) {
            self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        }
        self.parked.clear();
        self.locks = LockTable::new();
        self.storage.crash();
        self.wal.crash();
        let summary = ptp_ddb::recovery::recover(&mut self.storage, &mut self.wal);
        for txn in &summary.redone {
            let now = ctx.now();
            self.metrics
                .borrow_mut()
                .decisions
                .entry(*txn)
                .or_default()
                .insert(self.me.0, (Decision::Commit, now));
            self.finished.insert(*txn, Decision::Commit);
        }
        for txn in &summary.discarded {
            self.finished.insert(*txn, Decision::Abort);
        }
        ctx.note("recovered", (summary.redone.len() + summary.discarded.len()) as u64);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
