//! The sharded site actor: `ptp-ddb`'s storage engine, WAL, lock table and
//! participant pools, driven by per-transaction *group routing*.
//!
//! A [`ShardNode`] is [`ptp_ddb::SiteNode`] generalized from "site 0
//! coordinates everyone" to "each transaction names its own protocol
//! group". Participants run under **virtual** site ids — index `j` within
//! the plan's group vector means virtual `SiteId(j)`, with virtual 0 the
//! master — so the unmodified protocol state machines (2PC FSA, the
//! Huang–Li termination master/slave, quorum sites) coordinate any subset
//! of the cluster at any group size. The node translates on the boundary:
//! outgoing [`Action::Send`]/[`Action::Broadcast`] targets map
//! virtual → physical through the group vector, incoming envelope sources
//! map physical → virtual.
//!
//! On top of the participant path, the node implements the cross-shard
//! outcome shipping of [`crate::plan`]: a group master that decides a
//! cross-shard transaction sends `shard-apply` (with the shard's writes) or
//! `shard-abort` to its out-of-group replicas, which install the decided
//! outcome under their own locks and WAL discipline — committed log
//! shipping, the primary-copy half of the two-level design.

use crate::lease::{LeaseConfig, LeaseTable};
use crate::plan::PlanTable;
use ptp_ddb::locks::{LockGrant, LockMode, LockTable};
use ptp_ddb::site::{
    DbMsg, LockHold, Metrics, ParticipantFactory, ParticipantPool, ReadPath, ReadRecord,
    SyncPayload,
};
use ptp_ddb::storage::Storage;
use ptp_ddb::value::{Key, TxnId, WriteOp};
use ptp_ddb::wal::{Record, Wal};
use ptp_model::Decision;
use ptp_protocols::api::{Action, CommitMsg, Participant, TimerTag, Vote};
use ptp_simnet::{Actor, Ctx, Envelope, SimDuration, SimTime, SiteId, TimerHandle};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Message kind a group master ships to its out-of-group replicas when a
/// cross-shard transaction commits (carries the shard's write set).
pub const SHARD_APPLY: &str = "shard-apply";
/// Message kind shipped on a cross-shard abort (no writes; the replica
/// only records the outcome).
pub const SHARD_ABORT: &str = "shard-abort";
/// Lease renewal solicitation, master → replica (per shard).
pub const LEASE_RENEW: &str = "lease-renew";
/// Lease renewal ack, replica → master: arms the replica's grant.
pub const LEASE_ACK: &str = "lease-ack";
/// Anti-entropy request, stranded replica → shard master: carries the
/// replica's per-key version stamps and pending/known transaction ids.
pub const SYNC_REQ: &str = "sync-req";
/// Anti-entropy response, master → replica: missing decisions plus a
/// version-stamped key/value delta.
pub const SYNC_RESP: &str = "sync-resp";

/// Timer-tag encoding, identical to `ptp_ddb::site`: protocol timers are
/// `(txn + 1) << 8 | tag`; client submission timers use this low byte.
const CLIENT_TAG: u64 = 0xfe;

/// Client read-submission timers use this low byte (txn-encoded like
/// [`CLIENT_TAG`]).
const READ_TAG: u64 = 0xfd;

/// Lease-renewal chain timers: `(shard + 1) << 8 | LEASE_TAG`.
const LEASE_TAG: u64 = 0xfc;

/// Anti-entropy chain timers: `(shard + 1) << 8 | SYNC_TAG`.
const SYNC_TAG: u64 = 0xfb;

/// Transaction-id namespace for control traffic (lease renewals and
/// anti-entropy, keyed `CTRL_BASE + shard`). Disjoint from any workload id.
const CTRL_BASE: u32 = 0xFFFF_0000;

/// Transaction-id namespace for synthetic anti-entropy install batches
/// (`SYNC_BASE + per-node counter`), so delta installs run the normal WAL
/// discipline without colliding with planned transactions.
const SYNC_BASE: u32 = 0xFF00_0000;

/// Opt-in per-node feature knobs (all default off — a default run is
/// byte-identical to the pre-read-path cluster).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardNodeOpts {
    /// Master-lease fast path for local reads.
    pub lease: Option<LeaseConfig>,
    /// Anti-entropy catch-up: replicas poll their shard master every this
    /// many ticks for missed decisions and a version-stamped delta.
    pub anti_entropy: Option<u64>,
}

/// Per-transaction protocol state at one site. The participant lives in one
/// of the node's per-`(virtual id, group size)` pools; this records where.
struct TxnSlot {
    pool: (u16, u16),
    participant: usize,
    timers: HashMap<TimerTag, TimerHandle>,
    hold_index: Option<usize>,
}

/// A transaction waiting for locks at this site.
enum Parked {
    /// An in-flight xact: the commit protocol has not started, so the
    /// master's timeout will abort the transaction if the wait outlasts it.
    Xact { from: SiteId, writes: Vec<WriteOp> },
    /// A *decided* cross-shard commit shipped by a group master: it must
    /// apply as soon as the locks free up (the decision is already durable
    /// at the master — there is nothing left to vote on).
    Apply { writes: Vec<WriteOp> },
    /// A read-only transaction waiting for shared locks on its local keys.
    Read { from: SiteId, keys: Vec<Key> },
}

/// A sharded database site.
pub struct ShardNode {
    me: SiteId,
    plans: Rc<PlanTable>,
    factory: ParticipantFactory,
    /// One participant arena per `(virtual id, group size)` this site plays:
    /// a site can be slave 2 of its own 3-replica group and coordinator of a
    /// 2-master top level at once, and the machines are not interchangeable.
    pools: BTreeMap<(u16, u16), ParticipantPool>,
    storage: Storage,
    wal: Wal,
    locks: LockTable,
    metrics: Rc<RefCell<Metrics>>,
    slots: BTreeMap<TxnId, TxnSlot>,
    parked: BTreeMap<TxnId, Parked>,
    finished: BTreeMap<TxnId, Decision>,
    /// Transactions this site submits (it is their plan's master): `(tick,
    /// txn)` in submission order. Includes read-only transactions — the
    /// plan table tells them apart.
    workload: Vec<(u64, TxnId)>,
    /// Feature knobs (lease fast path, anti-entropy).
    opts: ShardNodeOpts,
    /// Master-side lease grants per (shard, replica).
    lease: LeaseTable,
    /// Per-key version stamps: bumped on every committed apply. Strict 2PL
    /// serializes each key's applies identically at every group member, so
    /// the counters are comparable across sites; anti-entropy installs
    /// adopt the master's stamps directly.
    versions: BTreeMap<Key, u64>,
    /// Synthetic ids handed to anti-entropy install batches.
    sync_installs: u32,
    /// Expected next fire time per maintenance chain (`raw` timer key), so
    /// a chain re-armed after crash recovery deterministically orphans any
    /// still-pending pre-crash timer.
    chain_next: HashMap<u64, SimTime>,
}

impl ShardNode {
    /// Creates a site. `workload` holds the submissions whose plans name
    /// this site as master/coordinator (reads included).
    pub fn new(
        me: SiteId,
        plans: Rc<PlanTable>,
        factory: ParticipantFactory,
        metrics: Rc<RefCell<Metrics>>,
        workload: Vec<(u64, TxnId)>,
        storage: Storage,
        opts: ShardNodeOpts,
    ) -> ShardNode {
        assert!(me.index() < plans.topology.sites());
        for (_, txn) in &workload {
            let master = match plans.get(*txn) {
                Some(plan) => plan.master(),
                None => plans.get_read(*txn).expect("workload transactions are planned").master(),
            };
            assert_eq!(master, me, "{txn} submitted away from its master");
        }
        ShardNode {
            me,
            plans,
            factory,
            pools: BTreeMap::new(),
            storage,
            wal: Wal::new(),
            locks: LockTable::new(),
            metrics,
            slots: BTreeMap::new(),
            parked: BTreeMap::new(),
            finished: BTreeMap::new(),
            workload,
            opts,
            lease: LeaseTable::new(),
            versions: BTreeMap::new(),
            sync_installs: 0,
            chain_next: HashMap::new(),
        }
    }

    /// Read access to the committed store (post-run inspection).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Read access to the WAL (post-run inspection).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Still-active (undecided, protocol in flight) transactions here.
    pub fn active_txns(&self) -> Vec<TxnId> {
        self.slots.keys().copied().collect()
    }

    /// Participants constructed across all of this site's pools.
    pub fn participants_constructed(&self) -> usize {
        self.pools.values().map(ParticipantPool::constructed).sum()
    }

    /// Pool acquisitions served off free-lists across all pools.
    pub fn participants_reused(&self) -> usize {
        self.pools.values().map(ParticipantPool::reused).sum()
    }

    fn apply_actions(&mut self, txn: TxnId, actions: Vec<Action>, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        // Write plans and read plans both route protocol actions through
        // their group vector; only write plans attach xact write sets.
        let (group, write_plan) = match (plans.get(txn), plans.get_read(txn)) {
            (Some(plan), _) => (&plan.group, Some(plan)),
            (None, Some(read)) => (&read.group, None),
            (None, None) => return,
        };
        let my_v = group.iter().position(|&s| s == self.me);
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    let dst = group[to.index()];
                    let writes =
                        write_plan.and_then(|plan| self.xact_writes_for(plan, &msg, dst, my_v));
                    ctx.send(dst, DbMsg { txn, inner: msg, writes, sync: None });
                }
                Action::Broadcast { msg } => {
                    for (v, &dst) in group.iter().enumerate() {
                        if Some(v) != my_v {
                            let writes = write_plan
                                .and_then(|plan| self.xact_writes_for(plan, &msg, dst, my_v));
                            ctx.send(dst, DbMsg { txn, inner: msg, writes, sync: None });
                        }
                    }
                }
                Action::SetTimer { t_units, tag } => {
                    let raw = ((txn.0 as u64 + 1) << 8) | tag.encode();
                    let handle = ctx.set_timer(ctx.t(t_units), raw);
                    if let Some(slot) = self.slots.get_mut(&txn) {
                        if let Some(old) = slot.timers.insert(tag, handle) {
                            ctx.cancel_timer(old);
                        }
                    }
                }
                Action::CancelTimer { tag } => {
                    if let Some(slot) = self.slots.get_mut(&txn) {
                        if let Some(old) = slot.timers.remove(&tag) {
                            ctx.cancel_timer(old);
                        }
                    }
                }
                Action::Decide(decision) => self.finish(txn, decision, ctx),
                Action::Note(label, detail) => ctx.note(label, detail),
            }
        }
    }

    /// The group master attaches each destination's planned write set to
    /// its xact (mirrors `SiteNode::xact_writes_for`, routed by plan).
    fn xact_writes_for(
        &self,
        plan: &crate::plan::TxnPlan,
        msg: &CommitMsg,
        dst: SiteId,
        my_v: Option<usize>,
    ) -> Option<Vec<WriteOp>> {
        if my_v != Some(0) || !matches!(msg, CommitMsg::Kind("xact")) {
            return None;
        }
        plan.writes.get(&dst.0).cloned()
    }

    /// Terminates a protocol transaction locally: WAL, storage, locks,
    /// metrics — then ships the outcome to any out-of-group replicas this
    /// site masters for.
    fn finish(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        if self.plans.get_read(txn).is_some() {
            self.finish_read(txn, decision, ctx);
            return;
        }
        let Some(mut slot) = self.slots.remove(&txn) else { return };
        for (_, handle) in slot.timers.drain() {
            ctx.cancel_timer(handle);
        }
        match decision {
            Decision::Commit => {
                let staged: Vec<Key> = self
                    .storage
                    .staged_writes(txn)
                    .map(|ws| ws.iter().map(|w| w.key.clone()).collect())
                    .unwrap_or_default();
                self.wal.append_durable(Record::Commit { txn });
                self.storage.apply(txn);
                self.wal.append_durable(Record::Applied { txn });
                self.bump_versions(&staged);
            }
            Decision::Abort => {
                self.wal.append_durable(Record::Abort { txn });
                self.storage.discard(txn);
            }
        }
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (decision, now));
            if let Some(idx) = slot.hold_index {
                m.lock_holds[idx].to = Some(now);
            }
        }
        self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        self.finished.insert(txn, decision);
        self.ship(txn, decision, ctx);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// Ships a decided cross-shard outcome to this master's out-of-group
    /// replicas (no-op for single-shard transactions and non-masters).
    /// Every ship carries the replica's *complete* planned write set, so a
    /// replica serving several involved shards installs everything from
    /// whichever master's ship arrives first and drops the rest as
    /// duplicates.
    fn ship(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        let Some(plan) = plans.get(txn) else { return };
        let Some(targets) = plan.ships.get(&self.me.0) else { return };
        for replica in targets {
            let (kind, writes) = match decision {
                Decision::Commit => (SHARD_APPLY, plan.replica_writes.get(&replica.0).cloned()),
                Decision::Abort => (SHARD_ABORT, None),
            };
            ctx.send(*replica, DbMsg { txn, inner: CommitMsg::Kind(kind), writes, sync: None });
        }
    }

    /// Attempts to restart a parked transaction whose locks may now be free.
    fn try_unpark(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(parked) = self.parked.remove(&txn) else { return };
        let all_held = match &parked {
            Parked::Xact { writes, .. } | Parked::Apply { writes } => {
                writes.iter().all(|w| self.locks.holds(txn, &w.key, LockMode::Exclusive))
            }
            Parked::Read { keys, .. } => {
                keys.iter().all(|k| self.locks.holds(txn, k, LockMode::Shared))
            }
        };
        if !all_held {
            self.parked.insert(txn, parked);
            return;
        }
        match parked {
            Parked::Xact { from, writes } => self.begin_local(txn, from, writes, ctx),
            Parked::Apply { writes } => self.do_apply(txn, writes, ctx),
            Parked::Read { from, keys } => self.begin_read(txn, from, keys, ctx),
        }
    }

    /// Locks held: stage the writes and start the commit protocol (or, for
    /// a sole-member group, decide on the spot — there is no one to poll).
    fn begin_local(
        &mut self,
        txn: TxnId,
        from: SiteId,
        writes: Vec<WriteOp>,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        self.wal.flush();
        self.storage.stage(txn, writes);

        let hold_index = {
            let mut m = self.metrics.borrow_mut();
            m.lock_holds.push(LockHold { site: self.me, txn, from: ctx.now(), to: None });
            Some(m.lock_holds.len() - 1)
        };

        let plans = self.plans.clone();
        let plan = plans.get(txn).expect("admitted transactions are planned");
        let k = plan.group.len();
        let my_v = plan.virtual_of(self.me).expect("participants are group members");

        if k == 1 {
            // A replication-1 shard (or a cross-shard group that collapsed
            // to one shared master): the only voter is this site, so the
            // transaction commits locally and ships straight away.
            self.complete_sole(txn, hold_index, ctx);
            return;
        }

        let pool_key = (my_v as u16, k as u16);
        let factory = self.factory.clone();
        let pool =
            self.pools.entry(pool_key).or_insert_with(|| factory.pool(SiteId(my_v as u16), k));
        let slot = pool.acquire(Vote::Yes);
        let mut out = Vec::new();
        let participant = pool.get_mut(slot);
        participant.start(&mut out);
        if my_v != 0 {
            let from_v = plan.virtual_of(from).unwrap_or(0);
            participant.on_msg(SiteId(from_v as u16), &CommitMsg::Kind("xact"), &mut out);
        }
        self.slots.insert(
            txn,
            TxnSlot { pool: pool_key, participant: slot, timers: HashMap::new(), hold_index },
        );
        self.apply_actions(txn, out, ctx);
    }

    /// Commits a staged transaction whose protocol group is this site alone.
    fn complete_sole(&mut self, txn: TxnId, hold_index: Option<usize>, ctx: &mut Ctx<'_, DbMsg>) {
        let staged: Vec<Key> = self
            .storage
            .staged_writes(txn)
            .map(|ws| ws.iter().map(|w| w.key.clone()).collect())
            .unwrap_or_default();
        self.wal.append_durable(Record::Commit { txn });
        self.storage.apply(txn);
        self.wal.append_durable(Record::Applied { txn });
        self.bump_versions(&staged);
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (Decision::Commit, now));
            if let Some(idx) = hold_index {
                m.lock_holds[idx].to = Some(now);
            }
        }
        self.finished.insert(txn, Decision::Commit);
        self.ship(txn, Decision::Commit, ctx);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// A brand-new xact arrived (or this master submits one): acquire locks
    /// or park.
    fn admit_xact(
        &mut self,
        txn: TxnId,
        from: SiteId,
        writes: Vec<WriteOp>,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            // Duplicate delivery (see SiteNode::admit_xact for why the
            // `parked` guard is load-bearing).
            return;
        }
        if self.plans.get(txn).is_none() {
            return;
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.begin_local(txn, from, writes, ctx);
        } else {
            ctx.note("lock-wait", txn.0 as u64);
            self.parked.insert(txn, Parked::Xact { from, writes });
        }
    }

    /// A decided cross-shard commit arrived from a group master: install it
    /// under locks (parking behind conflicting holders if need be).
    fn admit_apply(&mut self, txn: TxnId, writes: Vec<WriteOp>, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            return;
        }
        let mut all = true;
        for w in &writes {
            if self.locks.acquire(txn, w.key.clone(), LockMode::Exclusive) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.do_apply(txn, writes, ctx);
        } else {
            ctx.note("apply-wait", txn.0 as u64);
            self.parked.insert(txn, Parked::Apply { writes });
        }
    }

    /// Installs a shipped commit: full WAL discipline, momentary lock hold.
    fn do_apply(&mut self, txn: TxnId, writes: Vec<WriteOp>, ctx: &mut Ctx<'_, DbMsg>) {
        let keys: Vec<Key> = writes.iter().map(|w| w.key.clone()).collect();
        self.wal.append(Record::Begin { txn, writes: writes.clone() });
        self.wal.flush();
        self.storage.stage(txn, writes);
        self.wal.append_durable(Record::Commit { txn });
        self.storage.apply(txn);
        self.wal.append_durable(Record::Applied { txn });
        self.bump_versions(&keys);
        let now = ctx.now();
        {
            let mut m = self.metrics.borrow_mut();
            m.decisions.entry(txn).or_default().insert(self.me.0, (Decision::Commit, now));
            // The hold opens and closes at the apply instant: the replica
            // never voted, so the interval records contention only.
            m.lock_holds.push(LockHold { site: self.me, txn, from: now, to: Some(now) });
        }
        self.finished.insert(txn, Decision::Commit);
        ctx.note("shard-applied", txn.0 as u64);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// Records a shipped abort (nothing was ever staged here).
    fn admit_abort_ship(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            return;
        }
        let now = ctx.now();
        self.metrics
            .borrow_mut()
            .decisions
            .entry(txn)
            .or_default()
            .insert(self.me.0, (Decision::Abort, now));
        self.finished.insert(txn, Decision::Abort);
        ctx.note("shard-aborted", txn.0 as u64);
    }

    /// Bumps the per-key version stamp for each committed write.
    fn bump_versions(&mut self, keys: &[Key]) {
        for k in keys {
            *self.versions.entry(k.clone()).or_insert(0) += 1;
        }
    }

    /// This master submits a read-only transaction: lease fast path when it
    /// holds, the shared-lock (and, cross-shard, protocol) path otherwise.
    fn submit_read(&mut self, txn: TxnId, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        let Some(read) = plans.get_read(txn) else { return };
        self.metrics.borrow_mut().reads_submitted.insert(txn, ctx.now());
        ctx.note("read-submitted", txn.0 as u64);
        if !read.is_cross_shard() && self.opts.lease.is_some() {
            let now = ctx.now();
            let keys = read.keys.get(&self.me.0).cloned().unwrap_or_default();
            let leased = read.shards.iter().all(|&s| {
                let group = plans.topology.group(s);
                self.lease.valid(s, &group[1..], now)
            });
            // The lease proves no *remote* commit is missing; a locked
            // key means a local commit round is mid-flight, so probe —
            // read-only, no queueing — and fall back if anything is
            // held.
            if leased && keys.iter().all(|k| !self.locks.is_locked(k)) {
                self.serve_read(txn, &keys, ReadPath::Lease, ctx);
                self.finished.insert(txn, Decision::Commit);
                return;
            }
        }
        self.admit_read(txn, self.me, ctx);
    }

    /// Admits a read at a serving master (self-submission or a cross-shard
    /// coordinator's xact): acquire shared locks on the local keys, then
    /// serve (single-shard) or join the top-level protocol round.
    fn admit_read(&mut self, txn: TxnId, from: SiteId, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn)
            || self.slots.contains_key(&txn)
            || self.parked.contains_key(&txn)
        {
            return;
        }
        let plans = self.plans.clone();
        let Some(read) = plans.get_read(txn) else { return };
        if read.virtual_of(self.me).is_none() {
            return;
        }
        let keys = read.keys.get(&self.me.0).cloned().unwrap_or_default();
        let mut all = true;
        for k in &keys {
            if self.locks.acquire(txn, k.clone(), LockMode::Shared) == LockGrant::Waiting {
                all = false;
            }
        }
        if all {
            self.begin_read(txn, from, keys, ctx);
        } else {
            ctx.note("read-wait", txn.0 as u64);
            self.parked.insert(txn, Parked::Read { from, keys });
        }
    }

    /// Shared locks held: serve a single-shard read on the spot, or start
    /// the top-level protocol participant for a cross-shard snapshot.
    fn begin_read(&mut self, txn: TxnId, from: SiteId, keys: Vec<Key>, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        let read = plans.get_read(txn).expect("admitted reads are planned");
        let k = read.group.len();
        if k == 1 {
            self.serve_read(txn, &keys, ReadPath::LockLocal, ctx);
            self.finished.insert(txn, Decision::Commit);
            let promoted = self.locks.release_all(txn);
            for t in promoted {
                self.try_unpark(t, ctx);
            }
            return;
        }
        let my_v = read.virtual_of(self.me).expect("serving masters are group members");
        let pool_key = (my_v as u16, k as u16);
        let factory = self.factory.clone();
        let pool =
            self.pools.entry(pool_key).or_insert_with(|| factory.pool(SiteId(my_v as u16), k));
        let slot = pool.acquire(Vote::Yes);
        let mut out = Vec::new();
        let participant = pool.get_mut(slot);
        participant.start(&mut out);
        if my_v != 0 {
            let from_v = read.virtual_of(from).unwrap_or(0);
            participant.on_msg(SiteId(from_v as u16), &CommitMsg::Kind("xact"), &mut out);
        }
        self.slots.insert(
            txn,
            TxnSlot { pool: pool_key, participant: slot, timers: HashMap::new(), hold_index: None },
        );
        self.apply_actions(txn, out, ctx);
    }

    /// Snapshots `keys` from committed storage and reports the read.
    fn serve_read(&mut self, txn: TxnId, keys: &[Key], path: ReadPath, ctx: &mut Ctx<'_, DbMsg>) {
        let values = keys.iter().map(|k| (k.clone(), self.storage.get(k).cloned())).collect();
        self.metrics.borrow_mut().reads.push(ReadRecord {
            id: txn,
            site: self.me,
            at: ctx.now(),
            path,
            values,
        });
        ctx.note("read-served", txn.0 as u64);
    }

    /// Terminates a cross-shard protocol read at this member: snapshot on
    /// commit, record the abort at the coordinator — never any WAL,
    /// storage, or lock-hold-metric traffic.
    fn finish_read(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(mut slot) = self.slots.remove(&txn) else { return };
        for (_, handle) in slot.timers.drain() {
            ctx.cancel_timer(handle);
        }
        self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        let plans = self.plans.clone();
        let read = plans.get_read(txn).expect("read slots are planned");
        match decision {
            Decision::Commit => {
                let keys = read.keys.get(&self.me.0).cloned().unwrap_or_default();
                self.serve_read(txn, &keys, ReadPath::Protocol, ctx);
            }
            Decision::Abort => {
                if read.master() == self.me {
                    self.metrics.borrow_mut().read_aborts.insert(txn, ctx.now());
                }
                ctx.note("read-aborted", txn.0 as u64);
            }
        }
        self.finished.insert(txn, decision);
        let promoted = self.locks.release_all(txn);
        for t in promoted {
            self.try_unpark(t, ctx);
        }
    }

    /// Arms (or re-arms) a maintenance chain timer and records its expected
    /// fire instant; [`ShardNode::chain_fire`] drops orphaned chains.
    fn arm_chain(&mut self, raw: u64, after: u64, ctx: &mut Ctx<'_, DbMsg>) {
        self.chain_next.insert(raw, SimTime(ctx.now().ticks() + after));
        ctx.set_timer(SimDuration(after), raw);
    }

    /// True if a firing chain timer is the live chain (and consumes the
    /// expectation — a duplicate chain landing on the same tick dies).
    fn chain_fire(&mut self, raw: u64, ctx: &mut Ctx<'_, DbMsg>) -> bool {
        self.chain_next.remove(&raw) == Some(ctx.now())
    }

    /// Master side of a lease period: solicit acks from every replica of
    /// `shard` and re-arm the chain.
    fn lease_tick(&mut self, shard: usize, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(cfg) = self.opts.lease else { return };
        let plans = self.plans.clone();
        let txn = TxnId(CTRL_BASE + shard as u32);
        for &replica in &plans.topology.group(shard)[1..] {
            ctx.send(
                replica,
                DbMsg { txn, inner: CommitMsg::Kind(LEASE_RENEW), writes: None, sync: None },
            );
        }
        self.arm_chain(((shard as u64 + 1) << 8) | LEASE_TAG, cfg.period, ctx);
    }

    /// Replica side of anti-entropy: report version stamps and transaction
    /// ids to the shard master, and re-arm the chain.
    fn sync_tick(&mut self, shard: usize, ctx: &mut Ctx<'_, DbMsg>) {
        let Some(period) = self.opts.anti_entropy else { return };
        let plans = self.plans.clone();
        let master = plans.topology.master(shard);
        let versions: Vec<(Key, u64)> = self
            .versions
            .iter()
            .filter(|(k, _)| plans.topology.shard_of(k) == shard)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let pending: Vec<TxnId> = self.slots.keys().chain(self.parked.keys()).copied().collect();
        let known: Vec<TxnId> = self.finished.keys().copied().collect();
        let payload = SyncPayload { versions, pending, known, decisions: Vec::new() };
        ctx.send(
            master,
            DbMsg {
                txn: TxnId(CTRL_BASE + shard as u32),
                inner: CommitMsg::Kind(SYNC_REQ),
                writes: None,
                sync: Some(Box::new(payload)),
            },
        );
        self.arm_chain(((shard as u64 + 1) << 8) | SYNC_TAG, period, ctx);
    }

    /// Master side of anti-entropy: answer a replica's request with the
    /// decisions it is missing and a version-stamped delta of `shard`'s
    /// keys. Nothing is sent when the replica is already converged.
    fn handle_sync_req(
        &mut self,
        shard: usize,
        from: SiteId,
        req: &SyncPayload,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        let plans = self.plans.clone();
        if plans.topology.master(shard) != self.me {
            return;
        }
        let replica_versions: BTreeMap<&Key, u64> =
            req.versions.iter().map(|(k, v)| (k, *v)).collect();
        let mut delta = Vec::new();
        let mut stamps = Vec::new();
        for (k, v) in self.storage.iter() {
            if plans.topology.shard_of(k) != shard {
                continue;
            }
            let mine = self.versions.get(k).copied().unwrap_or(0);
            if mine > replica_versions.get(k).copied().unwrap_or(0) {
                delta.push(WriteOp { key: k.clone(), value: v.clone() });
                stamps.push((k.clone(), mine));
            }
        }
        let mut decisions: Vec<(TxnId, Decision)> = Vec::new();
        for t in &req.pending {
            if let Some(d) = self.finished.get(t) {
                decisions.push((*t, *d));
            }
        }
        // Decisions the replica never even saw (its ship bounced off the
        // partition): any finished transaction of this shard that planned
        // the replica in, minus what it already knows.
        for (t, d) in &self.finished {
            if req.pending.contains(t)
                || req.known.contains(t)
                || decisions.iter().any(|(x, _)| x == t)
            {
                continue;
            }
            let Some(plan) = plans.get(*t) else { continue };
            if !plan.shards.contains(&shard) {
                continue;
            }
            if plan.writes.contains_key(&from.0) || plan.replica_writes.contains_key(&from.0) {
                decisions.push((*t, *d));
            }
        }
        if delta.is_empty() && decisions.is_empty() {
            return;
        }
        let payload =
            SyncPayload { versions: stamps, pending: Vec::new(), known: Vec::new(), decisions };
        ctx.send(
            from,
            DbMsg {
                txn: TxnId(CTRL_BASE + shard as u32),
                inner: CommitMsg::Kind(SYNC_RESP),
                writes: Some(delta),
                sync: Some(Box::new(payload)),
            },
        );
    }

    /// Replica side of a sync response: replay missed decisions first (they
    /// unblock parked state and credit availability), then install the
    /// still-newer delta under a synthetic transaction with full WAL
    /// discipline, adopting the master's stamps.
    fn handle_sync_resp(
        &mut self,
        writes: Option<Vec<WriteOp>>,
        payload: &SyncPayload,
        ctx: &mut Ctx<'_, DbMsg>,
    ) {
        for (t, d) in &payload.decisions {
            self.apply_sync_decision(*t, *d, ctx);
        }
        let delta = writes.unwrap_or_default();
        let mut install = Vec::new();
        let mut stamps = Vec::new();
        for (w, (k, v)) in delta.iter().zip(payload.versions.iter()) {
            debug_assert_eq!(&w.key, k, "delta and stamps are index-aligned");
            if self.versions.get(k).copied().unwrap_or(0) >= *v {
                continue; // a decision replay or racing ship already caught up
            }
            if self.locks.is_locked(&w.key) {
                continue; // an in-flight transaction owns it; next round
            }
            install.push(w.clone());
            stamps.push((k.clone(), *v));
        }
        if install.is_empty() {
            return;
        }
        let txn = TxnId(SYNC_BASE + self.sync_installs);
        self.sync_installs += 1;
        self.wal.append(Record::Begin { txn, writes: install.clone() });
        self.wal.flush();
        self.storage.stage(txn, install);
        self.wal.append_durable(Record::Commit { txn });
        self.storage.apply(txn);
        self.wal.append_durable(Record::Applied { txn });
        for (k, v) in stamps {
            self.versions.insert(k, v);
        }
        ctx.note("sync-installed", txn.0 as u64);
    }

    /// Installs one master-reported decision for a transaction this replica
    /// missed: force-terminate an in-flight slot, unblock a parked entry,
    /// or install/record an outcome it never saw.
    fn apply_sync_decision(&mut self, txn: TxnId, decision: Decision, ctx: &mut Ctx<'_, DbMsg>) {
        if self.finished.contains_key(&txn) {
            return;
        }
        if self.slots.contains_key(&txn) {
            // The master's durable outcome is authoritative; finish the
            // local participant with it.
            self.finish(txn, decision, ctx);
            return;
        }
        let plans = self.plans.clone();
        let me = self.me.0;
        let local_writes = move |plan: &crate::plan::TxnPlan| {
            plan.writes.get(&me).cloned().or_else(|| plan.replica_writes.get(&me).cloned())
        };
        if let Some(parked) = self.parked.remove(&txn) {
            let promoted = self.locks.release_all(txn);
            for t in promoted {
                self.try_unpark(t, ctx);
            }
            match (parked, decision) {
                (Parked::Read { .. }, _) => {
                    // A parked read the master somehow decided: nothing was
                    // snapshotted here; just close it out.
                    self.finished.insert(txn, decision);
                }
                (_, Decision::Abort) => self.admit_abort_ship(txn, ctx),
                (Parked::Xact { .. } | Parked::Apply { .. }, Decision::Commit) => {
                    let writes = plans.get(txn).and_then(local_writes).unwrap_or_default();
                    self.admit_apply(txn, writes, ctx);
                }
            }
            return;
        }
        let Some(plan) = plans.get(txn) else { return };
        match decision {
            Decision::Commit => {
                if let Some(writes) = local_writes(plan) {
                    self.admit_apply(txn, writes, ctx);
                }
            }
            Decision::Abort => self.admit_abort_ship(txn, ctx),
        }
    }
}

impl Actor<DbMsg> for ShardNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        let plans = self.plans.clone();
        for &(at, txn) in &self.workload {
            let tag = if plans.get_read(txn).is_some() { READ_TAG } else { CLIENT_TAG };
            let raw = ((txn.0 as u64 + 1) << 8) | tag;
            ctx.set_timer(ptp_simnet::SimDuration(at), raw);
        }
        if let Some(cfg) = self.opts.lease {
            let _ = cfg;
            for shard in 0..plans.topology.shards() {
                if plans.topology.master(shard) == self.me && plans.topology.group(shard).len() > 1
                {
                    // First solicitation right away; the chain re-arms
                    // itself every period.
                    self.lease_tick(shard, ctx);
                }
            }
        }
        if self.opts.anti_entropy.is_some() {
            for shard in 0..plans.topology.shards() {
                let group = plans.topology.group(shard);
                if group.contains(&self.me) && plans.topology.master(shard) != self.me {
                    let raw = ((shard as u64 + 1) << 8) | SYNC_TAG;
                    let period = self.opts.anti_entropy.expect("checked");
                    self.arm_chain(raw, period, ctx);
                }
            }
        }
    }

    fn on_message(&mut self, env: Envelope<DbMsg>, ctx: &mut Ctx<'_, DbMsg>) {
        let DbMsg { txn, inner, writes, sync } = env.payload;
        match inner {
            CommitMsg::Kind("xact") => {
                if self.plans.get_read(txn).is_some() {
                    self.admit_read(txn, env.src, ctx);
                } else {
                    self.admit_xact(txn, env.src, writes.unwrap_or_default(), ctx);
                }
                return;
            }
            CommitMsg::Kind(SHARD_APPLY) => {
                self.admit_apply(txn, writes.unwrap_or_default(), ctx);
                return;
            }
            CommitMsg::Kind(SHARD_ABORT) => {
                self.admit_abort_ship(txn, ctx);
                return;
            }
            CommitMsg::Kind(LEASE_RENEW) => {
                // Replica side: ack the solicitation straight back.
                ctx.send(
                    env.src,
                    DbMsg { txn, inner: CommitMsg::Kind(LEASE_ACK), writes: None, sync: None },
                );
                return;
            }
            CommitMsg::Kind(LEASE_ACK) => {
                if let Some(cfg) = self.opts.lease {
                    let shard = (txn.0 - CTRL_BASE) as usize;
                    let expiry = SimTime(ctx.now().ticks() + cfg.duration);
                    self.lease.grant(shard, env.src, expiry);
                }
                return;
            }
            CommitMsg::Kind(SYNC_REQ) => {
                if let Some(req) = sync {
                    let shard = (txn.0 - CTRL_BASE) as usize;
                    self.handle_sync_req(shard, env.src, &req, ctx);
                }
                return;
            }
            CommitMsg::Kind(SYNC_RESP) => {
                if let Some(payload) = sync {
                    self.handle_sync_resp(writes, &payload, ctx);
                }
                return;
            }
            _ => {}
        }
        if let Some(slot) = self.slots.get(&txn) {
            let (pool_key, participant) = (slot.pool, slot.participant);
            let plans = self.plans.clone();
            let from_v = plans
                .get(txn)
                .and_then(|p| p.virtual_of(env.src))
                .or_else(|| plans.get_read(txn).and_then(|r| r.virtual_of(env.src)));
            let Some(from_v) = from_v else {
                return; // not a member of this transaction's group
            };
            let mut out = Vec::new();
            self.pools.get_mut(&pool_key).expect("slot pool exists").get_mut(participant).on_msg(
                SiteId(from_v as u16),
                &inner,
                &mut out,
            );
            self.apply_actions(txn, out, ctx);
        } else if self.parked.contains_key(&txn) {
            // Decision for a transaction still waiting on locks: only an
            // abort is possible for a parked xact or read (the coordinator
            // gave up on us); shipped applies never race their own decision.
            if matches!(inner, CommitMsg::Kind("abort")) {
                let is_read = matches!(self.parked.get(&txn), Some(Parked::Read { .. }));
                if !is_read && !matches!(self.parked.get(&txn), Some(Parked::Xact { .. })) {
                    return;
                }
                self.parked.remove(&txn);
                let promoted = self.locks.release_all(txn);
                self.finished.insert(txn, Decision::Abort);
                let now = ctx.now();
                if !is_read {
                    self.metrics
                        .borrow_mut()
                        .decisions
                        .entry(txn)
                        .or_default()
                        .insert(self.me.0, (Decision::Abort, now));
                }
                ctx.note(if is_read { "read-parked-abort" } else { "parked-abort" }, txn.0 as u64);
                // The parked txn may have held granted locks other waiters
                // queued behind; restart whatever its release promoted
                // (mirrors every other release_all site in this file).
                for t in promoted {
                    self.try_unpark(t, ctx);
                }
            }
        }
    }

    fn on_undeliverable(&mut self, env: Envelope<DbMsg>, ctx: &mut Ctx<'_, DbMsg>) {
        let DbMsg { txn, inner, .. } = env.payload;
        if let Some(slot) = self.slots.get(&txn) {
            let (pool_key, participant) = (slot.pool, slot.participant);
            let plans = self.plans.clone();
            let Some(dst_v) = plans.get(txn).and_then(|p| p.virtual_of(env.dst)) else {
                return; // a bounced ship message has no participant to tell
            };
            let mut out = Vec::new();
            self.pools.get_mut(&pool_key).expect("slot pool exists").get_mut(participant).on_ud(
                SiteId(dst_v as u16),
                &inner,
                &mut out,
            );
            self.apply_actions(txn, out, ctx);
        }
    }

    fn on_timer(&mut self, raw: u64, ctx: &mut Ctx<'_, DbMsg>) {
        let txn = TxnId((raw >> 8).saturating_sub(1) as u32);
        let low = raw & 0xff;
        if low == CLIENT_TAG {
            let plans = self.plans.clone();
            let Some(plan) = plans.get(txn) else { return };
            self.metrics.borrow_mut().submitted.insert(txn, ctx.now());
            ctx.note("txn-submitted", txn.0 as u64);
            let local = plan.writes.get(&self.me.0).cloned().unwrap_or_default();
            self.admit_xact(txn, self.me, local, ctx);
            return;
        }
        if low == READ_TAG {
            self.submit_read(txn, ctx);
            return;
        }
        if low == LEASE_TAG || low == SYNC_TAG {
            if !self.chain_fire(raw, ctx) {
                return; // orphaned chain (superseded across a recovery)
            }
            let shard = ((raw >> 8) - 1) as usize;
            if low == LEASE_TAG {
                self.lease_tick(shard, ctx);
            } else {
                self.sync_tick(shard, ctx);
            }
            return;
        }
        let Some(tag) = TimerTag::decode(low) else { return };
        if let Some(slot) = self.slots.get_mut(&txn) {
            slot.timers.remove(&tag);
            let (pool_key, participant) = (slot.pool, slot.participant);
            let mut out = Vec::new();
            self.pools
                .get_mut(&pool_key)
                .expect("slot pool exists")
                .get_mut(participant)
                .on_timer(tag, &mut out);
            self.apply_actions(txn, out, ctx);
        }
    }

    /// Mirror of `SiteNode::on_crash`: close the crashed site's in-flight
    /// lock-hold intervals at the crash instant (metrics bookkeeping only).
    fn on_crash(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        let now = ctx.now();
        let mut m = self.metrics.borrow_mut();
        for slot in self.slots.values() {
            if let Some(idx) = slot.hold_index {
                if m.lock_holds[idx].to.is_none() {
                    m.lock_holds[idx].to = Some(now);
                }
            }
        }
    }

    /// Crash recovery: volatile state is gone; the durable log decides what
    /// to redo and what to presume aborted (Sec. 2), exactly as at a flat
    /// site. Parked shipped applies are lost with the rest of the volatile
    /// state — the replica stays stale, which the per-shard availability
    /// metrics surface.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, DbMsg>) {
        for (_, slot) in std::mem::take(&mut self.slots) {
            self.pools.get_mut(&slot.pool).expect("slot pool exists").release(slot.participant);
        }
        self.parked.clear();
        self.locks = LockTable::new();
        self.lease.clear();
        self.storage.crash();
        self.wal.crash();
        let summary = ptp_ddb::recovery::recover(&mut self.storage, &mut self.wal);
        // Version stamps are volatile: recount them from the durable log
        // (committed transactions' Begin keys). A post-crash under-count
        // only costs a redundant — idempotent — anti-entropy transfer.
        self.versions.clear();
        self.sync_installs = 0;
        let mut begin_keys: BTreeMap<TxnId, Vec<Key>> = BTreeMap::new();
        let records: Vec<Record> = self.wal.durable().to_vec();
        for rec in &records {
            match rec {
                Record::Begin { txn, writes } => {
                    if txn.0 >= SYNC_BASE && txn.0 < CTRL_BASE {
                        self.sync_installs = self.sync_installs.max(txn.0 - SYNC_BASE + 1);
                    }
                    begin_keys.insert(*txn, writes.iter().map(|w| w.key.clone()).collect());
                }
                Record::Commit { txn } => {
                    if let Some(keys) = begin_keys.get(txn) {
                        for k in keys {
                            *self.versions.entry(k.clone()).or_insert(0) += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        // Maintenance chains may have been suppressed while down: re-arm
        // them all (chain_next orphans any pre-crash timer still pending).
        let plans = self.plans.clone();
        if let Some(cfg) = self.opts.lease {
            for shard in 0..plans.topology.shards() {
                if plans.topology.master(shard) == self.me && plans.topology.group(shard).len() > 1
                {
                    self.arm_chain(((shard as u64 + 1) << 8) | LEASE_TAG, cfg.period, ctx);
                }
            }
        }
        if let Some(period) = self.opts.anti_entropy {
            for shard in 0..plans.topology.shards() {
                let group = plans.topology.group(shard);
                if group.contains(&self.me) && plans.topology.master(shard) != self.me {
                    self.arm_chain(((shard as u64 + 1) << 8) | SYNC_TAG, period, ctx);
                }
            }
        }
        for txn in &summary.redone {
            let now = ctx.now();
            self.metrics
                .borrow_mut()
                .decisions
                .entry(*txn)
                .or_default()
                .insert(self.me.0, (Decision::Commit, now));
            self.finished.insert(*txn, Decision::Commit);
        }
        for txn in &summary.discarded {
            self.finished.insert(*txn, Decision::Abort);
        }
        ctx.note("recovered", (summary.redone.len() + summary.discarded.len()) as u64);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
