//! A named-metrics registry and a fixed-bin time-series sampler.
//!
//! The registry is deliberately boring: counters, gauges, and
//! [`LogHistogram`]s keyed by `&'static str` names, with `merge` so
//! per-thread (per-node) registries fold into one cluster-wide snapshot at
//! shutdown — the same aggregation discipline the live stack already uses
//! for its ad-hoc counters, given one shared shape and a JSON renderer.
//!
//! [`Series`] buckets timestamped samples into fixed-width bins so a run
//! reports *curves* (per-second goodput, per-second p99) instead of run
//! totals only — the difference between "p99 blew up" and "p99 blew up for
//! the four seconds the partition was open".

use crate::hist::LogHistogram;
use crate::json::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Named counters, gauges, and log-histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_default() += n;
    }

    /// Increments counter `name`.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` to `v` (last write wins; merge keeps the max).
    pub fn set_gauge(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    /// Folds an already-built histogram into histogram `name`.
    pub fn merge_hist(&mut self, name: &'static str, h: &LogHistogram) {
        self.hists.entry(name).or_default().merge(h);
    }

    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Folds `other` into this registry: counters add, gauges keep the
    /// max, histograms merge.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_default() += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name).or_insert(*v);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }

    /// Renders the registry as one JSON object: counters and gauges as
    /// numbers, histograms as `{count, p50, p90, p99, max, mean}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(", ");
            }
            *first = false;
        };
        for (name, v) in &self.counters {
            sep(&mut out, &mut first);
            let _ = write!(out, "\"{}\": {v}", json_escape(name));
        }
        for (name, v) in &self.gauges {
            sep(&mut out, &mut first);
            let _ = write!(out, "\"{}\": {v}", json_escape(name));
        }
        for (name, h) in &self.hists {
            sep(&mut out, &mut first);
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"max\": {}, \"mean\": {:.1}}}",
                json_escape(name),
                h.count(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.max(),
                h.mean(),
            );
        }
        out.push('}');
        out
    }
}

/// One bin of a [`Series`]: how many events landed in it and the latency
/// population they carried.
#[derive(Debug, Clone, Default)]
pub struct SeriesBin {
    /// Events recorded in this bin.
    pub count: u64,
    /// Latency samples attached to those events (microseconds).
    pub latency: LogHistogram,
}

/// A fixed-bin time series: samples are bucketed by their offset from run
/// start, yielding per-bin counts and latency percentiles.
#[derive(Debug, Clone)]
pub struct Series {
    bin: Duration,
    bins: Vec<SeriesBin>,
}

impl Series {
    /// A series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics on a zero bin width.
    pub fn new(bin: Duration) -> Series {
        assert!(!bin.is_zero(), "a series bin must have positive width");
        Series { bin, bins: Vec::new() }
    }

    /// The bin width.
    pub fn bin_width(&self) -> Duration {
        self.bin
    }

    /// Records one event at offset `at` from run start, carrying latency
    /// `latency_us`.
    pub fn record(&mut self, at: Duration, latency_us: u64) {
        let idx = (at.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize_with(idx + 1, SeriesBin::default);
        }
        self.bins[idx].count += 1;
        self.bins[idx].latency.record(latency_us);
    }

    /// The bins, in time order (empty trailing bins are not materialized).
    pub fn bins(&self) -> &[SeriesBin] {
        &self.bins
    }

    /// Renders `[{bin, count, rate_per_sec, p50_us, p99_us}, ...]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        let per_sec = 1.0 / self.bin.as_secs_f64();
        for (i, b) in self.bins.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"bin\": {i}, \"count\": {}, \"rate_per_sec\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                b.count,
                b.count as f64 * per_sec,
                b.latency.quantile(0.5),
                b.latency.quantile(0.99),
            );
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge_adds() {
        let mut a = Registry::new();
        a.inc("flushes");
        a.add("flushes", 4);
        a.set_gauge("in_flight", 3);
        a.observe("lat", 100);
        let mut b = Registry::new();
        b.add("flushes", 10);
        b.set_gauge("in_flight", 1);
        b.observe("lat", 300);
        a.merge(&b);
        assert_eq!(a.counter("flushes"), 15);
        assert_eq!(a.gauge("in_flight"), Some(3), "merge keeps the max gauge");
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert_eq!(a.counter("missing"), 0);
        assert_eq!(a.gauge("missing"), None);
    }

    #[test]
    fn json_snapshot_names_every_metric() {
        let mut r = Registry::new();
        r.add("commits", 7);
        r.set_gauge("nodes", 6);
        r.observe("write_us", 250);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in ["\"commits\": 7", "\"nodes\": 6", "\"write_us\"", "\"count\": 1"] {
            assert!(json.contains(needle), "{json} missing {needle}");
        }
    }

    #[test]
    fn series_bins_by_offset() {
        let mut s = Series::new(Duration::from_secs(1));
        s.record(Duration::from_millis(100), 10);
        s.record(Duration::from_millis(900), 20);
        s.record(Duration::from_millis(2_500), 30);
        assert_eq!(s.bins().len(), 3);
        assert_eq!(s.bins()[0].count, 2);
        assert_eq!(s.bins()[1].count, 0, "empty middle bin is materialized");
        assert_eq!(s.bins()[2].count, 1);
        assert_eq!(s.bins()[2].latency.max(), 30);
        let json = s.to_json();
        assert!(json.contains("\"rate_per_sec\": 2.0"), "{json}");
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_bin_rejected() {
        let _ = Series::new(Duration::ZERO);
    }
}
