//! `ptp-obs` — observability for the live serving stack.
//!
//! PR 6 gave the *simulator* a profiling layer (`ProfSink`); this crate is
//! the live-stack counterpart, built from three pieces that share one
//! policy — a Null/Recording split so the disabled path costs (almost)
//! nothing:
//!
//! - [`registry`] — named counters/gauges/log-histograms with `merge` for
//!   per-node → cluster aggregation, plus a fixed-bin [`Series`] sampler
//!   so runs report per-second goodput/latency curves;
//! - [`span`] — per-transaction stage boundaries (queue → lock wait →
//!   protocol rounds → commit wait) aggregated into a
//!   (path, fault-phase, stage) attribution table, the instrument that
//!   says *where* a partition's tail latency went;
//! - [`flight`] — a fixed-size ring of recent structured events per node,
//!   dumped as JSON only when an audit fails, a run fails to drain, or a
//!   campaign shrink lands on a counterexample.
//!
//! [`hist`] holds the shared [`LogHistogram`]/[`LatencySummary`] moved out
//! of `ptp-live`, and [`json`] the hand-rolled JSON / host-fingerprint
//! helpers moved out of `ptp-bench`; both old homes re-export them, so
//! existing paths keep compiling.
//!
//! The crate is std-only (this workspace builds offline) and knows nothing
//! about protocols or sites — the live harness decides what to record and
//! how to classify it.

pub mod flight;
pub mod hist;
pub mod json;
pub mod registry;
pub mod span;

pub use flight::{FlightEvent, FlightRecorder};
pub use hist::{LatencySummary, LogHistogram};
pub use json::{host_class, host_fields, json_escape, nproc};
pub use registry::{Registry, Series, SeriesBin};
pub use span::{
    StageCell, StageTable, TxnSpan, STAGE_COMMIT_WAIT, STAGE_LOCK_WAIT, STAGE_PROTOCOL,
    STAGE_QUEUE, STAGE_ROUNDS, STAGE_SERVE,
};

use std::time::Duration;

/// What the live stack should record. The default ([`ObsConfig::off`]) is
/// the Null path: no spans, no flight recorder, no series — the same
/// policy as `TraceSink::Null`/`ProfSink::Null` in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Stamp per-transaction stage spans and build the stage table.
    pub spans: bool,
    /// Per-node flight-recorder capacity in events (0 disables it).
    pub flight_capacity: usize,
    /// Bin width for the completion time series (`None` disables it).
    pub series_bin: Option<Duration>,
}

impl ObsConfig {
    /// Everything off — the near-zero-overhead default.
    pub fn off() -> ObsConfig {
        ObsConfig { spans: false, flight_capacity: 0, series_bin: None }
    }

    /// Everything on at sensible sizes: spans, a 512-event ring per node,
    /// and one-second series bins.
    pub fn recording() -> ObsConfig {
        ObsConfig { spans: true, flight_capacity: 512, series_bin: Some(Duration::from_secs(1)) }
    }

    /// True when any instrument is enabled.
    pub fn enabled(&self) -> bool {
        self.spans || self.flight_capacity > 0 || self.series_bin.is_some()
    }
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_null_path() {
        let c = ObsConfig::off();
        assert!(!c.enabled());
        assert_eq!(c, ObsConfig::default());
    }

    #[test]
    fn recording_turns_everything_on() {
        let c = ObsConfig::recording();
        assert!(c.enabled());
        assert!(c.spans);
        assert!(c.flight_capacity > 0);
        assert!(c.series_bin.is_some());
    }
}
