//! Hand-rolled JSON helpers and host fingerprinting, shared by every
//! emitter that writes a `BENCH_*.json` record or a flight-recorder dump.
//!
//! This workspace builds offline (no serde), so reports are assembled by
//! string formatting; these helpers keep the escaping and the host header
//! in one place. Moved here from `ptp-bench` (which re-exports them) so
//! the observability layer can stamp dumps without depending on the bench
//! crate.

/// Minimal JSON string escaping for the hand-rolled reports and dumps
/// (no serde in this offline workspace).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Logical CPUs visible to this process — recorded in every committed
/// `BENCH_*.json` so cross-PR comparisons can tell a faster protocol from
/// a bigger container.
pub fn nproc() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Coarse host/container class for bench records: the first CPU `model
/// name` from `/proc/cpuinfo`, or `"unknown"` off Linux.
pub fn host_class() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The `"nproc": …, "host": …` fragment every bench emitter embeds (no
/// trailing comma or newline).
pub fn host_fields() -> String {
    format!("\"nproc\": {}, \"host\": \"{}\"", nproc(), json_escape(&host_class()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn host_fields_is_valid_fragment() {
        let f = host_fields();
        assert!(f.starts_with("\"nproc\": "));
        assert!(f.contains("\"host\": \""));
        assert!(!f.ends_with(','));
        assert!(nproc() >= 1);
    }
}
