//! A fault flight recorder: a fixed-capacity ring buffer of recent
//! structured events, cheap to feed on the hot path and dumped as JSON
//! only when something goes wrong (invariant-audit failure, a run that
//! fails to drain, a campaign counterexample).
//!
//! Events are plain `Copy` structs with `&'static str` kinds — recording
//! one is an index bump and a few word stores, no allocation — so nodes
//! can leave the recorder on during fault campaigns without disturbing
//! the latencies it exists to explain. When the ring wraps, the oldest
//! events fall off and a `dropped` counter says how many the dump is
//! missing.

use crate::json::json_escape;
use std::fmt::Write as _;

/// One recorded event: a microsecond timestamp (offset from run start),
/// the site it happened on, a static kind (`"send"`, `"recv"`,
/// `"lock-park"`, `"lease-grant"`, ...), a static tag refining it (message
/// kind, protocol name), and two free `u64` operands (txn id, peer site,
/// round number — whatever the kind needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since run start.
    pub at_us: u64,
    /// Site the event happened on.
    pub site: u64,
    /// Event kind.
    pub kind: &'static str,
    /// Kind-specific refinement (message/lock/lease detail).
    pub tag: &'static str,
    /// First operand (usually the transaction id).
    pub a: u64,
    /// Second operand (usually the peer site or a round/count).
    pub b: u64,
}

/// A fixed-capacity ring of [`FlightEvent`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<FlightEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events pushed out of the ring by later ones.
    dropped: u64,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "a flight recorder needs capacity for at least one event");
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            dropped: 0,
            capacity,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, ev: FlightEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Shorthand for [`record`](Self::record) from parts.
    pub fn log(
        &mut self,
        at_us: u64,
        site: u64,
        kind: &'static str,
        tag: &'static str,
        a: u64,
        b: u64,
    ) {
        self.record(FlightEvent { at_us, site, kind, tag, a, b });
    }

    /// Events currently held, oldest first.
    pub fn tail(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Events held right now.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the tail as a JSON object: `{"reason": ..., "dropped": N,
    /// "events": [{at_us, site, kind, tag, a, b}, ...]}` with events oldest
    /// first.
    pub fn dump_json(&self, reason: &str) -> String {
        Self::render_dump(reason, self.dropped, &self.tail())
    }

    /// Renders an arbitrary event list in the dump format — used when
    /// several per-node recorders are merged into one timeline first.
    pub fn render_dump(reason: &str, dropped: u64, events: &[FlightEvent]) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"reason\": \"{}\", \"dropped\": {dropped}, \"events\": [",
            json_escape(reason)
        );
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"at_us\": {}, \"site\": {}, \"kind\": \"{}\", \"tag\": \"{}\", \"a\": {}, \"b\": {}}}",
                ev.at_us,
                ev.site,
                json_escape(ev.kind),
                json_escape(ev.tag),
                ev.a,
                ev.b,
            );
        }
        out.push_str("\n]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64) -> FlightEvent {
        FlightEvent { at_us, site: 0, kind: "send", tag: "VOTE_REQ", a: at_us, b: 1 }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = FlightRecorder::new(4);
        assert!(r.is_empty());
        for t in 0..4 {
            r.record(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.tail().iter().map(|e| e.at_us).collect::<Vec<_>>(), vec![0, 1, 2, 3]);

        // Two more evict the two oldest.
        r.record(ev(4));
        r.record(ev(5));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.tail().iter().map(|e| e.at_us).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn wraps_many_times_over() {
        let mut r = FlightRecorder::new(3);
        for t in 0..100 {
            r.log(t, 7, "recv", "ACK", t, 0);
        }
        assert_eq!(r.dropped(), 97);
        assert_eq!(r.tail().iter().map(|e| e.at_us).collect::<Vec<_>>(), vec![97, 98, 99]);
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut r = FlightRecorder::new(1);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.tail(), vec![ev(2)]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn dump_reports_truncation_and_order() {
        let mut r = FlightRecorder::new(2);
        for t in 0..5 {
            r.record(ev(t));
        }
        let dump = r.dump_json("audit failed: lost write");
        assert!(dump.contains("\"reason\": \"audit failed: lost write\""));
        assert!(dump.contains("\"dropped\": 3"));
        assert!(dump.contains("\"at_us\": 3") && dump.contains("\"at_us\": 4"));
        assert!(!dump.contains("\"at_us\": 2"), "evicted event leaked into dump: {dump}");
        // Oldest first.
        let i3 = dump.find("\"at_us\": 3").unwrap();
        let i4 = dump.find("\"at_us\": 4").unwrap();
        assert!(i3 < i4);
    }

    #[test]
    fn dump_escapes_reason() {
        let r = FlightRecorder::new(2);
        let dump = r.dump_json("line1\n\"quoted\"");
        assert!(dump.contains("line1\\n\\\"quoted\\\""));
        assert!(dump.contains("\"events\": [\n]}"));
    }
}
