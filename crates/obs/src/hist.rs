//! A log-bucketed latency histogram (hdr-lite, hand-rolled — this workspace
//! builds offline, so no external histogram crate).
//!
//! Values are recorded in integer units (the live harness uses
//! microseconds). Buckets are exact for values `< 32`; above that, each
//! power-of-two octave is split into 16 sub-buckets, so the relative
//! quantile error is bounded by 1/16 ≈ 6.25% while the whole table stays a
//! few hundred `u64`s regardless of range. The true maximum is tracked
//! exactly.
//!
//! Moved here from `ptp-live` (which re-exports it) so every consumer of a
//! latency population — the live serving stack, the bench emitters, the
//! stage-attribution tables — shares one implementation.

/// Sub-buckets per octave: 2^5 = 32 exact low values, 16 per octave above.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS; // 16
const EXACT: u64 = SUB * 2; // values < 32 get their own bucket

/// A log-linear histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

fn bucket_of(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    // Octave o = position of the highest set bit; sub-index = the next
    // SUB_BITS bits below it. Values < 32 were handled above, so o >= 5.
    let o = 63 - v.leading_zeros();
    let sub = (v >> (o - SUB_BITS)) & (SUB - 1);
    EXACT as usize + (o - SUB_BITS - 1) as usize * SUB as usize + sub as usize
}

/// The (inclusive) upper edge of bucket `idx` — what quantile queries
/// report, so reported quantiles never understate the true sample.
fn bucket_upper(idx: usize) -> u64 {
    if (idx as u64) < EXACT {
        return idx as u64;
    }
    let rel = idx as u64 - EXACT;
    let o = rel / SUB + SUB_BITS as u64 + 1;
    let sub = rel % SUB;
    let base = 1u64 << o;
    // (base - 1) + (sub + 1) * step never overflows: the second term is at
    // most `base`, so the sum is at most 2 * base - 1 = u64::MAX when the
    // octave is the topmost one.
    (base - 1).saturating_add((sub + 1).saturating_mul(1u64 << (o - SUB_BITS as u64)))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_of(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact maximum sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound within one
    /// bucket (≤ 6.25% relative error), with `quantile(1.0)` the exact max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's upper edge can overshoot the true max.
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (idx, &c) in other.buckets.iter().enumerate() {
            self.buckets[idx] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Percentiles of one latency population, in microseconds — the summary
/// shape every latency consumer (live report, bench records) shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Exact maximum.
    pub max_us: u64,
    /// Mean.
    pub mean_us: f64,
}

impl LatencySummary {
    /// Summarizes a histogram of microsecond samples.
    pub fn from_hist(h: &LogHistogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            p50_us: h.quantile(0.50),
            p90_us: h.quantile(0.90),
            p99_us: h.quantile(0.99),
            max_us: h.max(),
            mean_us: h.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..EXACT {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let want = (q * EXACT as f64).ceil() as u64 - 1;
            assert_eq!(h.quantile(q), want, "q={q}");
        }
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        // Every value maps to a bucket whose upper edge is >= it and within
        // 1/16 relative error.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v * 2 - 1] {
                let upper = bucket_upper(bucket_of(probe));
                assert!(upper >= probe, "upper {upper} < probe {probe}");
                assert!(
                    (upper - probe) as f64 <= probe as f64 / 16.0 + 1.0,
                    "probe {probe} upper {upper} overshoots"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn quantiles_of_a_uniform_ramp() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), 10_000);
        let p50 = h.quantile(0.5);
        assert!((4_700..=5_300).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((9_800..=10_000).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 10_000);
        let mean = h.mean();
        assert!((4_900.0..=5_100.0).contains(&mean), "mean={mean}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in 0..1000u64 {
            let sample = v * 37 % 50_000;
            if v % 2 == 0 { &mut a } else { &mut b }.record(sample);
            all.record(sample);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
        let s = LatencySummary::from_hist(&h);
        assert_eq!((s.count, s.p50_us, s.max_us), (0, 0, 0));
    }

    #[test]
    fn single_sample_reports_itself_at_every_quantile() {
        for v in [0u64, 1, 31, 32, 1_000_003, u64::MAX] {
            let mut h = LogHistogram::new();
            h.record(v);
            for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v={v} q={q}");
            }
            assert_eq!(h.max(), v);
            assert_eq!(h.count(), 1);
        }
    }

    #[test]
    fn top_bucket_overflow_is_saturating_not_wrapping() {
        // u64::MAX lands in the highest octave, whose raw upper edge would
        // overflow; bucket_upper saturates and quantile() clamps to the true
        // max, so nothing wraps to a tiny value.
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(u64::MAX / 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert!(h.quantile(0.99) >= u64::MAX / 2, "quantile wrapped: {}", h.quantile(0.99));
        // The sum saturates rather than wrapping.
        assert_eq!(h.sum(), u64::MAX);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LogHistogram::new();
        let mut x = 1u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.record((x >> 32) % (1 + i * 977));
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        assert_eq!(prev, h.max());
    }

    #[test]
    fn summary_matches_hist_quantiles() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 3);
        }
        let s = LatencySummary::from_hist(&h);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_us, h.quantile(0.5));
        assert_eq!(s.p99_us, h.quantile(0.99));
        assert_eq!(s.max_us, 3000);
    }
}
