//! Transaction-path stage tracing.
//!
//! A [`TxnSpan`] rides one live operation from admission to
//! acknowledgement, recording the wall-clock boundary of every stage it
//! crosses: mailbox receive, lock grant, protocol decision, plus how many
//! protocol rounds the commit took. The serving node stamps the span; the
//! harness — which alone knows each operation's *scheduled* arrival and
//! the run's fault schedule — turns boundary instants into stage durations
//! and aggregates them per `(path, fault-phase, stage)` in a
//! [`StageTable`].
//!
//! Stages are consecutive boundary deltas over one timeline, so the table
//! accounts for the whole end-to-end latency by construction; the
//! `bench_obs` record asserts the accounting covers ≥ 95% of measured
//! commit latency (saturating arithmetic can shave microseconds, never
//! add them).

use crate::hist::LogHistogram;
use crate::json::json_escape;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Stage name: time between the operation's scheduled arrival and the
/// serving node picking it out of its mailbox (driver + mailbox queueing).
pub const STAGE_QUEUE: &str = "queue";
/// Stage name: time parked waiting for conflicting locks.
pub const STAGE_LOCK_WAIT: &str = "lock-wait";
/// Stage name: locks held, commit-protocol rounds running, until decision.
pub const STAGE_PROTOCOL: &str = "protocol";
/// Stage name: decision reached, waiting for the group-commit flush that
/// makes it durable, plus the outcome ship / client ack.
pub const STAGE_COMMIT_WAIT: &str = "commit-wait";
/// Stage name: a read being served from committed storage (lease or
/// shared-lock path) after any lock wait.
pub const STAGE_SERVE: &str = "serve";
/// Pseudo-stage: distribution of protocol *round counts* per transaction
/// (a count histogram, not a duration).
pub const STAGE_ROUNDS: &str = "rounds";

/// Wall-clock stage boundaries of one live operation, stamped by the
/// serving node and shipped back on the completion ack.
#[derive(Debug, Clone, Copy)]
pub struct TxnSpan {
    /// Which path served the operation (`write-single`, `write-cross`,
    /// `read-lease`, `read-local`, `read-parked`, ...).
    pub path: &'static str,
    /// When the node picked the operation out of its mailbox.
    pub recv: Instant,
    /// When every lock was held and execution began (`None` while parked,
    /// or for operations that never acquired locks — lease reads).
    pub locked: Option<Instant>,
    /// When the commit protocol decided (writes only).
    pub decided: Option<Instant>,
    /// Protocol messages/timers the serving participant dispatched for
    /// this transaction — the round count the termination protocol's cost
    /// story is about.
    pub rounds: u32,
}

impl TxnSpan {
    /// A span starting at `recv` on `path`.
    pub fn begin(path: &'static str, recv: Instant) -> TxnSpan {
        TxnSpan { path, recv, locked: None, decided: None, rounds: 0 }
    }
}

/// Accumulated duration population of one `(path, phase, stage)` cell.
#[derive(Debug, Clone, Default)]
pub struct StageCell {
    /// Operations that crossed this stage.
    pub count: u64,
    /// Total microseconds spent (saturating).
    pub total_us: u64,
    /// The per-operation duration distribution.
    pub hist: LogHistogram,
}

/// Stage durations aggregated per `(path, fault-phase, stage)`.
///
/// `path` is where the operation was routed (single-shard write,
/// cross-shard write, lease read, ...), `phase` is where the run's fault
/// timeline stood when the operation completed (`"before"`, `"fault"`,
/// `"after"` — or `"none"` for fault-free runs), and `stage` is one of the
/// `STAGE_*` names.
#[derive(Debug, Clone, Default)]
pub struct StageTable {
    cells: BTreeMap<(&'static str, &'static str, &'static str), StageCell>,
}

impl StageTable {
    /// An empty table.
    pub fn new() -> StageTable {
        StageTable::default()
    }

    /// Records `us` microseconds for one operation crossing `stage`.
    pub fn add(&mut self, path: &'static str, phase: &'static str, stage: &'static str, us: u64) {
        let cell = self.cells.entry((path, phase, stage)).or_default();
        cell.count += 1;
        cell.total_us = cell.total_us.saturating_add(us);
        cell.hist.record(us);
    }

    /// All cells in `(path, phase, stage)` order.
    pub fn rows(
        &self,
    ) -> impl Iterator<Item = (&(&'static str, &'static str, &'static str), &StageCell)> {
        self.cells.iter()
    }

    /// The cell for `(path, phase, stage)`, if populated.
    pub fn cell(&self, path: &str, phase: &str, stage: &str) -> Option<&StageCell> {
        self.cells
            .iter()
            .find(|((p, f, s), _)| *p == path && *f == phase && *s == stage)
            .map(|(_, c)| c)
    }

    /// Total microseconds attributed to `stage` across paths and phases.
    pub fn stage_total_us(&self, stage: &str) -> u64 {
        self.cells
            .iter()
            .filter(|((_, _, s), _)| *s == stage)
            .fold(0u64, |acc, (_, c)| acc.saturating_add(c.total_us))
    }

    /// Total microseconds attributed to duration stages (everything except
    /// the [`STAGE_ROUNDS`] count pseudo-stage).
    pub fn attributed_us(&self) -> u64 {
        self.cells
            .iter()
            .filter(|((_, _, s), _)| *s != STAGE_ROUNDS)
            .fold(0u64, |acc, (_, c)| acc.saturating_add(c.total_us))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Folds `other` into this table.
    pub fn merge(&mut self, other: &StageTable) {
        for (key, cell) in &other.cells {
            let mine = self.cells.entry(*key).or_default();
            mine.count += cell.count;
            mine.total_us = mine.total_us.saturating_add(cell.total_us);
            mine.hist.merge(&cell.hist);
        }
    }

    /// Renders `[{path, phase, stage, count, total_us, p50_us, p99_us,
    /// max_us}, ...]`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ((path, phase, stage), c)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"path\": \"{}\", \"phase\": \"{}\", \"stage\": \"{}\", \
                 \"count\": {}, \"total_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                json_escape(path),
                json_escape(phase),
                json_escape(stage),
                c.count,
                c.total_us,
                c.hist.quantile(0.5),
                c.hist.quantile(0.99),
                c.hist.max(),
            );
        }
        out.push_str("\n    ]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_cell() {
        let mut t = StageTable::new();
        t.add("write-single", "none", STAGE_PROTOCOL, 100);
        t.add("write-single", "none", STAGE_PROTOCOL, 300);
        t.add("write-cross", "fault", STAGE_PROTOCOL, 900);
        t.add("write-single", "none", STAGE_ROUNDS, 3);
        let cell = t.cell("write-single", "none", STAGE_PROTOCOL).unwrap();
        assert_eq!(cell.count, 2);
        assert_eq!(cell.total_us, 400);
        assert_eq!(t.stage_total_us(STAGE_PROTOCOL), 1300);
        assert_eq!(t.attributed_us(), 1300, "rounds pseudo-stage is excluded");
    }

    #[test]
    fn merge_folds_tables() {
        let mut a = StageTable::new();
        a.add("p", "none", STAGE_QUEUE, 10);
        let mut b = StageTable::new();
        b.add("p", "none", STAGE_QUEUE, 30);
        b.add("q", "fault", STAGE_SERVE, 5);
        a.merge(&b);
        assert_eq!(a.cell("p", "none", STAGE_QUEUE).unwrap().count, 2);
        assert_eq!(a.cell("q", "fault", STAGE_SERVE).unwrap().total_us, 5);
    }

    #[test]
    fn json_rows_name_every_cell() {
        let mut t = StageTable::new();
        t.add("write-single", "before", STAGE_LOCK_WAIT, 42);
        let json = t.to_json();
        for needle in [
            "\"path\": \"write-single\"",
            "\"phase\": \"before\"",
            "\"stage\": \"lock-wait\"",
            "\"total_us\": 42",
        ] {
            assert!(json.contains(needle), "{json} missing {needle}");
        }
    }

    #[test]
    fn span_begin_is_unmarked() {
        let s = TxnSpan::begin("write-single", Instant::now());
        assert_eq!(s.path, "write-single");
        assert!(s.locked.is_none() && s.decided.is_none());
        assert_eq!(s.rounds, 0);
    }
}
