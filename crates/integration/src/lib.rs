//! placeholder
